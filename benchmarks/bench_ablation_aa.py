"""Ablation: how much does the strong alias analysis matter?

DESIGN.md calls out the PDG's alias-analysis stack (the SCAF/SVF stand-in)
as a load-bearing design choice.  This ablation rebuilds the PDG with the
weak (LLVM-grade) AA and counts how many loops each parallelizer can still
accept — quantifying why the paper integrates external AA frameworks
instead of shipping with LLVM's.
"""

from conftest import print_table, run_once

from repro.analysis.aa import BasicAliasAnalysis
from repro.core import Noelle
from repro.workloads import suite
from repro.xforms import DOALL


def _count_parallelizable(weak: bool) -> dict:
    accepted = 0
    total = 0
    for workload in suite("parsec"):
        module = workload.compile()
        noelle = Noelle(module)
        if weak:
            noelle._aa = BasicAliasAnalysis()
        doall = DOALL(noelle)
        for loop in noelle.loops():
            if loop.structure.depth() != 1:
                continue
            total += 1
            if doall.can_parallelize(loop):
                accepted += 1
    return {"accepted": accepted, "total": total}


def test_ablation_alias_analysis_strength(benchmark):
    def experiment():
        return {
            "weak (LLVM-grade AA)": _count_parallelizable(weak=True),
            "strong (Andersen / SCAF stand-in)": _count_parallelizable(weak=False),
        }

    results = run_once(benchmark, experiment)
    print_table(
        "Ablation — DOALL-accepted outermost loops (PARSEC suite) by AA",
        ["configuration", "accepted", "of"],
        [(name, r["accepted"], r["total"]) for name, r in results.items()],
    )
    weak = results["weak (LLVM-grade AA)"]
    strong = results["strong (Andersen / SCAF stand-in)"]
    assert strong["total"] == weak["total"]
    # The strong AA unlocks strictly more parallelism.
    assert strong["accepted"] > weak["accepted"]
