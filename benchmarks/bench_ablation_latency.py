"""Ablation: HELIX's sensitivity to core-to-core latency (AR).

The architecture abstraction exists because the HELIX schedule's critical
path runs through cross-core signals.  This ablation sweeps the modeled
latency and shows the speedup collapsing as the interconnect slows —
the reason ``noelle-arch`` measures the real machine instead of assuming.
"""

from conftest import print_table, run_once

from repro.core import Noelle
from repro.core.architecture import ArchitectureDescription
from repro.core.profiler import Profiler
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.runtime import ParallelMachine
from repro.xforms import HELIX

HISTOGRAM = """
int hist[64];
int data[2200];
int main() {
  int i;
  int checksum = 0;
  for (i = 0; i < 2200; i = i + 1) { data[i] = (i * 37 + 11) % 64; }
  for (i = 0; i < 2200; i = i + 1) {
    int x = data[i];
    int heavy = ((x * x + i) % 97) + ((x + 3) * (i + 7)) % 31;
    hist[x] = hist[x] + 1;
    checksum = checksum + heavy;
  }
  print_int(checksum);
  return checksum;
}
"""

LATENCIES = (5, 40, 160, 640)


def test_ablation_helix_latency_sensitivity(benchmark):
    def experiment():
        baseline = Interpreter(compile_source(HISTOGRAM)).run()
        module = compile_source(HISTOGRAM)
        noelle = Noelle(module)
        noelle.attach_profile(Profiler(module).profile())
        HELIX(noelle, 8).run()
        speedups = {}
        for latency in LATENCIES:
            arch = ArchitectureDescription(12, default_latency=latency)
            machine = ParallelMachine(module, architecture=arch, num_cores=8)
            result = machine.run()
            assert result.output == baseline.output
            speedups[latency] = baseline.cycles / result.cycles
        return speedups

    speedups = run_once(benchmark, experiment)
    print_table(
        "Ablation — HELIX speedup vs core-to-core latency (8 cores)",
        ["latency (cycles)", "speedup"],
        [(latency, f"{s:.2f}x") for latency, s in speedups.items()],
    )
    # Monotone collapse as the signal slows.
    values = [speedups[l] for l in LATENCIES]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
    assert values[0] > 1.3  # fast interconnect: real speedup
    assert values[-1] < values[0]  # slow interconnect: the gain erodes
