"""Ablation: the ``noelle-rm-lc-dependences`` enabling transformation.

The Figure 1 pipeline runs rm-lc-dependences before the parallelizer.
This ablation measures what it buys: without the memory-accumulator
promotion, loops that accumulate into globals carry a memory dependence
and resist DOALL entirely.
"""

from conftest import print_table, run_once

from repro.core import Noelle
from repro.core.profiler import Profiler
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.runtime import ParallelMachine
from repro.tools import remove_loop_carried_dependences
from repro.xforms import DOALL

GLOBAL_ACCUMULATOR = """
int total = 0;
int data[2500];
void fill(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { data[i] = (i * 29 + 5) % 83; }
}
int main() {
  int i;
  fill(2500);
  for (i = 0; i < 2500; i = i + 1) {
    total = total + (data[i] * data[i] + 7) % 101;
  }
  print_int(total);
  return total;
}
"""


def _speedup(with_rm_lc: bool) -> tuple[float, int]:
    baseline = Interpreter(compile_source(GLOBAL_ACCUMULATOR)).run()
    module = compile_source(GLOBAL_ACCUMULATOR)
    noelle = Noelle(module)
    noelle.attach_profile(Profiler(module).profile())
    if with_rm_lc:
        remove_loop_carried_dependences(noelle)
    count = DOALL(noelle, 12).run()
    result = ParallelMachine(module, num_cores=12).run()
    assert result.trapped is None
    assert result.output == baseline.output
    return baseline.cycles / result.cycles, count


def test_ablation_rm_lc_dependences(benchmark):
    def experiment():
        return {
            "without rm-lc-dependences": _speedup(False),
            "with rm-lc-dependences": _speedup(True),
        }

    results = run_once(benchmark, experiment)
    print_table(
        "Ablation — DOALL on a global-accumulator loop",
        ["configuration", "speedup", "loops parallelized"],
        [(n, f"{s:.2f}x", c) for n, (s, c) in results.items()],
    )
    without_speedup, without_count = results["without rm-lc-dependences"]
    with_speedup, with_count = results["with rm-lc-dependences"]
    # Without the enabling transformation, the hot loop stays serial.
    assert with_count > without_count or with_speedup > without_speedup * 1.5
    assert with_speedup > 2.0
