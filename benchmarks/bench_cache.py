"""Artifact cache: cross-process warm cold-starts vs the text-IR path.

Measures what ``NOELLE_CACHE_DIR`` buys a *fresh process* and records it
in ``BENCH_cache.json`` at the repository root:

* **cold vs warm load** — child processes bring all 21 workloads to
  "engine ready" (parse + PDG materialized + every function compiled).
  The cold child parses textual IR and computes everything; the warm
  child hydrates the binary module, PDG shards, and engine plans from a
  cache populated by an earlier process.  The headline claim: warm is
  ≥5x faster than the text path.
* **serve kill-recovery** — a seeded ``serve_kill`` destroys a worker's
  resident session; recovery (recompile + rerun on the replacement
  worker) is timed without and with a shared cache.
* **corpus fan-out** — ``run_corpus(jobs=2)`` twice against one shared
  cache directory: the second pass must hit the cache and agree on
  every outcome.
* **figure byte-identity** — fig3/fig4/fig5 computed in subprocesses
  with the cache disabled and enabled must produce byte-identical JSON.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_cache.py``;
add ``--smoke`` to skip the performance assertions) or under pytest
with the rest of the benchmark suite.
"""

import json
import os
import shutil
import statistics
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.workloads import all_workloads, get

SRC_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "src"
)
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_cache.json"
)

#: Child: bring every .ir module in a directory to "engine ready"
#: (module + PDG + compiled code), timing only that work.  With
#: NOELLE_CACHE_DIR set it goes through the artifact cache (and
#: publishes back, populating the cache on the first pass).
_LOAD_CHILD = r"""
import json, os, sys, time
sys.path.insert(0, sys.argv[1])
from repro import cache
from repro.core.noelle import Noelle
from repro.interp.engine import engine_for
from repro.ir import parse_module, verify_module
from repro.perf import STATS

ir_dir = sys.argv[2]
use_cache = cache.enabled()
total = 0.0
pairs = []
for fname in sorted(os.listdir(ir_dir)):
    with open(os.path.join(ir_dir, fname)) as handle:
        text = handle.read()
    start = time.perf_counter()
    if use_cache:
        module = cache.load_ir_text(text, fname)
        noelle = Noelle(module)
        cache.attach(noelle)
    else:
        module = parse_module(text, fname)
        verify_module(module)
        noelle = Noelle(module)
    noelle.pdg().materialize()
    engine = engine_for(module)
    for fn in module.defined_functions():
        engine.compiled(fn)
    total += time.perf_counter() - start
    if use_cache:
        cache.publish_artifacts(module, noelle)
    pairs.append((module, noelle))
print(json.dumps({
    "load_s": total,
    "modules": len(pairs),
    "engine_compiles": STATS.get("engine.compiles"),
    "engine_hydrations": STATS.get("engine.hydrations"),
    "pdg_shard_builds": STATS.get("pdg.shard_builds"),
    "pdg_shards_hydrated": STATS.get("cache.pdg_shards_hydrated"),
    "cache_hits": STATS.get("cache.hits"),
    "cache_misses": STATS.get("cache.misses"),
}))
"""

#: Child: compute fig3/fig4/fig5(subset) and print canonical JSON.
_FIGURES_CHILD = r"""
import json, sys
sys.path.insert(0, sys.argv[1])
from repro.experiments import fig3_dependences, fig4_invariants
from repro.experiments.speedups import fig5_speedups
from repro.workloads import get

figures = {
    "fig3": fig3_dependences(),
    "fig4": fig4_invariants(),
    "fig5": fig5_speedups(
        [get("blackscholes"), get("crc32")], techniques=("doall", "helix")
    ),
}
print(json.dumps(figures, sort_keys=True))
"""


def _run_child(script: str, args: list, env_overrides: dict) -> dict:
    env = dict(os.environ)
    env.pop("NOELLE_CACHE_DIR", None)
    env.pop("NOELLE_STATS", None)
    env.update(env_overrides)
    proc = subprocess.run(
        [sys.executable, "-c", script, SRC_DIR] + [str(a) for a in args],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _write_ir_corpus(directory: str) -> int:
    from repro.frontend.codegen import compile_source
    from repro.ir import print_module

    count = 0
    for workload in all_workloads():
        module = compile_source(workload.source, workload.name)
        path = os.path.join(directory, f"{workload.name}.ir")
        with open(path, "w") as handle:
            handle.write(print_module(module))
        count += 1
    return count


def _bench_loads(scratch: str) -> dict:
    ir_dir = os.path.join(scratch, "ir")
    os.makedirs(ir_dir)
    n = _write_ir_corpus(ir_dir)
    cache_dir = os.path.join(scratch, "cache")

    cold = _run_child(_LOAD_CHILD, [ir_dir], {})
    miss = _run_child(_LOAD_CHILD, [ir_dir], {"NOELLE_CACHE_DIR": cache_dir})
    warm = _run_child(_LOAD_CHILD, [ir_dir], {"NOELLE_CACHE_DIR": cache_dir})
    assert cold["modules"] == miss["modules"] == warm["modules"] == n
    # the warm child must have hydrated, not recomputed
    assert warm["cache_hits"] == n, warm
    assert warm["cache_misses"] == 0, warm
    assert warm["engine_compiles"] == 0, warm
    assert warm["pdg_shard_builds"] == 0, warm
    return {
        "workloads": n,
        "cold_load_s": cold["load_s"],
        "miss_load_s": miss["load_s"],
        "warm_load_s": warm["load_s"],
        "warm_speedup": cold["load_s"] / warm["load_s"],
        "miss_overhead": miss["load_s"] / cold["load_s"],
        "warm_engine_hydrations": warm["engine_hydrations"],
        "warm_pdg_shards_hydrated": warm["pdg_shards_hydrated"],
    }


class _Client:
    def __init__(self, server):
        host, port = server.server_address[:2]
        self.base = f"http://{host}:{port}"

    def post(self, path, payload):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


def _serve_recovery(cache_dir: str | None) -> float:
    """Boot a daemon, kill its worker, time the session's recovery."""
    from repro.serve.daemon import create_server, serve_forever

    source = get("crc32").source
    saved = os.environ.get("NOELLE_CACHE_DIR")
    if cache_dir is None:
        os.environ.pop("NOELLE_CACHE_DIR", None)
    else:
        os.environ["NOELLE_CACHE_DIR"] = cache_dir
    try:
        server = create_server(port=0, workers=1)
        thread = threading.Thread(
            target=serve_forever, args=(server,), daemon=True
        )
        thread.start()
        client = _Client(server)
        try:
            status, _ = client.post("/compile", {
                "session": "s", "name": "m", "source": source,
            })
            assert status == 200
            status, _ = client.post("/run", {"session": "s", "name": "m"})
            assert status == 200
            status, body = client.post("/run", {
                "session": "s", "name": "m", "faults": "serve_kill:1",
            })
            assert status == 502 and body["error"]["kind"] == "WorkerCrashed"
            start = time.perf_counter()
            status, _ = client.post("/compile", {
                "session": "s", "name": "m", "source": source,
            })
            assert status == 200
            status, body = client.post("/run", {"session": "s", "name": "m"})
            recovery = time.perf_counter() - start
            assert status == 200 and body["result"]["exit_code"] == 0
            return recovery
        finally:
            server.shutdown()
            thread.join(timeout=30)
    finally:
        if saved is None:
            os.environ.pop("NOELLE_CACHE_DIR", None)
        else:
            os.environ["NOELLE_CACHE_DIR"] = saved


def _bench_serve_recovery(scratch: str) -> dict:
    cache_dir = os.path.join(scratch, "serve_cache")
    # median-of-3: a single fork+recompile sample is noisy
    cold = statistics.median(_serve_recovery(None) for _ in range(3))
    warm = statistics.median(
        _serve_recovery(cache_dir) for _ in range(3)
    )
    return {
        "recovery_cold_ms": cold * 1e3,
        "recovery_warm_ms": warm * 1e3,
        "recovery_speedup": cold / warm,
    }


#: Child: run a slice of the micro-test corpus through the harness.
_CORPUS_CHILD = r"""
import json, sys, time
sys.path.insert(0, sys.argv[1])
from repro.perf import STATS
from repro.testing.harness import ToolConfig, build_corpus, run_corpus

tests = build_corpus()[:12]
configs = [ToolConfig("licm+dead", ["licm", "dead"])]
start = time.perf_counter()
outcomes = run_corpus(configs, tests, jobs=2)
elapsed = time.perf_counter() - start
print(json.dumps({
    "seconds": elapsed,
    "results": [[o.test.name, o.passed] for o in outcomes],
    "cache_hits": STATS.get("cache.hits"),
}))
"""


def _bench_corpus(scratch: str) -> dict:
    cache_dir = os.path.join(scratch, "corpus_cache")
    cold = _run_child(_CORPUS_CHILD, [], {"NOELLE_CACHE_DIR": cache_dir})
    warm = _run_child(_CORPUS_CHILD, [], {"NOELLE_CACHE_DIR": cache_dir})
    assert cold["results"] == warm["results"], "corpus outcomes changed"
    assert all(passed for _name, passed in warm["results"]), warm["results"]
    return {
        "corpus_pairs": len(cold["results"]),
        "corpus_cold_s": cold["seconds"],
        "corpus_warm_s": warm["seconds"],
        "corpus_speedup": cold["seconds"] / warm["seconds"],
    }


def _bench_figures(scratch: str) -> dict:
    cache_dir = os.path.join(scratch, "fig_cache")
    without = _run_child(_FIGURES_CHILD, [], {})
    populate = _run_child(
        _FIGURES_CHILD, [], {"NOELLE_CACHE_DIR": cache_dir}
    )
    with_warm = _run_child(
        _FIGURES_CHILD, [], {"NOELLE_CACHE_DIR": cache_dir}
    )
    identical = (
        json.dumps(without, sort_keys=True)
        == json.dumps(populate, sort_keys=True)
        == json.dumps(with_warm, sort_keys=True)
    )
    return {"figures_identical": identical}


def run_bench() -> dict:
    scratch = tempfile.mkdtemp(prefix="bench_cache_")
    try:
        results = {}
        results.update(_bench_loads(scratch))
        results.update(_bench_serve_recovery(scratch))
        results.update(_bench_corpus(scratch))
        results.update(_bench_figures(scratch))
        return results
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def report(results: dict) -> None:
    rows = [
        ("workloads", str(results["workloads"])),
        ("cold load (text path)", f"{results['cold_load_s']*1e3:.1f} ms"),
        ("first miss (+publish)", f"{results['miss_load_s']*1e3:.1f} ms"),
        ("warm load (cache hit)", f"{results['warm_load_s']*1e3:.1f} ms"),
        ("warm speedup", f"{results['warm_speedup']:.1f}x"),
        ("serve recovery cold", f"{results['recovery_cold_ms']:.1f} ms"),
        ("serve recovery warm", f"{results['recovery_warm_ms']:.1f} ms"),
        ("corpus fan-out cold", f"{results['corpus_cold_s']:.2f} s"),
        ("corpus fan-out warm", f"{results['corpus_warm_s']:.2f} s"),
        ("figures byte-identical", str(results["figures_identical"])),
    ]
    width = max(len(label) for label, _ in rows)
    print("\n=== Artifact cache ===")
    for label, value in rows:
        print(f"{label.ljust(width)}  {value}")


def write_results(results: dict) -> None:
    with open(RESULT_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def assert_claims(results: dict) -> None:
    # The tentpole claim: warm cross-process load (module + PDG +
    # engine ready) is at least 5x faster than the text-IR cold path.
    assert results["warm_speedup"] >= 5.0, results
    # Publishing on a miss must not blow up the cold path.
    assert results["miss_overhead"] < 3.0, results
    # fig3/fig4/fig5 do not depend on whether the cache is enabled.
    assert results["figures_identical"], results
    # The warm corpus pass must not be slower than the cold one by more
    # than scheduling noise.
    assert results["corpus_speedup"] > 0.8, results


def test_cache(benchmark):
    from conftest import run_once

    results = run_once(benchmark, run_bench)
    report(results)
    write_results(results)
    assert_claims(results)


if __name__ == "__main__":
    outcome = run_bench()
    report(outcome)
    write_results(outcome)
    # Byte-identity is a correctness property, not a timing claim: it
    # must hold even when --smoke skips the wall-clock assertions.
    assert outcome["figures_identical"], outcome
    if "--smoke" not in sys.argv[1:]:
        assert_claims(outcome)
    print(f"\nwrote {os.path.normpath(RESULT_PATH)}")
