"""Figure 3 reproduction: memory dependences disproved, LLVM vs NOELLE.

The paper's Figure 3: "While LLVM is capable of proving the non-existence
of most dependences, NOELLE disproves more by relying on state-of-the-art
alias analysis techniques (SCAF)."  Here the LLVM side is the basic
stateless AA and the NOELLE side the whole-module Andersen points-to
(our SCAF/SVF stand-in); both feed the identical PDG construction, so the
gap isolates the analysis strength — per suite, as in the paper.
"""

from conftest import print_table, run_once

from repro.experiments import fig3_dependences


def test_fig3_dependences_disproved(benchmark):
    rows = run_once(benchmark, fig3_dependences)
    print_table(
        "Figure 3 — % of potential memory dependences disproved",
        ["suite", "queries", "LLVM", "NOELLE"],
        [
            (
                r["suite"],
                r["queries"],
                f"{r['llvm_pct']:.1f}%",
                f"{r['noelle_pct']:.1f}%",
            )
            for r in rows
        ],
    )
    assert len(rows) == 3  # parsec, mibench, spec
    for row in rows:
        # LLVM disproves a meaningful fraction...
        assert row["llvm_pct"] > 5.0
        # ...and NOELLE dramatically more (the figure's visual claim).
        assert row["noelle_pct"] > row["llvm_pct"] + 15.0
        assert row["noelle_pct"] <= 100.0
