"""Figure 4 reproduction: loop invariants found, LLVM vs NOELLE.

Algorithm 1 (LLVM's low-level case analysis) vs Algorithm 2 (NOELLE's
PDG recursion), per benchmark.  The paper: "NOELLE detects significantly
more invariants than LLVM even if the former relies on a simpler and
shorter algorithm."
"""

from conftest import print_table, run_once

from repro.experiments import fig4_invariants


def test_fig4_invariants(benchmark):
    rows = run_once(benchmark, fig4_invariants)
    print_table(
        "Figure 4 — loop invariants detected",
        ["benchmark", "suite", "LLVM (Alg.1)", "NOELLE (Alg.2)"],
        [
            (r["benchmark"], r["suite"], r["llvm_invariants"],
             r["noelle_invariants"])
            for r in rows
        ],
    )
    total_llvm = sum(r["llvm_invariants"] for r in rows)
    total_noelle = sum(r["noelle_invariants"] for r in rows)
    print(f"\nTOTAL: LLVM {total_llvm} vs NOELLE {total_noelle}")
    # NOELLE never finds fewer, and finds strictly more overall.
    for row in rows:
        assert row["noelle_invariants"] >= row["llvm_invariants"], row
    assert total_noelle > total_llvm * 1.3
    # The simpler algorithm is also literally shorter (Section 2.5).
    from repro.experiments import count_loc

    assert count_loc("core/invariants.py") < count_loc(
        "baselines/invariants_llvm.py"
    )
