"""Section 4.3 reproduction: governing induction variables, LLVM vs NOELLE.

The paper: across 41 benchmarks LLVM identifies 11 governing IVs (its
pattern expects do-while-shaped loops) while NOELLE identifies 385
(the aSCCDAG-based detector is shape-independent).  The absolute counts
scale with our suite size; the *ratio* is the reproduced claim.
"""

from conftest import print_table, run_once

from repro.experiments import governing_iv_counts


def test_governing_induction_variables(benchmark):
    counts = run_once(benchmark, governing_iv_counts)
    print_table(
        "Section 4.3 — governing IVs per benchmark",
        ["benchmark", "LLVM", "NOELLE"],
        [(r["benchmark"], r["llvm"], r["noelle"])
         for r in counts["per_benchmark"]],
    )
    print(
        f"\nTOTAL over {counts['loops_total']} loops: "
        f"LLVM {counts['llvm_total']} vs NOELLE {counts['noelle_total']} "
        f"(paper: {counts['paper_llvm_total']} vs "
        f"{counts['paper_noelle_total']})"
    )
    # NOELLE finds governing IVs for nearly every loop; LLVM for a small
    # minority — the 11-vs-385 shape.
    assert counts["noelle_total"] >= 0.75 * counts["loops_total"]
    assert counts["llvm_total"] <= 0.25 * counts["noelle_total"]
    assert counts["llvm_total"] >= 1, (
        "a few do-while loops exist, so LLVM must find at least one "
        "(the paper's LLVM found 11, not 0)"
    )
