"""Figure 5 reproduction: parallel speedups on PARSEC + MiBench.

The paper's Figure 5: gcc and icc obtain no benefit from their
auto-parallelization on these suites, while the few-hundred-line
NOELLE-based DOALL/HELIX/DSWP extract real speedups over the clang
baseline — except on benchmarks like ``crc`` whose loop-carried state
needs memory cloning (called out explicitly in Section 4.4).

Absolute speedups come from the deterministic simulated 12-core machine;
the reproduced claims are the *shape*: who wins, where, and why.
"""

import pytest
from conftest import print_table, run_once

from repro.experiments import fig5_speedups
from repro.workloads import suite


def test_fig5_parallel_speedups(benchmark):
    workloads = suite("parsec") + suite("mibench")
    rows = run_once(benchmark, lambda: fig5_speedups(workloads, num_cores=12))
    print_table(
        "Figure 5 — speedup over clang (12 simulated cores)",
        ["benchmark", "suite", "gcc", "icc", "DOALL", "HELIX", "DSWP"],
        [
            (
                r["benchmark"],
                r["suite"],
                f"{r['gcc']:.2f}x",
                f"{r['icc']:.2f}x",
                f"{r['doall']:.2f}x",
                f"{r['helix']:.2f}x",
                f"{r['dswp']:.2f}x",
            )
            for r in rows
        ],
    )
    by_name = {r["benchmark"]: r for r in rows}

    # Correctness first: every configuration reproduces the program output.
    for row in rows:
        for technique in ("gcc", "icc", "doall", "helix", "dswp"):
            assert row[f"{technique}_correct"], (
                f"{row['benchmark']}/{technique} changed outputs"
            )

    # Claim 1: gcc/icc essentially never obtain performance benefits.
    # (sha's table-fill loop is a textbook do-while the vendors' shape
    # requirement accepts — the lone, marginal exception, kept on purpose
    # so the governing-IV experiment has real do-while loops to find.)
    for row in rows:
        assert row["gcc"] <= 1.15, row
        assert row["icc"] <= 1.15, row
    vendor_wins = [r for r in rows if max(r["gcc"], r["icc"]) > 1.05]
    assert len(vendor_wins) <= 1

    # Claim 2: NOELLE-based tools extract real parallelism on the
    # parallel-friendly benchmarks (>2x on at least most of them).
    friendly = [r for r in rows if r["parallel_friendly"]]
    assert friendly
    wins = [r for r in friendly if max(r["doall"], r["helix"]) > 2.0]
    assert len(wins) >= 0.7 * len(friendly), (
        f"only {len(wins)}/{len(friendly)} friendly benchmarks sped up"
    )

    # Claim 3: the best NOELLE tool beats the best vendor baseline on
    # every parallel-friendly benchmark.
    for row in friendly:
        assert max(row["doall"], row["helix"], row["dswp"]) > max(
            row["gcc"], row["icc"]
        )

    # Claim 4 (the crc callout): crc32's carried checksum chain resists
    # all three techniques without memory cloning.
    crc = by_name["crc32"]
    assert max(crc["doall"], crc["helix"], crc["dswp"]) < 1.6

    # Claim 5: no technique causes a catastrophic slowdown anywhere.
    for row in rows:
        for technique in ("doall", "helix", "dswp"):
            assert row[technique] > 0.5, row
