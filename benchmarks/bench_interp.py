"""Interpreter engine scaling: compiled closure-threading vs the walker.

Measures the costs the compiled execution engine changes and records
them in ``BENCH_interp.json`` at the repository root:

* **reference** — every registered workload under the tree-walking
  reference interpreter (the seed's execution path);
* **cold** — the same workloads on freshly compiled modules under the
  compiled engine, so each run pays function compilation up front;
* **warm** — the same modules again with the per-module code cache hot,
  the steady state every profiler/transform/re-run loop sits in;
* **pipeline** — the full ``helix_pipeline`` (profile twice, transform,
  verify) end to end under each engine — the compile-flow wall clock
  the engine is meant to shrink.

Every run's observables (output, return value, cycles, steps, trap) are
checked for equality between engines while timing — a benchmark that
got faster by diverging would be meaningless.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_interp.py``;
add ``--smoke`` to skip the performance assertions, e.g. on loaded CI
runners) or under pytest with the rest of the benchmark suite.
"""

import json
import os
import sys
import time

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.interp import Interpreter
from repro.tools.pipeline import helix_pipeline
from repro.workloads import all_workloads, get

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_interp.json"
)
PIPELINE_WORKLOAD = "blackscholes"


def _observables(result, interp):
    return (
        result.output,
        result.return_value,
        result.cycles,
        result.steps,
        result.trapped,
        interp.weighted_cycles,
    )


def _run_all(modules, engine):
    """Run every (workload, module) pair; returns (seconds, observables)."""
    observed = []
    start = time.perf_counter()
    for workload, module in modules:
        interp = Interpreter(
            module, step_limit=workload.step_limit, engine=engine
        )
        result = interp.run()
        observed.append(_observables(result, interp))
    return time.perf_counter() - start, observed


def _time_pipeline(engine):
    source = get(PIPELINE_WORKLOAD).source
    previous = os.environ.get("NOELLE_ENGINE")
    os.environ["NOELLE_ENGINE"] = engine
    try:
        start = time.perf_counter()
        helix_pipeline([source], num_cores=8, fault_plan=None)
        return time.perf_counter() - start
    finally:
        if previous is None:
            del os.environ["NOELLE_ENGINE"]
        else:
            os.environ["NOELLE_ENGINE"] = previous


def run_bench() -> dict:
    workloads = all_workloads()
    modules = [(w, w.compile()) for w in workloads]
    reference_s, reference_obs = _run_all(modules, "reference")
    # Fresh modules: the compiled engine pays every compilation.
    modules = [(w, w.compile()) for w in workloads]
    cold_s, cold_obs = _run_all(modules, "compiled")
    # Same modules: the per-module code cache is hot.
    warm_s, warm_obs = _run_all(modules, "compiled")
    assert cold_obs == reference_obs, "engines diverged (cold run)"
    assert warm_obs == reference_obs, "engines diverged (warm run)"
    return {
        "num_workloads": len(workloads),
        "reference_s": reference_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_speedup": reference_s / cold_s,
        "warm_speedup": reference_s / warm_s,
        "cold_overhead": cold_s / warm_s,
        "pipeline_reference_s": _time_pipeline("reference"),
        "pipeline_compiled_s": _time_pipeline("compiled"),
    }


def report(results: dict) -> None:
    rows = [
        (f"{results['num_workloads']} workloads, reference walker",
         f"{results['reference_s']:.3f}s"),
        ("same, compiled engine (cold)", f"{results['cold_s']:.3f}s"),
        ("same, compiled engine (warm)", f"{results['warm_s']:.3f}s"),
        ("cold speedup", f"{results['cold_speedup']:.1f}x"),
        ("warm re-run speedup", f"{results['warm_speedup']:.1f}x"),
        ("cold-compile overhead", f"{results['cold_overhead']:.2f}x warm"),
        ("helix_pipeline, reference",
         f"{results['pipeline_reference_s']:.3f}s"),
        ("helix_pipeline, compiled",
         f"{results['pipeline_compiled_s']:.3f}s"),
    ]
    width = max(len(label) for label, _ in rows)
    print("\n=== Execution engine ===")
    for label, value in rows:
        print(f"{label.ljust(width)}  {value}")


def write_results(results: dict) -> None:
    with open(RESULT_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def assert_claims(results: dict) -> None:
    # The headline claim: warm re-runs are at least 3x the walker
    # (measured ~10x; the margin absorbs loaded CI runners).
    assert results["warm_speedup"] >= 3.0, results
    # Even paying every compilation, the engine must not lose to the
    # walker over a whole suite run.
    assert results["cold_speedup"] >= 1.0, results


def test_interp_engine(benchmark):
    from conftest import run_once

    results = run_once(benchmark, run_bench)
    report(results)
    write_results(results)
    assert_claims(results)


if __name__ == "__main__":
    outcome = run_bench()
    report(outcome)
    write_results(outcome)
    if "--smoke" not in sys.argv[1:]:
        assert_claims(outcome)
    print(f"\nwrote {os.path.normpath(RESULT_PATH)}")
