"""PDG scaling: sharded invalidation vs the full-drop rebuild cycle.

Measures the three costs the sharded PDG changes and records them in
``BENCH_pdg.json`` at the repository root:

* **cold build** — eager whole-module PDG construction (alias analysis
  included), with and without the points-to pair partitioning; the
  unpartitioned build is the seed's exact all-pairs loop, so the ratio
  bounds any cold-start regression;
* **warm cycle** — the transform→invalidate→re-query loop every
  function-at-a-time tool runs: mutate one function, invalidate, rebuild
  the queryable PDG.  Per-function invalidation pays for one shard;
  the full drop re-solves Andersen points-to and rebuilds every shard;
* **pipeline** — a complete parallelizer pipeline (profile →
  rm-lc-dependences → DOALL) on a real workload, end to end.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_pdg_scaling.py``)
or under pytest with the rest of the benchmark suite.
"""

import json
import os
import sys
import time

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro import ir
from repro.analysis.pointsto import AndersenAliasAnalysis
from repro.core.noelle import Noelle
from repro.core.pdg import PDG
from repro.core.profiler import Profiler
from repro.frontend import compile_source
from repro.tools.rm_lc_dependences import remove_loop_carried_dependences
from repro.workloads import get
from repro.xforms.doall import DOALL

NUM_FUNCTIONS = 12
WARM_CYCLES = 5
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_pdg.json"
)


def scaling_source(num_functions: int = NUM_FUNCTIONS) -> str:
    """A module of ``num_functions`` independent memory-heavy kernels."""
    parts = []
    for k in range(num_functions):
        parts.append(f"""
int data{k}[256];
int aux{k}[256];

int work{k}(int n) {{
  int i;
  int s;
  s = 0;
  for (i = 0; i < n; i = i + 1) {{
    data{k}[i % 256] = i + {k};
    aux{k}[i % 256] = data{k}[i % 256] * 2;
    s = s + aux{k}[i % 256] - data{k}[(i + 7) % 256];
  }}
  return s;
}}
""")
    calls = " + ".join(f"work{k}(64)" for k in range(num_functions))
    parts.append(f"int main() {{ return {calls}; }}")
    return "\n".join(parts)


def insert_dead_add(fn) -> None:
    """The minimal single-function mutation a transform would make."""
    block = fn.blocks[0]
    inst = ir.BinaryOp("add", ir.const_int(1), ir.const_int(2), "dead")
    inst.parent = block
    block.instructions.insert(len(block.instructions) - 1, inst)
    fn.assign_name(inst)


def time_best_of(func, repeats: int = 3) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def measure_cold_builds(source: str) -> dict:
    def build(partition: bool):
        module = compile_source(source, "pdg_scaling")
        PDG(module, AndersenAliasAnalysis(module), partition=partition,
            lazy=False)

    return {
        "cold_build_exact_s": time_best_of(lambda: build(False)),
        "cold_build_partitioned_s": time_best_of(lambda: build(True)),
    }


def measure_cycles(source: str, per_function: bool) -> float:
    """Total seconds for WARM_CYCLES transform→invalidate→re-query loops."""
    module = compile_source(source, "pdg_scaling")
    noelle = Noelle(module)
    noelle.pdg().materialize()
    functions = [fn for fn in module.defined_functions() if fn.name != "main"]
    start = time.perf_counter()
    for index in range(WARM_CYCLES):
        fn = functions[index % len(functions)]
        insert_dead_add(fn)
        noelle.invalidate(fn if per_function else None)
        noelle.pdg().materialize()
    return time.perf_counter() - start


def measure_pipeline() -> float:
    """One full parallelizer pipeline on a real PARSEC-shaped workload."""
    module = get("blackscholes").compile()
    start = time.perf_counter()
    noelle = Noelle(module)
    noelle.attach_profile(Profiler(module).profile())
    remove_loop_carried_dependences(noelle)
    parallelized = DOALL(noelle, 8).run(0.001)
    elapsed = time.perf_counter() - start
    assert parallelized >= 1  # the pipeline must actually transform
    return elapsed


def run_scaling() -> dict:
    source = scaling_source()
    results = measure_cold_builds(source)
    results["warm_cycle_s"] = measure_cycles(source, per_function=True)
    results["full_cycle_s"] = measure_cycles(source, per_function=False)
    results["warm_speedup"] = results["full_cycle_s"] / results["warm_cycle_s"]
    results["cold_overhead"] = (
        results["cold_build_partitioned_s"] / results["cold_build_exact_s"]
    )
    results["pipeline_s"] = measure_pipeline()
    results["num_functions"] = NUM_FUNCTIONS
    results["warm_cycles"] = WARM_CYCLES
    return results


def report(results: dict) -> None:
    rows = [
        ("cold build (exact pairs)", f"{results['cold_build_exact_s']:.4f}s"),
        ("cold build (partitioned)",
         f"{results['cold_build_partitioned_s']:.4f}s"),
        (f"{WARM_CYCLES} warm cycles (invalidate one function)",
         f"{results['warm_cycle_s']:.4f}s"),
        (f"{WARM_CYCLES} full cycles (invalidate everything)",
         f"{results['full_cycle_s']:.4f}s"),
        ("warm-cycle speedup", f"{results['warm_speedup']:.1f}x"),
        ("cold-build overhead", f"{results['cold_overhead']:.2f}x"),
        ("DOALL pipeline (blackscholes)", f"{results['pipeline_s']:.4f}s"),
    ]
    width = max(len(label) for label, _ in rows)
    print("\n=== PDG scaling ===")
    for label, value in rows:
        print(f"{label.ljust(width)}  {value}")


def write_results(results: dict) -> None:
    with open(RESULT_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def assert_claims(results: dict) -> None:
    # The headline claim: per-function invalidation makes the warm
    # transform cycle at least 5x cheaper than the full drop.
    assert results["warm_speedup"] >= 5.0, results
    # Partitioning must not slow the cold build down meaningfully.
    assert results["cold_overhead"] <= 1.1, results


def test_pdg_scaling(benchmark):
    from conftest import run_once

    results = run_once(benchmark, run_scaling)
    report(results)
    write_results(results)
    assert_claims(results)


if __name__ == "__main__":
    outcome = run_scaling()
    report(outcome)
    write_results(outcome)
    assert_claims(outcome)
    print(f"\nwrote {os.path.normpath(RESULT_PATH)}")
