"""Section 4.5 reproduction: DEAD shrinks binaries.

The paper: DeadFunctionElimination reduces binary size by 6.3% on average
across the 41 benchmarks, beyond ``clang -Oz``.  Size is proxied by the
whole-module IR instruction count (the quantity DEAD is specified to
reduce without increasing anything else); each workload links a small
utility library of which only parts are reachable.
"""

from conftest import print_table, run_once

from repro.experiments import sec45_binary_size


def test_sec45_dead_function_elimination(benchmark):
    rows = run_once(benchmark, sec45_binary_size)
    print_table(
        "Section 4.5 — binary size (IR instructions) before/after DEAD",
        ["benchmark", "before", "after", "removed fns", "reduction"],
        [
            (r["benchmark"], r["size_before"], r["size_after"],
             r["removed_functions"], f"{r['reduction_pct']:.1f}%")
            for r in rows
        ],
    )
    average = sum(r["reduction_pct"] for r in rows) / len(rows)
    print(f"\naverage reduction: {average:.1f}% (paper: 6.3%)")
    # Never grows (the tool's specification), always shrinks on average.
    for row in rows:
        assert row["size_after"] <= row["size_before"]
    assert average > 3.0
    # Every workload drags in the same dead library tail, so every row
    # must remove at least one function.
    assert all(r["removed_functions"] >= 1 for r in rows)
