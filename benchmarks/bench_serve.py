"""Compiler-as-a-service daemon: throughput, latency, and recovery.

Boots a real ``repro-noelle serve`` daemon (HTTP front end, supervised
worker process) and records its request-level behaviour in
``BENCH_serve.json`` at the repository root:

* **requests/sec and p50/p99 latency** — a stream of warm ``run``
  requests against one session, the daemon's steady state;
* **warm vs cold** — the first ``run`` on a fresh session (pays module
  compilation inside the worker) against the warm steady state, the
  request-level form of the paper's build-once-amortize-everywhere
  economics;
* **recovery after an injected worker kill** — a seeded ``serve_kill``
  fault ``os._exit``'s the worker mid-request; we verify the failed
  request came back as a structured error referencing a crash bundle
  and time how long until the same session is served successfully
  again (replacement worker + re-warm).

Runs standalone (``PYTHONPATH=src python benchmarks/bench_serve.py``;
add ``--smoke`` to skip the performance assertions, e.g. on loaded CI
runners) or under pytest with the rest of the benchmark suite.
"""

import json
import os
import statistics
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.serve.daemon import create_server, serve_forever
from repro.workloads import get

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_serve.json"
)
WORKLOAD = "crc32"
WARM_REQUESTS = 60
COLD_SESSIONS = 5


class _Client:
    def __init__(self, server):
        host, port = server.server_address[:2]
        self.base = f"http://{host}:{port}"

    def post(self, path, payload):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_bench() -> dict:
    source = get(WORKLOAD).source
    crash_dir = tempfile.mkdtemp(prefix="bench_serve_crash_")
    server = create_server(port=0, workers=1, crash_dir=crash_dir)
    thread = threading.Thread(
        target=serve_forever, args=(server,), daemon=True
    )
    thread.start()
    client = _Client(server)
    try:
        # -- cold: first run on a fresh session pays compilation --------------
        cold_latencies = []
        for index in range(COLD_SESSIONS):
            session = f"cold{index}"
            status, _ = client.post("/compile", {
                "session": session, "name": "m", "source": source,
            })
            assert status == 200
            start = time.perf_counter()
            status, body = client.post("/run", {
                "session": session, "name": "m",
            })
            cold_latencies.append(time.perf_counter() - start)
            assert status == 200 and body["result"]["warm"] is False

        # -- warm steady state -------------------------------------------------
        status, _ = client.post("/compile", {
            "session": "hot", "name": "m", "source": source,
        })
        assert status == 200
        status, _ = client.post("/run", {"session": "hot", "name": "m"})
        assert status == 200
        warm_latencies = []
        stream_start = time.perf_counter()
        for _ in range(WARM_REQUESTS):
            start = time.perf_counter()
            status, body = client.post("/run", {
                "session": "hot", "name": "m",
            })
            warm_latencies.append(time.perf_counter() - start)
            assert status == 200 and body["result"]["warm"] is True
            assert body["meta"]["engine_compiles"] == 0
        stream_seconds = time.perf_counter() - stream_start

        # -- recovery after an injected worker kill ----------------------------
        status, body = client.post("/run", {
            "session": "hot", "name": "m", "faults": "serve_kill:1",
        })
        assert status == 502, body
        assert body["error"]["kind"] == "WorkerCrashed"
        bundle = body["error"].get("bundle")
        assert bundle and os.path.exists(
            os.path.join(bundle, "report.json")
        ), body
        recovery_start = time.perf_counter()
        status, _ = client.post("/compile", {
            "session": "hot", "name": "m", "source": source,
        })
        assert status == 200
        status, body = client.post("/run", {"session": "hot", "name": "m"})
        recovery_s = time.perf_counter() - recovery_start
        assert status == 200 and body["result"]["exit_code"] == 0

        # the session re-warms after recovery
        status, body = client.post("/run", {"session": "hot", "name": "m"})
        assert status == 200 and body["result"]["warm"] is True

        stats = server.supervisor.stats()
    finally:
        server.shutdown()
        thread.join(timeout=30)

    warm_mean = statistics.fmean(warm_latencies)
    cold_mean = statistics.fmean(cold_latencies)
    return {
        "workload": WORKLOAD,
        "warm_requests": WARM_REQUESTS,
        "requests_per_sec": WARM_REQUESTS / stream_seconds,
        "p50_ms": _percentile(warm_latencies, 0.50) * 1e3,
        "p99_ms": _percentile(warm_latencies, 0.99) * 1e3,
        "cold_mean_ms": cold_mean * 1e3,
        "warm_mean_ms": warm_mean * 1e3,
        "warm_over_cold": cold_mean / warm_mean,
        "recovery_ms": recovery_s * 1e3,
        "worker_restarts": stats["serve"]["restarts"],
        "requests_total": stats["serve"]["requests"],
        "errors_total": stats["serve"]["errors"],
        # Exactly one error is deliberate: the seeded serve_kill above.
        # Anything beyond it would be a real service failure.
        "errors_injected": 1,
        "errors_unexpected": stats["serve"]["errors"] - 1,
    }


def report(results: dict) -> None:
    rows = [
        ("throughput (warm run)", f"{results['requests_per_sec']:.1f} req/s"),
        ("latency p50 / p99",
         f"{results['p50_ms']:.2f} / {results['p99_ms']:.2f} ms"),
        ("cold first run", f"{results['cold_mean_ms']:.2f} ms"),
        ("warm steady state", f"{results['warm_mean_ms']:.2f} ms"),
        ("warm-over-cold", f"{results['warm_over_cold']:.2f}x"),
        ("recovery after kill", f"{results['recovery_ms']:.2f} ms"),
        ("worker restarts", str(results["worker_restarts"])),
        ("errors (injected/unexpected)",
         f"{results['errors_injected']}/{results['errors_unexpected']}"),
    ]
    width = max(len(label) for label, _ in rows)
    print("\n=== Serve daemon ===")
    for label, value in rows:
        print(f"{label.ljust(width)}  {value}")


def write_results(results: dict) -> None:
    with open(RESULT_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def assert_claims(results: dict) -> None:
    # Warm requests ride the resident module's compiled-code cache: the
    # steady state must beat the cold first run (measured ~1.3x on a
    # small workload, where HTTP overhead dominates; the margin absorbs
    # loaded CI runners).
    assert results["warm_over_cold"] >= 1.05, results
    # Exactly one worker was killed and replaced, and recovery
    # (replacement + recompile + rerun) completed in bounded time.
    assert results["worker_restarts"] == 1, results
    assert results["recovery_ms"] < 30_000, results
    # The injected kill must be the *only* error the daemon saw.
    assert results["errors_unexpected"] == 0, results


def test_serve_daemon(benchmark):
    from conftest import run_once

    results = run_once(benchmark, run_bench)
    report(results)
    write_results(results)
    assert_claims(results)


if __name__ == "__main__":
    outcome = run_bench()
    report(outcome)
    write_results(outcome)
    if "--smoke" not in sys.argv[1:]:
        assert_claims(outcome)
    print(f"\nwrote {os.path.normpath(RESULT_PATH)}")
