"""Section 4.4 reproduction: SPEC-shaped suite speedups.

The paper: on 14 SPEC CPU2017 benchmarks only the NOELLE-based tools
obtain speedups, and those are modest (1–5%) — SPEC's hot loops hide
behind carried state and irregular control, and "speculative techniques
are likely to be required to unlock further speedups."
"""

from conftest import print_table, run_once

from repro.experiments import spec_speedups


def test_spec_modest_speedups(benchmark):
    rows = run_once(benchmark, lambda: spec_speedups(num_cores=12))
    print_table(
        "Section 4.4 — SPEC-shaped suite (12 simulated cores)",
        ["benchmark", "DOALL", "HELIX", "friendly?"],
        [
            (r["benchmark"], f"{r['doall']:.2f}x", f"{r['helix']:.2f}x",
             "yes" if r["parallel_friendly"] else "no")
            for r in rows
        ],
    )
    for row in rows:
        assert row["doall_correct"] and row["helix_correct"], row
    # The serial-dominated benchmarks stay near 1.0x (the paper's 1–5%
    # band) — no tool invents parallelism that is not there.
    unfriendly = [r for r in rows if not r["parallel_friendly"]]
    assert unfriendly
    for row in unfriendly:
        assert 0.6 <= row["doall"] <= 1.7, row
        assert 0.6 <= row["helix"] <= 1.7, row
    # The kernels with genuinely parallel hot loops do better — our suite
    # intentionally includes both populations.
    friendly = [r for r in rows if r["parallel_friendly"]]
    assert any(max(r["doall"], r["helix"]) > 1.5 for r in friendly)
