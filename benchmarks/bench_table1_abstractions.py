"""Table 1 reproduction: LoC of every NOELLE abstraction.

Regenerates the paper's Table 1 for this repository's implementation and
prints it next to the paper's numbers.  Absolute LoC differ (Python vs
C++, and our substrate is smaller), but the structural claims hold: every
abstraction exists as its own module, the PDG and the loop builder are the
largest, and the whole layer is ~an order of magnitude larger than any
single custom tool.
"""

from conftest import print_table, run_once

from repro.experiments import table1


def test_table1_abstraction_loc(benchmark):
    rows = run_once(benchmark, table1)
    print_table(
        "Table 1 — NOELLE abstractions (LoC)",
        ["abstraction", "ours", "paper"],
        [(r["abstraction"], r["loc"], r["paper_loc"]) for r in rows],
    )
    by_name = {r["abstraction"]: r["loc"] for r in rows}
    # Structural claims of the paper's Table 1.
    assert all(r["loc"] > 0 for r in rows)
    ranked = sorted(
        (r for r in rows if r["abstraction"] != "TOTAL"),
        key=lambda r: -r["loc"],
    )
    top_names = {r["abstraction"] for r in ranked[:4]}
    assert "PDG" in top_names, "PDG is among the largest abstractions"
    assert "Loop builder (LB)" in top_names, "LB is among the largest"
    assert by_name["Islands (ISL)"] < by_name["PDG"] / 5, (
        "islands is tiny relative to the PDG, as in the paper"
    )
    assert by_name["TOTAL"] >= 1500
