"""Table 2 reproduction: LoC of the noelle-* deployment tools."""

from conftest import print_table, run_once

from repro.experiments import table2


def test_table2_tool_loc(benchmark):
    rows = run_once(benchmark, table2)
    print_table(
        "Table 2 — NOELLE tools (LoC)",
        ["tool", "ours", "paper"],
        [(r["tool"], r["loc"], r["paper_loc"]) for r in rows],
    )
    assert all(r["loc"] > 0 for r in rows)
    total = [r for r in rows if r["tool"] == "TOTAL"][0]
    # The tool layer is an order of magnitude smaller than the
    # abstractions layer (paper: 5143 vs 26142).
    from repro.experiments import table1

    abstractions_total = [r for r in table1() if r["abstraction"] == "TOTAL"][0]
    assert total["loc"] < abstractions_total["loc"]
