"""Table 3 reproduction: custom-tool LoC with NOELLE vs without.

The paper's headline result — building on NOELLE cuts each custom tool's
code by 33.2%–99.2%.  For LICM the "without NOELLE" side is *measured*
(we implemented the standalone baseline); for the others it is *modeled*
as the tool's own LoC plus the layer modules a from-scratch build would
have to inline (see DESIGN.md, evaluation-fidelity notes).
"""

from conftest import print_table, run_once

from repro.experiments import table3


def test_table3_loc_reduction(benchmark):
    rows = run_once(benchmark, table3)
    print_table(
        "Table 3 — custom tools (LoC): LLVM-only vs on NOELLE",
        ["tool", "llvm", "noelle", "reduction", "paper llvm", "paper noelle",
         "paper red.", "llvm side"],
        [
            (
                r["tool"],
                r["llvm_loc"],
                r["noelle_loc"],
                f"{r['reduction_pct']:.1f}%",
                r["paper_llvm_loc"],
                r["paper_noelle_loc"],
                f"{r['paper_reduction_pct']:.1f}%",
                r["llvm_kind"],
            )
            for r in rows
        ],
    )
    by_tool = {r["tool"]: r for r in rows}
    # Every tool shrinks substantially on NOELLE.
    for row in rows:
        assert row["reduction_pct"] > 25.0, row
    # Ordering claims from the paper: DEAD and PRVJ are near-total
    # reductions; the parallelizers reduce by ~90%.
    assert by_tool["DEAD"]["reduction_pct"] > 85
    assert by_tool["PRVJ"]["reduction_pct"] > 90
    for parallelizer in ("DOALL", "HELIX"):
        assert by_tool[parallelizer]["reduction_pct"] > 80
    # All NOELLE-based tools except the Perspective port are "a few
    # hundred lines" (the paper's abstract: fewer than a thousand).
    for row in rows:
        if row["tool"] != "PERS":
            assert row["noelle_loc"] < 1000
