"""Table 4 reproduction: which NOELLE abstraction each custom tool uses.

Prints our implementation's usage matrix next to the paper's and asserts
the paper's claim: *every* abstraction serves multiple, heterogeneous
custom tools.
"""

from conftest import print_table, run_once

from repro.experiments import (
    ALL_ABSTRACTIONS,
    USAGE_MATRIX,
    abstraction_usage_counts,
    table4,
)
from repro.experiments.tables import PAPER_USAGE_MATRIX


def _matrix_rows(matrix):
    rows = []
    for tool in matrix:
        marks = ["x" if a in matrix[tool] else "." for a in ALL_ABSTRACTIONS]
        rows.append((tool, *marks))
    return rows


def test_table4_usage_matrix(benchmark):
    matrix = run_once(benchmark, table4)
    headers = ["tool", *ALL_ABSTRACTIONS]
    print_table("Table 4 — abstraction usage (ours)", headers,
                _matrix_rows(USAGE_MATRIX))
    print_table("Table 4 — abstraction usage (paper)", headers,
                _matrix_rows(PAPER_USAGE_MATRIX))
    counts = abstraction_usage_counts()
    print_table(
        "Tools per abstraction",
        ["abstraction", "tools using it"],
        sorted(counts.items(), key=lambda kv: -kv[1]),
    )
    # The paper's claim: each abstraction is used by several custom tools.
    for abstraction, count in counts.items():
        assert count >= 2, f"{abstraction} used by only {count} tool(s)"
    # Heterogeneity: the layer serves both parallelizers and
    # non-parallelizers for the widely-used abstractions.
    parallelizers = {"DOALL", "HELIX", "DSWP", "PERS"}
    for abstraction in ("L", "LB", "PDG"):
        users = {t for t, used in USAGE_MATRIX.items() if abstraction in used}
        assert users & parallelizers
        assert users - parallelizers, (
            f"{abstraction} should serve non-parallelizing tools too"
        )
    assert len(matrix) == 10
