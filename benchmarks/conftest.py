"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it computes the
data, prints it in the paper's format (so `pytest benchmarks/
--benchmark-only -s` shows the reproduction), asserts the qualitative
claims, and reports its runtime through pytest-benchmark.

Benches run their experiment exactly once (``benchmark.pedantic`` with one
round): the experiments are deterministic, so repetition would only
re-measure the same numbers — mirroring how the paper's own
confidence-interval protocol collapses under a deterministic simulator.
"""

import pytest


def run_once(benchmark, func):
    """Benchmark ``func`` with a single round and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def print_table(title, headers, rows):
    """Print an aligned text table (the bench's human-readable output)."""
    widths = [len(h) for h in headers]
    rendered = []
    for row in rows:
        cells = [str(c) for c in row]
        rendered.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for cells in rendered:
        print("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
