#!/usr/bin/env python
"""Build your own custom tool on NOELLE in ~40 lines.

This example writes a *loop unswitcher-lite*: it finds branches inside
loops whose condition is loop invariant (INV) and reports what a full
unswitching pass would hoist — then actually runs the real NOELLE LICM to
show the mechanism.  It demonstrates the development loop the paper
advertises: pick abstractions (L, INV, FR, LB), compose, done.

Run:  python examples/custom_tool.py
"""

from repro.core import Noelle
from repro.frontend import compile_source
from repro.interp import run_module
from repro.ir import CondBranch, Instruction
from repro.xforms import LICM

SOURCE = """
int config = 3;
int table[400];

int main() {
  int i;
  int sum = 0;
  int mode = config * 2 + 1;
  for (i = 0; i < 400; i = i + 1) {
    int threshold = config * 5 + 2;
    if (mode > 4) {
      table[i] = i * threshold;
    } else {
      table[i] = i + threshold;
    }
  }
  for (i = 0; i < 400; i = i + 1) { sum = sum + table[i]; }
  print_int(sum);
  return sum;
}
"""


class LoopUnswitchAdvisor:
    """A tiny custom tool: find invariant branches inside loops."""

    def __init__(self, noelle: Noelle):
        self.noelle = noelle

    def run(self) -> list[str]:
        findings = []
        for loop in self.noelle.loops():
            invariants = loop.invariants  # INV (Algorithm 2, PDG-powered)
            for block in loop.structure.basic_blocks():
                term = block.terminator
                if not isinstance(term, CondBranch):
                    continue
                condition = term.condition
                if not isinstance(condition, Instruction):
                    continue
                if not loop.structure.contains(condition):
                    findings.append(
                        f"branch in %{block.name}: condition defined "
                        f"outside the loop — unswitchable"
                    )
                elif invariants.is_invariant(condition):
                    findings.append(
                        f"branch in %{block.name}: condition "
                        f"{condition.ref()} is loop invariant — unswitchable"
                    )
        return findings


def main() -> None:
    module = compile_source(SOURCE)
    before = run_module(module)
    noelle = Noelle(module)

    advisor = LoopUnswitchAdvisor(noelle)
    print("unswitching opportunities:")
    for finding in advisor.run():
        print("  *", finding)

    hoisted = LICM(noelle).run()
    after = run_module(module)
    assert after.output == before.output
    print(f"\nLICM hoisted {hoisted} invariant instruction(s); "
          f"cycles {before.cycles} -> {after.cycles}")


if __name__ == "__main__":
    main()
