#!/usr/bin/env python
"""CARAT in action: guard memory accesses and catch an out-of-bounds bug.

The program walks past the end of a heap buffer when given a bad size.
Without CARAT the stray store scribbles into whatever the runtime placed
next; with CARAT, the guard traps the access before it happens — the
compiler/runtime co-design that replaces virtual-memory protection.

Run:  python examples/memory_safety_carat.py
"""

from repro.core import Noelle
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.xforms import CARAT

SOURCE = """
int main() {
  int *buffer = (int *)malloc(10);
  int i;
  int sum = 0;
  for (i = 0; i < 12; i = i + 1) {
    buffer[i] = i * i;
  }
  for (i = 0; i < 10; i = i + 1) {
    sum = sum + buffer[i];
  }
  print_int(sum);
  free((char *)buffer);
  return sum;
}
"""


def main() -> None:
    # Unprotected: the interpreter's memory model happens to catch the
    # overflow (a real machine often would not).
    plain = compile_source(SOURCE)
    result = Interpreter(plain).run()
    print(f"unprotected run: trapped={result.trapped!r}")

    # With CARAT: the guard fires with a precise diagnosis, and the stats
    # show how much checking the optimizer removed.
    guarded_module = compile_source(SOURCE)
    noelle = Noelle(guarded_module)
    stats = CARAT(noelle).run()
    print(f"\nCARAT: {stats.guards_inserted} guards inserted "
          f"({stats.candidates} candidates, {stats.proven_safe} proven safe, "
          f"{stats.merged} merged into range guards, "
          f"{stats.deduplicated} deduplicated)")

    result = Interpreter(guarded_module).run()
    print(f"guarded run: trapped={result.trapped!r}")
    print(f"guards executed before the trap: {result.guard_count}")


if __name__ == "__main__":
    main()
