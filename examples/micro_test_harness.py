#!/usr/bin/env python
"""NOELLE's testing infrastructure (Section 2.4) in action.

Runs a slice of the generated micro-test corpus through several custom-tool
pipelines, demonstrates the surgical force-one-loop option, and emits the
sequential bash driver script.

Run:  python examples/micro_test_harness.py
"""

from repro.testing import (
    ToolConfig,
    build_corpus,
    generate_bash_script,
    run_corpus,
    tests_with_pattern,
)


def main() -> None:
    corpus = build_corpus()
    print(f"corpus: {len(corpus)} micro tests")
    patterns = sorted({p for t in corpus for p in t.patterns})
    print(f"patterns: {', '.join(patterns)}\n")

    # Exercise the reduction subset under three pipelines.
    configs = [
        ToolConfig("licm", ["licm"]),
        ToolConfig("doall@4", ["doall"], num_cores=4),
        ToolConfig("helix@4", ["helix"], num_cores=4),
    ]
    subset = tests_with_pattern("reduction")[:6]
    outcomes = run_corpus(configs, subset)
    print(f"{'test':32s} {'config':10s} result")
    for outcome in outcomes:
        status = "PASS" if outcome.passed else f"FAIL ({outcome.detail})"
        print(f"{outcome.test.name:32s} {outcome.config.name:10s} {status}")

    failures = [o for o in outcomes if not o.passed]
    print(f"\n{len(outcomes) - len(failures)}/{len(outcomes)} passed")

    # The bash driver the paper's infrastructure generates.
    script = generate_bash_script(configs=configs, tests=subset)
    print("\n--- generated driver script (first lines) ---")
    for line in script.splitlines()[:8]:
        print(line)


if __name__ == "__main__":
    main()
