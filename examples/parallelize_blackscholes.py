#!/usr/bin/env python
"""The Figure 1 pipeline end to end: parallelize blackscholes with HELIX,
DOALL, and DSWP, and sweep the simulated core count.

Run:  python examples/parallelize_blackscholes.py
"""

from repro.core import Noelle
from repro.core.profiler import Profiler
from repro.interp import Interpreter
from repro.runtime import ParallelMachine
from repro.tools import remove_loop_carried_dependences
from repro.workloads import get
from repro.xforms import DOALL, DSWP, HELIX

TECHNIQUES = {
    "doall": lambda noelle, cores: DOALL(noelle, cores).run(0.02),
    "helix": lambda noelle, cores: HELIX(noelle, cores).run(0.02),
    "dswp": lambda noelle, cores: DSWP(noelle, num_stages=4).run(0.02),
}


def main() -> None:
    workload = get("blackscholes")

    baseline_module = workload.compile()
    baseline = Interpreter(baseline_module).run()
    print(f"sequential (clang stand-in): {baseline.cycles} cycles, "
          f"output {baseline.output}")

    for name, apply_technique in TECHNIQUES.items():
        module = workload.compile()
        noelle = Noelle(module)
        noelle.attach_profile(Profiler(module).profile())
        remove_loop_carried_dependences(noelle)
        count = apply_technique(noelle, 12)
        print(f"\n{name}: parallelized {count} loop(s)")
        for cores in (1, 2, 4, 8, 12, 24):
            machine = ParallelMachine(module, num_cores=cores)
            result = machine.run()
            assert result.trapped is None, result.trapped
            speedup = baseline.cycles / result.cycles
            print(f"  {cores:2d} cores: {speedup:5.2f}x "
                  f"({result.cycles} cycles)")


if __name__ == "__main__":
    main()
