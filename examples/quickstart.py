#!/usr/bin/env python
"""Quickstart: compile a program, load NOELLE, and query its abstractions.

Run:  python examples/quickstart.py
"""

from repro.core import Noelle
from repro.frontend import compile_source
from repro.interp import run_module
from repro.ir import print_module

SOURCE = """
int values[500];

int scale(int x) { return x * 3 + 1; }

int main() {
  int i;
  int sum = 0;
  for (i = 0; i < 500; i = i + 1) {
    values[i] = scale(i) % 97;
  }
  for (i = 0; i < 500; i = i + 1) {
    sum = sum + values[i];
  }
  print_int(sum);
  return sum;
}
"""


def main() -> None:
    # 1. Compile MiniC to the SSA IR (the repository's clang stand-in).
    module = compile_source(SOURCE)
    print("=== IR ===")
    print(print_module(module))

    # 2. Run it with the reference interpreter.
    result = run_module(module)
    print(f"program output: {result.output}, {result.cycles} cycles\n")

    # 3. Load the NOELLE layer.  Everything below is computed on demand.
    noelle = Noelle(module)

    # The program dependence graph (powered by Andersen points-to).
    pdg = noelle.pdg()
    print(f"PDG: {pdg.num_nodes()} nodes, {pdg.num_edges()} edges")
    print(f"  memory dep queries: {pdg.memory_queries}, "
          f"disproved: {pdg.memory_disproved}")

    # The complete call graph (indirect calls resolved).
    cg = noelle.call_graph()
    main_fn = module.get_function("main")
    print(f"call graph: main calls "
          f"{[e.callee.name for e in cg.callees_of(main_fn)]}")

    # Loops, with their aSCCDAGs, induction variables, and reductions.
    for loop in noelle.loops():
        dag = loop.sccdag
        iv = loop.governing_iv()
        print(f"\nloop at %{loop.structure.header.name}:")
        print(f"  {len(dag.sccs)} SCCs "
              f"({len(dag.sequential_sccs())} sequential, "
              f"{len(dag.reducible_sccs())} reducible)")
        print(f"  governing IV: {iv!r}")
        print(f"  DOALL-able: {loop.is_doall()}")
        print(f"  live-ins: {[v.ref() for v in loop.live_ins()]}, "
              f"live-outs: {[v.ref() for v in loop.live_outs()]}")


if __name__ == "__main__":
    main()
