"""repro — a Python reproduction of NOELLE (CGO 2022).

The package layers exactly as the paper describes:

* :mod:`repro.ir` — the IR substrate (the LLVM stand-in),
* :mod:`repro.frontend` — MiniC, a small C-like language (the clang stand-in),
* :mod:`repro.analysis` — foundational analyses (dominators, loops, AA),
* :mod:`repro.interp` / :mod:`repro.runtime` — execution and the simulated
  multicore machine,
* :mod:`repro.core` — the NOELLE abstraction layer (PDG, aSCCDAG, ...),
* :mod:`repro.baselines` — "vanilla LLVM"-grade counterparts,
* :mod:`repro.tools` — the noelle-* pipeline tools,
* :mod:`repro.xforms` — the ten custom tools of the paper,
* :mod:`repro.workloads` — MiniC benchmark programs shaped after
  SPEC CPU2017 / PARSEC 3.0 / MiBench.
"""

__version__ = "1.0.0"
