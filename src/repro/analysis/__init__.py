"""repro.analysis — foundational code analyses over the repro IR.

These are the algorithms LLVM ships (dominators, loop info, alias analysis,
scalar evolution) plus the stronger interprocedural points-to analysis that
plays the role of SCAF/SVF in powering NOELLE's PDG.
"""
