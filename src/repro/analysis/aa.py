"""Alias analysis interfaces and the LLVM-grade *basic* implementation.

Two alias analyses power the repository, mirroring the paper's setup:

* :class:`BasicAliasAnalysis` — the stand-in for LLVM's stateless AA:
  intraprocedural rules about allocas, globals, and constant-offset
  ``elem_ptr``, with no interprocedural reasoning.  This is what the
  "vanilla LLVM" baseline tools get.
* :class:`repro.analysis.pointsto.AndersenAliasAnalysis` — the stand-in for
  SCAF/SVF: whole-module inclusion-based points-to.  This is what powers
  NOELLE's PDG, and the precision gap between the two is what Figure 3
  measures.
"""

from __future__ import annotations

import enum

from ..ir.instructions import Alloca, Call, Cast, ElemPtr, Instruction, Load, Phi, Select
from ..ir.intrinsics import ALLOCATOR_INTRINSICS, INTRINSICS, PURE_INTRINSICS
from ..ir.module import Function
from ..ir.values import Argument, ConstantInt, ConstantNull, GlobalVariable, Value
from ..perf import STATS
from ..robust.faults import checkpoint as _fault_checkpoint


class AliasResult(enum.Enum):
    NO_ALIAS = "no"
    MAY_ALIAS = "may"
    MUST_ALIAS = "must"


class ModRefResult(enum.Flag):
    NO_MOD_REF = 0
    REF = enum.auto()
    MOD = enum.auto()
    MOD_REF = REF | MOD


class AliasAnalysis:
    """Interface every alias analysis implements."""

    def alias(self, a: Value, b: Value) -> AliasResult:
        raise NotImplementedError

    def mod_ref(self, inst: Instruction, ptr: Value) -> ModRefResult:
        """May ``inst`` read (REF) / write (MOD) the memory ``ptr`` points to?"""
        raise NotImplementedError


class AliasMemo:
    """Memoizes symmetric alias queries keyed by underlying-object pairs.

    When the two pointers derive from *different* underlying objects, the
    alias verdict is a pure function of the object pair (both the
    identified-object rules and the points-to-set intersection only look
    at the roots), so one cache entry answers every pointer pair rooted
    there.  When both pointers share one underlying object, the verdict
    depends on their offsets, so the entry is keyed by the concrete value
    pair instead.

    Keys are ``id()`` pairs; every entry pins strong references to the
    keyed values so a garbage-collected instruction can never recycle an
    id into a stale hit.  The memo stays valid across per-function PDG
    invalidation: dependence facts for surviving values cannot be
    weakened by in-place transformation (new values get fresh ids and
    therefore fresh, conservatively computed entries).
    """

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        #: key -> (result, pin_a, pin_b)
        self._cache: dict[tuple[int, int], tuple] = {}

    def key_of(self, a: Value, b: Value):
        """The cache key for the pair plus the values the entry must pin."""
        obj_a = underlying_object(a)
        obj_b = underlying_object(b)
        if obj_a is obj_b:
            ka, kb, pin_a, pin_b = id(a), id(b), a, b
        else:
            ka, kb, pin_a, pin_b = id(obj_a), id(obj_b), obj_a, obj_b
        key = (ka, kb) if ka <= kb else (kb, ka)
        return key, pin_a, pin_b

    def lookup(self, key) -> "AliasResult | None":
        entry = self._cache.get(key)
        return entry[0] if entry is not None else None

    def store(self, key, result: "AliasResult", pin_a: Value, pin_b: Value) -> None:
        self._cache[key] = (result, pin_a, pin_b)

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


def strip_pointer_casts(value: Value) -> Value:
    """Look through bitcasts and zero-offset elem_ptr to the base pointer."""
    while True:
        if isinstance(value, Cast) and value.opcode == "bitcast":
            value = value.value
        elif isinstance(value, ElemPtr) and value.has_all_zero_indices():
            value = value.base
        else:
            return value


def underlying_object(value: Value) -> Value:
    """Walk to the base allocation a pointer is derived from, if traceable.

    Returns an :class:`Alloca`, :class:`GlobalVariable`, allocator
    :class:`Call`, or the first value the walk cannot see through
    (argument, load, phi, ...).
    """
    while True:
        value = strip_pointer_casts(value)
        if isinstance(value, ElemPtr):
            value = value.base
        else:
            return value


def is_identified_object(value: Value) -> bool:
    """True for values known to be distinct allocations."""
    if isinstance(value, (Alloca, GlobalVariable)):
        return True
    return is_allocator_call(value)


def is_allocator_call(value: Value) -> bool:
    if not isinstance(value, Call):
        return False
    callee = value.called_function()
    return callee is not None and callee.name in ALLOCATOR_INTRINSICS


def _alloca_does_not_escape(alloca: Alloca) -> bool:
    """Conservative no-escape check: the address never leaves the function.

    Traces direct uses through casts/elem_ptr.  Stores *of* the pointer,
    calls taking the pointer, and returns of it count as escapes.
    """
    from ..ir.instructions import Ret, Store

    worklist: list[Value] = [alloca]
    seen: set[int] = set()
    while worklist:
        value = worklist.pop()
        if id(value) in seen:
            continue
        seen.add(id(value))
        for user in value.users():
            if isinstance(user, Load):
                continue
            if isinstance(user, Store):
                if user.value is value:
                    return False  # address stored somewhere
                continue
            if isinstance(user, (Cast, ElemPtr, Phi, Select)):
                worklist.append(user)
                continue
            if isinstance(user, (Call, Ret)):
                return False
            # icmp of pointers and other benign uses do not leak memory.
    return True


class BasicAliasAnalysis(AliasAnalysis):
    """Intraprocedural, stateless alias rules — the LLVM-grade baseline."""

    def __init__(self) -> None:
        self._memo = AliasMemo()

    def alias(self, a: Value, b: Value) -> AliasResult:
        _fault_checkpoint("alias_query")
        STATS.count("aa.basic.queries")
        key, pin_a, pin_b = self._memo.key_of(a, b)
        cached = self._memo.lookup(key)
        if cached is not None:
            STATS.count("aa.basic.memo_hits")
            return cached
        result = self._alias_uncached(a, b)
        self._memo.store(key, result, pin_a, pin_b)
        return result

    def _alias_uncached(self, a: Value, b: Value) -> AliasResult:
        a_stripped = strip_pointer_casts(a)
        b_stripped = strip_pointer_casts(b)
        if a_stripped is b_stripped:
            return AliasResult.MUST_ALIAS
        if isinstance(a_stripped, ConstantNull) or isinstance(b_stripped, ConstantNull):
            return AliasResult.NO_ALIAS

        obj_a = underlying_object(a_stripped)
        obj_b = underlying_object(b_stripped)

        if obj_a is obj_b:
            # Use the original pointers: their pointee types carry the
            # access sizes the range-overlap refinement needs.
            return self._same_object_alias(a, b)

        # Two distinct identified allocations never overlap.
        if is_identified_object(obj_a) and is_identified_object(obj_b):
            return AliasResult.NO_ALIAS

        # A non-escaping alloca cannot alias memory reached from outside the
        # function (arguments, globals, loaded pointers).
        for mine, other in ((obj_a, obj_b), (obj_b, obj_a)):
            if isinstance(mine, Alloca) and _alloca_does_not_escape(mine):
                if isinstance(other, (Argument, Load, GlobalVariable)) or isinstance(
                    other, Call
                ):
                    return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS

    def _same_object_alias(self, a: Value, b: Value) -> AliasResult:
        """Refine aliasing of two pointers into the same base object.

        When both pointers sit at a compile-time slot offset from the base,
        their access ranges either coincide (must), overlap (may), or are
        disjoint (no alias).
        """
        offset_a = _constant_slot_offset(a)
        offset_b = _constant_slot_offset(b)
        if offset_a is None or offset_b is None:
            return AliasResult.MAY_ALIAS
        size_a = a.type.pointee.size_in_slots() if a.type.is_pointer() else 1
        size_b = b.type.pointee.size_in_slots() if b.type.is_pointer() else 1
        if offset_a == offset_b and size_a == size_b:
            return AliasResult.MUST_ALIAS
        if offset_a + size_a <= offset_b or offset_b + size_b <= offset_a:
            return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS

    def mod_ref(self, inst: Instruction, ptr: Value) -> ModRefResult:
        from ..ir.instructions import Load as LoadInst, Store as StoreInst

        if isinstance(inst, LoadInst):
            if self.alias(inst.pointer, ptr) is AliasResult.NO_ALIAS:
                return ModRefResult.NO_MOD_REF
            return ModRefResult.REF
        if isinstance(inst, StoreInst):
            if self.alias(inst.pointer, ptr) is AliasResult.NO_ALIAS:
                return ModRefResult.NO_MOD_REF
            return ModRefResult.MOD
        if isinstance(inst, Call):
            return self.call_mod_ref(inst, ptr)
        return ModRefResult.NO_MOD_REF

    def call_mod_ref(self, call: Call, ptr: Value) -> ModRefResult:
        callee = call.called_function()
        if callee is not None and callee.name in PURE_INTRINSICS:
            return ModRefResult.NO_MOD_REF
        if callee is not None and callee.name in ALLOCATOR_INTRINSICS:
            return ModRefResult.NO_MOD_REF  # fresh memory only
        # A call cannot touch a non-escaping local allocation unless the
        # pointer is passed to it (escape analysis already covers that).
        obj = underlying_object(ptr)
        if isinstance(obj, Alloca) and _alloca_does_not_escape(obj):
            return ModRefResult.NO_MOD_REF
        return ModRefResult.MOD_REF


def _constant_slot_offset(pointer: Value) -> int | None:
    """Slot offset of ``pointer`` from its underlying object, if constant.

    Walks chains of constant-index ``elem_ptr`` (through bitcasts); returns
    None as soon as a variable index appears.
    """
    offset = 0
    while True:
        pointer = strip_pointer_casts(pointer)
        if not isinstance(pointer, ElemPtr):
            return offset
        current = pointer.base.type.pointee
        indices = pointer.indices
        first = indices[0]
        if not isinstance(first, ConstantInt):
            return None
        offset += first.value * current.size_in_slots()
        for index in indices[1:]:
            if not isinstance(index, ConstantInt):
                return None
            if current.is_array():
                offset += index.value * current.element.size_in_slots()
                current = current.element
            elif current.is_struct():
                offset += current.field_offset(index.value)
                current = current.fields[index.value]
            else:
                return None
        pointer = pointer.base
