"""CFG traversal utilities shared by every analysis."""

from __future__ import annotations

from ..ir.module import BasicBlock, Function


def reverse_postorder(fn: Function) -> list[BasicBlock]:
    """Blocks in reverse postorder from the entry (forward dataflow order)."""
    return list(reversed(postorder(fn)))


def postorder(fn: Function) -> list[BasicBlock]:
    """Blocks in postorder from the entry; unreachable blocks are omitted."""
    order: list[BasicBlock] = []
    visited: set[int] = set()
    # Iterative DFS to survive deep CFGs without hitting the recursion limit.
    stack: list[tuple[BasicBlock, int]] = [(fn.entry, 0)]
    visited.add(id(fn.entry))
    while stack:
        block, edge = stack[-1]
        successors = block.successors()
        if edge < len(successors):
            stack[-1] = (block, edge + 1)
            succ = successors[edge]
            if id(succ) not in visited:
                visited.add(id(succ))
                stack.append((succ, 0))
        else:
            stack.pop()
            order.append(block)
    return order


def reachable_blocks(fn: Function) -> set[int]:
    """The ids of all blocks reachable from the entry."""
    return {id(b) for b in postorder(fn)}


def exit_blocks(fn: Function) -> list[BasicBlock]:
    """Blocks that terminate the function (ret or unreachable)."""
    return [b for b in fn.blocks if not b.successors()]


def remove_unreachable_blocks(fn: Function) -> int:
    """Delete blocks not reachable from the entry; returns how many."""
    from ..ir.instructions import Phi

    reachable = reachable_blocks(fn)
    dead = [b for b in fn.blocks if id(b) not in reachable]
    # First fix phis in surviving blocks that mention dead predecessors.
    for block in fn.blocks:
        if id(block) not in reachable:
            continue
        for phi in list(block.phis()):
            for _, pred in list(phi.incoming()):
                if id(pred) not in reachable:
                    phi.remove_incoming(pred)
    for block in dead:
        block.erase()
    return len(dead)


def split_edge(pred: BasicBlock, succ: BasicBlock) -> BasicBlock:
    """Insert a fresh block on the CFG edge ``pred -> succ``.

    The new block becomes the phi predecessor in ``succ``.  Used by the loop
    builder to create pre-headers and dedicated exits.
    """
    from ..ir.instructions import Branch

    fn = pred.parent
    assert fn is not None and succ.parent is fn
    middle = fn.insert_block_after(pred, f"{pred.name}.split")
    middle.append(Branch(succ))
    term = pred.terminator
    assert term is not None
    term.replace_successor(succ, middle)
    for phi in succ.phis():
        for i in range(0, len(phi.operands), 2):
            if phi.operands[i + 1] is pred:
                phi.set_operand(i + 1, middle)
    return middle
