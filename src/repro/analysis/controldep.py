"""Control-dependence analysis (Ferrante–Ottenstein–Warren).

Block ``B`` is control dependent on edge ``(U -> V)`` when ``V`` does not
post-dominate ``U`` but ``B`` post-dominates ``V`` (one branch direction of
``U`` decides whether ``B`` runs).  The PDG's control edges come straight
from this analysis: every instruction of ``B`` is control dependent on the
terminator of ``U``.
"""

from __future__ import annotations

from collections import defaultdict

from ..ir.instructions import TerminatorInst
from ..ir.module import BasicBlock, Function
from .dominators import PostDominatorTree


class ControlDependence:
    """Block-level control-dependence relation for one function."""

    def __init__(self, fn: Function, pdt: PostDominatorTree | None = None):
        self.fn = fn
        self.pdt = pdt or PostDominatorTree(fn)
        #: id(block) -> blocks whose terminators control it.
        self._controllers: dict[int, list[BasicBlock]] = defaultdict(list)
        #: id(block) -> blocks it controls.
        self._controlled: dict[int, list[BasicBlock]] = defaultdict(list)
        self._build()

    def _build(self) -> None:
        for u in self.fn.blocks:
            successors = u.successors()
            if len(successors) < 2:
                continue  # only branching blocks create control dependence
            for v in successors:
                if self.pdt.post_dominates(v, u):
                    continue
                # Walk from v up the post-dominator tree, stopping at
                # ipdom(u); every block on the way is controlled by u.
                stop = self.pdt.ipdom.get(id(u))
                node: BasicBlock | None = v
                while node is not None and node is not stop and node is not self.pdt.sink:
                    self._add(u, node)
                    parent = self.pdt.ipdom.get(id(node))
                    if parent is node:
                        break
                    node = parent

    def _add(self, controller: BasicBlock, controlled: BasicBlock) -> None:
        if controller not in self._controllers[id(controlled)]:
            self._controllers[id(controlled)].append(controller)
            self._controlled[id(controller)].append(controlled)

    # -- queries -----------------------------------------------------------------
    def controllers_of(self, block: BasicBlock) -> list[BasicBlock]:
        """Blocks whose branch decides whether ``block`` executes."""
        return self._controllers.get(id(block), [])

    def controlled_by(self, block: BasicBlock) -> list[BasicBlock]:
        """Blocks whose execution is decided by ``block``'s branch."""
        return self._controlled.get(id(block), [])

    def controlling_terminators(self, block: BasicBlock) -> list[TerminatorInst]:
        result = []
        for controller in self.controllers_of(block):
            term = controller.terminator
            if term is not None:
                result.append(term)
        return result

    def control_equivalent(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when the two blocks execute under identical branch decisions.

        This is NOELLE's *control equivalence* helper abstraction
        (Section 2.2, "Other abstractions").
        """
        mine = {id(c) for c in self.controllers_of(a)}
        theirs = {id(c) for c in self.controllers_of(b)}
        return mine == theirs
