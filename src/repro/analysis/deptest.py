"""Symbolic loop dependence tests over affine subscripts (DESIGN.md §14).

For two memory accesses in a loop whose addresses linearize to affine
functions of the iteration number — ``base + const + syms + stride*i`` in
slot units, derived by :mod:`repro.analysis.scev` through the ``elem_ptr``
chain — the classic array dependence tests decide whether executions from
different iterations can touch the same slots:

* **ZIV** (zero index variable): both strides zero — the offsets either
  coincide every iteration or never.
* **strong SIV**: equal non-zero strides — a conflict forces an exact
  iteration distance ``(const_a - const_b) / stride``; a non-integer
  distance, or one at least the trip count, disproves it.
* **GCD**: different strides — any conflict satisfies a linear
  Diophantine equation, so a residue ``const_b - const_a`` indivisible by
  ``gcd(stride_a, stride_b)`` disproves it; otherwise the iteration-range
  bounds (SCEV range × trip count) may still separate the accesses.

Verdicts are :data:`PROVEN_INDEPENDENT`, :data:`PROVEN_DEPENDENT` (with
the dependence distance when unique), or :data:`UNKNOWN`.  Two scopes
with different soundness obligations:

* ``scope="loop"`` answers *can iterations of one execution of this loop
  conflict* — symbolic loop-invariant offset parts may cancel (the same
  symbols have the same values within one execution).  This refines
  loop-carried classification, DOALL legality, and the race checker.
* ``scope="function"`` answers *can these instructions ever touch common
  memory* — the proof must be invocation-independent, so only fully
  constant affine forms qualify (symbols may change between loop
  executions, re-aligning the accesses).  This prunes PDG shard edges.

Everything is gated behind ``NOELLE_DEPTEST=1`` (read dynamically, like
``NOELLE_STATS``); the default build never consults this module, keeping
figure outputs byte-identical to the seed.
"""

from __future__ import annotations

import os
from math import gcd

from ..ir.instructions import Cast, ElemPtr, Instruction, Load, Store
from ..ir.types import ArrayType, StructType
from ..ir.values import ConstantInt, Value
from ..perf import STATS
from .aa import underlying_object
from .loopinfo import NaturalLoop
from .scev import (
    SCEV,
    SCEVAddRec,
    SCEVConstant,
    ScalarEvolution,
    evolution_is_invariant,
)

#: Verdict kinds.
PROVEN_INDEPENDENT = "independent"
PROVEN_DEPENDENT = "dependent"
UNKNOWN = "unknown"


def deptest_enabled() -> bool:
    """True when symbolic dependence testing is on (``NOELLE_DEPTEST=1``)."""
    return os.environ.get("NOELLE_DEPTEST", "") not in ("", "0")


class DepVerdict:
    """Outcome of one dependence test."""

    __slots__ = ("kind", "distance", "reason")

    def __init__(self, kind: str, distance: int | None = None, reason: str = ""):
        self.kind = kind
        #: For PROVEN_DEPENDENT with a unique solution: the iteration
        #: distance d such that b's conflicting iteration is a's plus d.
        self.distance = distance
        self.reason = reason

    @property
    def is_independent(self) -> bool:
        return self.kind == PROVEN_INDEPENDENT

    @property
    def is_dependent(self) -> bool:
        return self.kind == PROVEN_DEPENDENT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        distance = f" d={self.distance}" if self.distance is not None else ""
        return f"<DepVerdict {self.kind}{distance} ({self.reason})>"


_INDEPENDENT = "independent"


class AffineAccess:
    """One access linearized to ``base + const + syms + stride*i`` slots."""

    __slots__ = ("inst", "base", "const", "syms", "stride", "size")

    def __init__(self, inst, base, const: int, syms, stride: int, size: int):
        self.inst = inst
        self.base = base
        self.const = const
        #: Canonical symbolic offset: tuple of (SCEV, coefficient), sorted
        #: by hash — SCEV nodes compare structurally, so equal symbolic
        #: offsets from two accesses cancel exactly.
        self.syms = syms
        self.stride = stride
        #: Slots the access touches ([const.., const+size) at iteration 0).
        self.size = size

    def describe(self) -> str:
        parts = [str(self.const)]
        for sym, coefficient in self.syms:
            parts.append(f"{coefficient}*{sym!r}")
        if self.stride:
            parts.append(f"{self.stride}*i")
        return f"{self.base.ref()}[{' + '.join(parts)}] size {self.size}"


class _Affine:
    """Mutable affine accumulator: const + sym coefficients + stride."""

    __slots__ = ("const", "syms", "stride")

    def __init__(self) -> None:
        self.const = 0
        self.syms: dict[SCEV, int] = {}
        self.stride = 0

    def add_scaled(self, other: "_Affine", scale: int) -> None:
        self.const += other.const * scale
        self.stride += other.stride * scale
        for sym, coefficient in other.syms.items():
            total = self.syms.get(sym, 0) + coefficient * scale
            if total:
                self.syms[sym] = total
            else:
                self.syms.pop(sym, None)

    def canonical_syms(self) -> tuple:
        return tuple(
            sorted(self.syms.items(), key=lambda item: (hash(item[0]), item[1]))
        )


def _decompose(scev: SCEV | None, loop: NaturalLoop) -> _Affine | None:
    """Split an evolution into constant + symbolic-invariant + stride parts."""
    from .scev import _Sym

    if scev is None:
        return None
    affine = _Affine()
    if isinstance(scev, SCEVConstant):
        affine.const = scev.value
        return affine
    if isinstance(scev, SCEVAddRec):
        if scev.loop is not loop:
            return None
        step = scev.constant_step()
        if step is None:
            return None
        start = _decompose(scev.start, loop)
        if start is None or start.stride != 0:
            return None
        affine.add_scaled(start, 1)
        affine.stride += step
        return affine
    if isinstance(scev, _Sym) and scev.opcode in ("add", "sub"):
        lhs = _decompose(scev.lhs, loop)
        rhs = _decompose(scev.rhs, loop)
        if lhs is None or rhs is None:
            return None
        affine.add_scaled(lhs, 1)
        affine.add_scaled(rhs, -1 if scev.opcode == "sub" else 1)
        return affine
    if isinstance(scev, _Sym) and scev.opcode == "mul":
        for const, other in ((scev.lhs, scev.rhs), (scev.rhs, scev.lhs)):
            if isinstance(const, SCEVConstant):
                inner = _decompose(other, loop)
                if inner is None:
                    return None
                affine.add_scaled(inner, const.value)
                return affine
        # fall through: an opaque invariant product is one symbol
    if evolution_is_invariant(scev):
        affine.syms[scev] = 1
        return affine
    return None


class DependenceTester:
    """ZIV / strong-SIV / GCD dependence tests for one loop's accesses."""

    def __init__(self, loop: NaturalLoop, scev: ScalarEvolution | None = None):
        self.loop = loop
        self.scev = scev if scev is not None else ScalarEvolution(
            loop, fold_srem=True
        )
        self.trip = self.scev.trip_count()
        self._accesses: dict[int, AffineAccess | None] = {}
        #: Pin id-keyed instructions (the alias-memo convention).
        self._pinned: dict[int, Instruction] = {}

    # -- access linearization ------------------------------------------------------
    def access_of(self, inst: Instruction) -> AffineAccess | None:
        """The affine slot-offset form of a load/store address, or None."""
        cached = self._accesses.get(id(inst))
        if cached is not None or id(inst) in self._accesses:
            return cached
        self._pinned[id(inst)] = inst
        result = self._linearize(inst)
        self._accesses[id(inst)] = result
        return result

    def _linearize(self, inst: Instruction) -> AffineAccess | None:
        if isinstance(inst, Load):
            pointer = inst.pointer
        elif isinstance(inst, Store):
            pointer = inst.pointer
        else:
            return None
        base = underlying_object(pointer)
        size = (
            pointer.type.pointee.size_in_slots()
            if pointer.type.is_pointer()
            else 1
        )
        offset = _Affine()
        while True:
            while isinstance(pointer, Cast):
                pointer = pointer.value
            if pointer is base:
                break
            if not isinstance(pointer, ElemPtr):
                return None  # phi-selected or loaded pointer: not affine
            current = pointer.base.type.pointee
            indices = pointer.indices
            term = self._index_affine(indices[0])
            if term is None:
                return None
            offset.add_scaled(term, current.size_in_slots())
            for index in indices[1:]:
                if isinstance(current, ArrayType):
                    term = self._index_affine(index)
                    if term is None:
                        return None
                    offset.add_scaled(term, current.element.size_in_slots())
                    current = current.element
                elif isinstance(current, StructType):
                    if not isinstance(index, ConstantInt):
                        return None
                    if not 0 <= index.value < len(current.fields):
                        return None
                    offset.const += current.field_offset(index.value)
                    current = current.fields[index.value]
                else:
                    return None
            pointer = pointer.base
        return AffineAccess(
            inst, base, offset.const, offset.canonical_syms(), offset.stride,
            size,
        )

    def _index_affine(self, index: Value) -> _Affine | None:
        if isinstance(index, ConstantInt):
            term = _Affine()
            term.const = index.value
            return term
        return _decompose(self.scev.evolution_of(index), self.loop)

    # -- the tests ----------------------------------------------------------------
    def test_pair(
        self, a: Instruction, b: Instruction, scope: str = "loop"
    ) -> DepVerdict:
        """Dependence verdict for accesses ``a`` and ``b`` (see module doc).

        ``scope="loop"`` quantifies over iteration pairs of one loop
        execution; ``scope="function"`` additionally requires the proof
        to hold across executions (fully constant affine forms only).
        """
        STATS.count("deptest.pairs_tested")
        verdict = self._test_pair(a, b, scope)
        if verdict.is_independent:
            STATS.count("deptest.proven_independent")
        elif verdict.is_dependent:
            STATS.count("deptest.proven_dependent")
        else:
            STATS.count("deptest.unknown")
        return verdict

    def _test_pair(self, a: Instruction, b: Instruction, scope: str) -> DepVerdict:
        access_a = self.access_of(a)
        access_b = self.access_of(b)
        if access_a is None or access_b is None:
            return DepVerdict(UNKNOWN, reason="non-affine access")
        if access_a.base is not access_b.base:
            return DepVerdict(UNKNOWN, reason="different base objects")
        if scope == "function":
            if access_a.syms or access_b.syms:
                return DepVerdict(
                    UNKNOWN, reason="symbolic offset is not invocation-independent"
                )
        elif access_a.syms != access_b.syms:
            return DepVerdict(UNKNOWN, reason="symbolic offsets do not cancel")
        # From here the symbolic parts cancel: the offset difference is
        # delta + stride_b*j - stride_a*i with everything constant.
        delta = access_b.const - access_a.const
        stride_a, stride_b = access_a.stride, access_b.stride
        size_a, size_b = access_a.size, access_b.size
        if stride_a == 0 and stride_b == 0:
            return self._ziv(delta, size_a, size_b)
        if stride_a == stride_b:
            return self._strong_siv(delta, stride_a, size_a, size_b)
        return self._gcd(access_a, access_b, delta)

    @staticmethod
    def _ziv(delta: int, size_a: int, size_b: int) -> DepVerdict:
        # Same slots every iteration, or never: ranges [0, size_a) and
        # [delta, delta+size_b) around the common offset.  An overlap
        # conflicts at *every* iteration pair, so no distance is claimed.
        if -size_b < delta < size_a:
            return DepVerdict(PROVEN_DEPENDENT, reason="ZIV overlap")
        return DepVerdict(PROVEN_INDEPENDENT, reason="ZIV disjoint")

    def _strong_siv(
        self, delta: int, stride: int, size_a: int, size_b: int
    ) -> DepVerdict:
        # Conflict between iterations i (a) and j (b) iff
        # delta + stride*(j - i) lands in (-size_b, size_a).  Enumerate
        # the offsets in that window on a's residue class.
        distances = []
        for offset in range(-(size_b - 1), size_a):
            if (offset - delta) % stride == 0:
                distance = (offset - delta) // stride
                if self.trip is not None and abs(distance) >= self.trip:
                    continue  # farther apart than the loop ever runs
                distances.append(distance)
        if not distances:
            return DepVerdict(PROVEN_INDEPENDENT, reason="SIV no distance")
        if len(distances) == 1:
            return DepVerdict(
                PROVEN_DEPENDENT, distance=distances[0], reason="strong SIV"
            )
        return DepVerdict(UNKNOWN, reason="SIV multiple distances")

    def _gcd(
        self, access_a: AffineAccess, access_b: AffineAccess, delta: int
    ) -> DepVerdict:
        divisor = gcd(abs(access_a.stride), abs(access_b.stride))
        if divisor > 1:
            hit = any(
                (offset - delta) % divisor == 0
                for offset in range(-(access_b.size - 1), access_a.size)
            )
            if not hit:
                return DepVerdict(PROVEN_INDEPENDENT, reason="GCD residue")
        range_a = self._range(access_a)
        range_b = self._range(access_b)
        if range_a is not None and range_b is not None:
            low_a, high_a = range_a
            low_b, high_b = range_b
            if high_a < low_b or high_b < low_a:
                return DepVerdict(PROVEN_INDEPENDENT, reason="ranges disjoint")
        return DepVerdict(UNKNOWN, reason="GCD inconclusive")

    def _range(self, access: AffineAccess) -> tuple[int, int] | None:
        """Inclusive slot range the access spans over all iterations."""
        if access.syms:
            return None
        if access.stride == 0:
            return (access.const, access.const + access.size - 1)
        if self.trip is None or self.trip <= 0:
            return None
        last = access.const + access.stride * (self.trip - 1)
        return (
            min(access.const, last),
            max(access.const, last) + access.size - 1,
        )

    # -- consumers' shapes ---------------------------------------------------------
    def carried(
        self, a: Instruction, b: Instruction
    ) -> tuple[bool, int | None]:
        """(may the dependence cross iterations, known distance).

        ``(False, None)`` means proven intra-iteration-only (or absent
        entirely); ``(True, d)`` keeps the edge with an exact distance;
        ``(True, None)`` is the conservative answer.
        """
        with STATS.timer("deptest.query"):
            verdict = self.test_pair(a, b, scope="loop")
        if verdict.is_independent:
            return (False, None)
        if verdict.is_dependent:
            if verdict.distance == 0:
                return (False, None)  # same iteration only: not carried
            return (True, verdict.distance)
        return (True, None)

    def proves_no_dependence(self, a: Instruction, b: Instruction) -> bool:
        """Invocation-independent disjointness (PDG shard pruning)."""
        with STATS.timer("deptest.query"):
            return self.test_pair(a, b, scope="function").is_independent


class FunctionDepTest:
    """Function-scope dependence tester: one lazy tester per loop.

    Used during PDG shard construction; rebuilt with the shard, so warm
    invalidation semantics are untouched.
    """

    def __init__(self, fn):
        self.fn = fn
        self._info = None
        self._testers: dict[int, DependenceTester] = {}
        #: Pin id-keyed loops alongside their testers.
        self._pinned: dict[int, NaturalLoop] = {}

    def _loop_info(self):
        if self._info is None:
            from .loopinfo import LoopInfo

            self._info = LoopInfo(self.fn)
        return self._info

    def _common_loop(self, a: Instruction, b: Instruction) -> NaturalLoop | None:
        info = self._loop_info()
        loop = info.loop_of(a.parent)
        while loop is not None and not loop.contains(b):
            loop = loop.parent
        return loop

    def proves_independent(self, a: Instruction, b: Instruction) -> bool:
        """Can the pair be proven disjoint in every execution?"""
        if not isinstance(a, (Load, Store)) or not isinstance(b, (Load, Store)):
            return False
        loop = self._common_loop(a, b)
        if loop is None:
            return False
        tester = self._testers.get(id(loop))
        if tester is None:
            tester = DependenceTester(loop)
            self._testers[id(loop)] = tester
            self._pinned[id(loop)] = loop
        return tester.proves_no_dependence(a, b)
