"""Dominator and post-dominator trees (Cooper–Harvey–Kennedy algorithm).

NOELLE re-implements LLVM's dominator abstraction with user-controlled
lifetime (Section 2.2, "Other abstractions"): LLVM function passes free
their analysis memory when moved to another function, causing stale-pointer
bugs in module passes.  These Python objects are plain values — they live
as long as their owner keeps them — which reproduces NOELLE's fix by
construction.  They do *not* auto-invalidate: after mutating a function,
construct a fresh tree.
"""

from __future__ import annotations

from ..ir.module import BasicBlock, Function
from .cfg import postorder


class DominatorTree:
    """Immediate-dominator tree over the blocks of one function."""

    def __init__(self, fn: Function):
        self.fn = fn
        #: id(block) -> immediate dominator block (entry maps to itself).
        self.idom: dict[int, BasicBlock] = {}
        #: id(block) -> children in the dominator tree.
        self.children: dict[int, list[BasicBlock]] = {}
        self._by_id: dict[int, BasicBlock] = {}
        self._rpo_index: dict[int, int] = {}
        self._build()

    # -- construction ------------------------------------------------------------
    def _build(self) -> None:
        order = list(reversed(postorder(self.fn)))  # reverse postorder
        if not order:
            return
        for index, block in enumerate(order):
            self._rpo_index[id(block)] = index
            self._by_id[id(block)] = block
        entry = order[0]
        self.idom[id(entry)] = entry
        changed = True
        while changed:
            changed = False
            for block in order[1:]:
                new_idom: BasicBlock | None = None
                for pred in block.predecessors():
                    if id(pred) not in self.idom:
                        continue  # unreachable or not yet processed
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(pred, new_idom)
                if new_idom is not None and self.idom.get(id(block)) is not new_idom:
                    self.idom[id(block)] = new_idom
                    changed = True
        for block in order:
            self.children.setdefault(id(block), [])
        for block in order[1:]:
            parent = self.idom[id(block)]
            self.children.setdefault(id(parent), []).append(block)

    def _intersect(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while self._rpo_index[id(a)] > self._rpo_index[id(b)]:
                a = self.idom[id(a)]
            while self._rpo_index[id(b)] > self._rpo_index[id(a)]:
                b = self.idom[id(b)]
        return a

    # -- queries ------------------------------------------------------------------
    def immediate_dominator(self, block: BasicBlock) -> BasicBlock | None:
        """The immediate dominator, or None for the entry / unreachable blocks."""
        parent = self.idom.get(id(block))
        if parent is None or parent is block:
            return None
        return parent

    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (every block dominates itself)."""
        if id(b) not in self.idom:
            return False  # b unreachable: nothing meaningfully dominates it
        node = b
        while True:
            if node is a:
                return True
            parent = self.idom.get(id(node))
            if parent is None or parent is node:
                return False
            node = parent

    def strictly_dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates_block(a, b)

    def dominates(self, a, b) -> bool:
        """Instruction-level dominance: does instruction ``a`` dominate ``b``?"""
        if a.parent is b.parent:
            block = a.parent
            return block.instructions.index(a) < block.instructions.index(b)
        return self.dominates_block(a.parent, b.parent)

    def dominated_blocks(self, block: BasicBlock) -> list[BasicBlock]:
        """All blocks dominated by ``block`` (inclusive), in preorder."""
        result: list[BasicBlock] = []
        stack = [block]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(self.children.get(id(node), []))
        return result

    def dominance_frontier(self) -> dict[int, set[int]]:
        """id(block) -> ids of its dominance-frontier blocks."""
        frontier: dict[int, set[int]] = {bid: set() for bid in self.idom}
        for block_id, block in self._by_id.items():
            preds = [p for p in block.predecessors() if id(p) in self.idom]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner is not self.idom[block_id]:
                    frontier[id(runner)].add(block_id)
                    runner = self.idom[id(runner)]
        return frontier

    def block_by_id(self, block_id: int) -> BasicBlock:
        return self._by_id[block_id]


class PostDominatorTree:
    """Post-dominator tree, built on the reversed CFG.

    Control dependence (a PDG ingredient) is computed from this tree using
    the Ferrante–Ottenstein–Warren construction.  Functions with multiple
    exits are handled with a *virtual sink* block (not part of the function)
    that every exit flows into; the sink is the root of the tree.
    """

    def __init__(self, fn: Function):
        self.fn = fn
        #: Virtual exit that post-dominates everything.
        self.sink = BasicBlock("<sink>")
        #: id(block) -> immediate post-dominator (the sink's is itself).
        self.ipdom: dict[int, BasicBlock] = {}
        self._rpo_index: dict[int, int] = {}
        self._by_id: dict[int, BasicBlock] = {}
        self._build()

    def _succs(self, block: BasicBlock) -> list[BasicBlock]:
        """Successors in the sink-augmented CFG."""
        if block is self.sink:
            return []
        succs = block.successors()
        return succs if succs else [self.sink]

    def _preds(self, block: BasicBlock) -> list[BasicBlock]:
        """Predecessors in the sink-augmented CFG."""
        if block is self.sink:
            return [b for b in self.fn.blocks if not b.successors()]
        return block.predecessors()

    def _build(self) -> None:
        if not any(not b.successors() for b in self.fn.blocks):
            return  # infinite loop with no exit: nothing post-dominates
        order = self._reverse_cfg_rpo()
        for index, block in enumerate(order):
            self._rpo_index[id(block)] = index
            self._by_id[id(block)] = block
        self.ipdom[id(self.sink)] = self.sink
        changed = True
        while changed:
            changed = False
            for block in order:
                if block is self.sink:
                    continue
                new_ipdom: BasicBlock | None = None
                for succ in self._succs(block):
                    if id(succ) not in self.ipdom:
                        continue
                    if new_ipdom is None:
                        new_ipdom = succ
                    else:
                        new_ipdom = self._intersect(succ, new_ipdom)
                if new_ipdom is not None and self.ipdom.get(id(block)) is not new_ipdom:
                    self.ipdom[id(block)] = new_ipdom
                    changed = True

    def _reverse_cfg_rpo(self) -> list[BasicBlock]:
        """Reverse postorder of the reversed (sink-augmented) CFG."""
        order: list[BasicBlock] = []
        visited: set[int] = {id(self.sink)}
        stack: list[tuple[BasicBlock, int]] = [(self.sink, 0)]
        while stack:
            block, edge = stack[-1]
            preds = self._preds(block)
            if edge < len(preds):
                stack[-1] = (block, edge + 1)
                pred = preds[edge]
                if id(pred) not in visited:
                    visited.add(id(pred))
                    stack.append((pred, 0))
            else:
                stack.pop()
                order.append(block)
        return list(reversed(order))

    def _intersect(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while self._rpo_index[id(a)] > self._rpo_index[id(b)]:
                a = self.ipdom[id(a)]
            while self._rpo_index[id(b)] > self._rpo_index[id(a)]:
                b = self.ipdom[id(b)]
        return a

    def immediate_post_dominator(self, block: BasicBlock) -> BasicBlock | None:
        """The immediate post-dominator; the sink is reported as None."""
        parent = self.ipdom.get(id(block))
        if parent is None or parent is self.sink or parent is block:
            return None
        return parent

    def post_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if every path from ``b`` to an exit passes through ``a``."""
        if id(b) not in self.ipdom:
            return False
        node = b
        while True:
            if node is a:
                return True
            parent = self.ipdom.get(id(node))
            if parent is None or parent is node:
                return False
            node = parent
