"""Natural-loop detection.

Finds natural loops from back edges in the dominator tree and arranges them
in a nesting forest.  This is the raw CFG-level information; NOELLE's
``LoopStructure`` abstraction (:mod:`repro.core.loopstructure`) wraps one of
these loops with header/pre-header/latch/exit queries and user-controlled
lifetime.
"""

from __future__ import annotations

from ..ir.module import BasicBlock, Function
from .dominators import DominatorTree


class NaturalLoop:
    """One natural loop: a header plus the blocks of its back edges' bodies."""

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: list[BasicBlock] = [header]
        self._block_ids: set[int] = {id(header)}
        self.parent: "NaturalLoop | None" = None
        self.children: list["NaturalLoop"] = []

    def add_block(self, block: BasicBlock) -> None:
        if id(block) not in self._block_ids:
            self._block_ids.add(id(block))
            self.blocks.append(block)

    def contains_block(self, block: BasicBlock) -> bool:
        return id(block) in self._block_ids

    def contains(self, inst) -> bool:
        """True if ``inst`` (an instruction) lives inside this loop."""
        return inst.parent is not None and id(inst.parent) in self._block_ids

    # -- structural queries ------------------------------------------------------
    def latches(self) -> list[BasicBlock]:
        """Blocks inside the loop that branch back to the header."""
        return [p for p in self.header.predecessors() if self.contains_block(p)]

    def entries(self) -> list[BasicBlock]:
        """Blocks outside the loop that branch to the header."""
        return [p for p in self.header.predecessors() if not self.contains_block(p)]

    def exiting_blocks(self) -> list[BasicBlock]:
        """Blocks inside the loop with a successor outside it."""
        result = []
        for block in self.blocks:
            if any(not self.contains_block(s) for s in block.successors()):
                result.append(block)
        return result

    def exit_blocks(self) -> list[BasicBlock]:
        """Blocks outside the loop that are targets of loop exits."""
        result: list[BasicBlock] = []
        seen: set[int] = set()
        for block in self.blocks:
            for succ in block.successors():
                if not self.contains_block(succ) and id(succ) not in seen:
                    seen.add(id(succ))
                    result.append(succ)
        return result

    def depth(self) -> int:
        """Nesting depth; top-level loops have depth 1."""
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def innermost_loops(self) -> list["NaturalLoop"]:
        if not self.children:
            return [self]
        result = []
        for child in self.children:
            result.extend(child.innermost_loops())
        return result

    def sub_loops(self) -> list["NaturalLoop"]:
        """All loops strictly nested inside this one."""
        result: list["NaturalLoop"] = []
        stack = list(self.children)
        while stack:
            loop = stack.pop()
            result.append(loop)
            stack.extend(loop.children)
        return result

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def num_instructions(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NaturalLoop header=%{self.header.name} blocks={len(self.blocks)}>"


class LoopInfo:
    """The loop nesting forest of one function."""

    def __init__(self, fn: Function, dom: DominatorTree | None = None):
        self.fn = fn
        self.dom = dom or DominatorTree(fn)
        self.top_level: list[NaturalLoop] = []
        self._loop_of_block: dict[int, NaturalLoop] = {}
        self._build()

    def _build(self) -> None:
        # Find back edges: edge (tail -> head) where head dominates tail.
        loops_by_header: dict[int, NaturalLoop] = {}
        header_order: list[BasicBlock] = []
        for block in self.fn.blocks:
            for succ in block.successors():
                if self.dom.dominates_block(succ, block):
                    loop = loops_by_header.get(id(succ))
                    if loop is None:
                        loop = NaturalLoop(succ)
                        loops_by_header[id(succ)] = loop
                        header_order.append(succ)
                    self._collect_body(loop, block)
        # Nest loops: a loop is a child of the smallest loop (other than
        # itself) containing its header.
        all_loops = [loops_by_header[id(h)] for h in header_order]
        all_loops.sort(key=lambda loop: len(loop.blocks))
        for index, loop in enumerate(all_loops):
            for candidate in all_loops[index + 1 :]:
                if candidate.contains_block(loop.header):
                    loop.parent = candidate
                    candidate.children.append(loop)
                    break
        self.top_level = [loop for loop in all_loops if loop.parent is None]
        # innermost-loop-of-block map.
        for loop in all_loops:
            for block in loop.blocks:
                current = self._loop_of_block.get(id(block))
                if current is None or len(loop.blocks) < len(current.blocks):
                    self._loop_of_block[id(block)] = loop

    def _collect_body(self, loop: NaturalLoop, tail: BasicBlock) -> None:
        # Walk predecessors from the back edge's tail, stopping at the header.
        stack = [tail]
        while stack:
            block = stack.pop()
            if loop.contains_block(block):
                continue
            loop.add_block(block)
            stack.extend(block.predecessors())

    # -- queries -----------------------------------------------------------------
    def loops(self) -> list[NaturalLoop]:
        """All loops, outermost first within each tree."""
        result: list[NaturalLoop] = []
        stack = list(self.top_level)
        while stack:
            loop = stack.pop(0)
            result.append(loop)
            stack.extend(loop.children)
        return result

    def innermost_loops(self) -> list[NaturalLoop]:
        result = []
        for loop in self.top_level:
            result.extend(loop.innermost_loops())
        return result

    def loop_of(self, block: BasicBlock) -> NaturalLoop | None:
        """The innermost loop containing ``block``, if any."""
        return self._loop_of_block.get(id(block))

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.loop_of(block)
        return loop.depth() if loop is not None else 0
