"""Interprocedural Mod/Ref summaries built on points-to.

For every defined function, computes the sets of abstract memory objects it
may read and may write, transitively through calls (including indirect ones
resolved by points-to).  Calls can then answer precise mod/ref queries:
a call only clobbers ``ptr`` if its callee-set's write set intersects the
objects ``ptr`` may point to.
"""

from __future__ import annotations

from collections import defaultdict

from ..ir.instructions import Call, Load, Store
from ..ir.intrinsics import ALLOCATOR_INTRINSICS, INTRINSICS, PURE_INTRINSICS
from ..ir.module import Function, Module
from ..ir.values import Value
from .aa import ModRefResult
from .pointsto import MemoryObject, PointsToAnalysis


class FunctionEffects:
    """The memory footprint of one function."""

    def __init__(self) -> None:
        self.reads: set[MemoryObject] = set()
        self.writes: set[MemoryObject] = set()
        #: True when the function may touch memory we cannot name
        #: (unknown external calls).
        self.unknown = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<effects reads={len(self.reads)} writes={len(self.writes)} "
            f"unknown={self.unknown}>"
        )


class ModRefAnalysis:
    """Module-wide Mod/Ref summaries with a fixpoint over the call graph."""

    def __init__(self, module: Module, pointsto: PointsToAnalysis):
        self.module = module
        self.pointsto = pointsto
        self.effects: dict[int, FunctionEffects] = {}
        self._solve()

    def _solve(self) -> None:
        for fn in self.module.functions.values():
            self.effects[id(fn)] = self._initial_effects(fn)
        changed = True
        while changed:
            changed = False
            for fn in self.module.defined_functions():
                summary = self.effects[id(fn)]
                for inst in fn.instructions():
                    if isinstance(inst, Call):
                        if self._absorb_call(summary, inst):
                            changed = True

    def _initial_effects(self, fn: Function) -> FunctionEffects:
        summary = FunctionEffects()
        if fn.is_declaration():
            if fn.name in PURE_INTRINSICS or fn.name in ALLOCATOR_INTRINSICS:
                pass  # no visible memory effects
            elif fn.name in INTRINSICS:
                pass  # modeled intrinsics (I/O, OS hooks) touch no program memory
            else:
                summary.unknown = True
            return summary
        for inst in fn.instructions():
            if isinstance(inst, Load):
                self._absorb_access(summary.reads, summary, inst.pointer)
            elif isinstance(inst, Store):
                self._absorb_access(summary.writes, summary, inst.pointer)
        return summary

    def _absorb_access(
        self, bucket: set[MemoryObject], summary: FunctionEffects, ptr: Value
    ) -> None:
        objects = self.pointsto.points_to(ptr)
        if not objects:
            summary.unknown = True
            return
        for obj in objects:
            if obj.kind == "unknown":
                summary.unknown = True
            else:
                bucket.add(obj)

    def _absorb_call(self, summary: FunctionEffects, call: Call) -> bool:
        changed = False
        for callee in self.pointsto.callees_of(call):
            callee_summary = self.effects.get(id(callee))
            if callee_summary is None:
                continue
            if callee_summary.unknown and not summary.unknown:
                summary.unknown = True
                changed = True
            new_reads = callee_summary.reads - summary.reads
            if new_reads:
                summary.reads |= new_reads
                changed = True
            new_writes = callee_summary.writes - summary.writes
            if new_writes:
                summary.writes |= new_writes
                changed = True
        if not self.pointsto.callees_of(call) and call.is_indirect():
            # Unresolved indirect call: be conservative.
            if not summary.unknown:
                summary.unknown = True
                changed = True
        return changed

    # -- queries -----------------------------------------------------------------
    def function_effects(self, fn: Function) -> FunctionEffects:
        return self.effects[id(fn)]

    def call_mod_ref(self, call: Call, ptr: Value) -> ModRefResult:
        """May this call read/write the memory ``ptr`` points to?"""
        targets = self.pointsto.callees_of(call)
        if not targets:
            return ModRefResult.MOD_REF
        ptr_objects = self.pointsto.points_to(ptr)
        if not ptr_objects or any(o.kind == "unknown" for o in ptr_objects):
            return ModRefResult.MOD_REF
        result = ModRefResult.NO_MOD_REF
        for callee in targets:
            summary = self.effects.get(id(callee))
            if summary is None or summary.unknown:
                # Unknown externals may touch escaped objects only.
                if any(self.pointsto.escapes(o) for o in ptr_objects):
                    return ModRefResult.MOD_REF
                continue
            if summary.reads & ptr_objects:
                result |= ModRefResult.REF
            if summary.writes & ptr_objects:
                result |= ModRefResult.MOD
        return result
