"""Whole-module inclusion-based (Andersen-style) points-to analysis.

This is the repository's stand-in for the external alias analyses NOELLE
integrates (SCAF, SVF): an interprocedural, flow-insensitive, inclusion-based
points-to solver over the entire module.  It resolves:

* which allocations each pointer may reference (alias queries),
* which functions an indirect call may invoke (the complete call graph), and
* which objects escape to unmodeled external code.

Objects are named by allocation site: one object per ``alloca``, per global
variable, per ``malloc`` call site, plus one object per function (so
function pointers resolve).  A distinguished *unknown* object stands for
memory created or reached by unmodeled externals.
"""

from __future__ import annotations

from collections import defaultdict

from ..ir.instructions import (
    Alloca,
    Call,
    Cast,
    ElemPtr,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.intrinsics import ALLOCATOR_INTRINSICS, INTRINSICS
from ..ir.module import Function, Module
from ..ir.values import Argument, GlobalVariable, Value
from ..perf import STATS
from ..robust.faults import checkpoint as _fault_checkpoint
from .aa import (
    AliasAnalysis,
    AliasMemo,
    AliasResult,
    BasicAliasAnalysis,
    ModRefResult,
    strip_pointer_casts,
)


class MemoryObject:
    """An abstract allocation site."""

    __slots__ = ("kind", "site", "name")

    def __init__(self, kind: str, site: object, name: str):
        self.kind = kind  # "alloca" | "global" | "heap" | "function" | "unknown"
        self.site = site
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<obj {self.kind}:{self.name}>"


class PointsToAnalysis:
    """Solved Andersen points-to information for one module."""

    def __init__(self, module: Module):
        self.module = module
        self.unknown = MemoryObject("unknown", None, "<unknown>")
        #: id(Value) -> set of MemoryObject the value may point to.
        self._pts: dict[int, set[MemoryObject]] = defaultdict(set)
        #: id(MemoryObject) -> set of MemoryObject stored inside it.
        self._contents: dict[int, set[MemoryObject]] = defaultdict(set)
        self._objects: dict[int, MemoryObject] = {}
        self._object_of_site: dict[int, MemoryObject] = {}
        self._copy_edges: dict[int, list[Value]] = defaultdict(list)
        self._load_edges: dict[int, list[Value]] = defaultdict(list)
        self._store_edges: dict[int, list[Value]] = defaultdict(list)
        self._value_by_id: dict[int, Value] = {}
        self._indirect_calls: list[Call] = []
        self._wired_call_targets: set[tuple[int, int]] = set()
        self._escaped: set[int] = set()
        STATS.count("pointsto.solves")
        with STATS.timer("pointsto.solve"):
            self._solve()

    # -- public queries ----------------------------------------------------------
    def points_to(self, value: Value) -> set[MemoryObject]:
        """The abstract objects ``value`` may point to."""
        value = strip_pointer_casts(value)
        if isinstance(value, ElemPtr):
            # Field-insensitive: a derived pointer targets the same objects.
            return self.points_to(value.base)
        return self._pts.get(id(value), set())

    def object_for_site(self, site: Value) -> MemoryObject | None:
        """The allocation object named after ``site``, if it is one."""
        return self._object_of_site.get(id(site))

    def callees_of(self, call: Call) -> list[Function]:
        """Possible targets of a call (singleton for direct calls)."""
        direct = call.called_function()
        if direct is not None:
            return [direct]
        targets = []
        for obj in self.points_to(call.callee):
            if obj.kind == "function":
                targets.append(obj.site)
        return targets

    def escapes(self, obj: MemoryObject) -> bool:
        """True if the object may be reached by unmodeled external code."""
        return id(obj) in self._escaped or obj.kind == "unknown"

    def may_alias(self, a: Value, b: Value) -> bool:
        pa, pb = self.points_to(a), self.points_to(b)
        if not pa or not pb:
            # No information (e.g. integer-to-pointer casts): stay safe.
            return True
        if self.unknown in pa or self.unknown in pb:
            return True
        return bool(pa & pb)

    # -- constraint generation ------------------------------------------------------
    def _object(self, kind: str, site: object, name: str) -> MemoryObject:
        obj = MemoryObject(kind, site, name)
        self._objects[id(obj)] = obj
        if isinstance(site, Value):
            self._object_of_site[id(site)] = obj
        return obj

    def _note(self, value: Value) -> None:
        self._value_by_id[id(value)] = value

    def _add_pts(self, value: Value, obj: MemoryObject, worklist: list[Value]) -> None:
        pts = self._pts[id(value)]
        if obj not in pts:
            pts.add(obj)
            worklist.append(value)

    def _solve(self) -> None:
        worklist: list[Value] = []
        self._generate_base_constraints(worklist)
        basic = 0
        while worklist:
            value = worklist.pop()
            pts = self._pts[id(value)]
            # Copy edges: targets include everything value points to.
            for target in self._copy_edges.get(id(value), ()):
                target_pts = self._pts[id(target)]
                new = pts - target_pts
                if new:
                    target_pts |= new
                    worklist.append(target)
            # Load edges: result <- contents of each pointee.
            for result in self._load_edges.get(id(value), ()):
                result_pts = self._pts[id(result)]
                for obj in pts:
                    new = self._contents[id(obj)] - result_pts
                    if new:
                        result_pts |= new
                        worklist.append(result)
            # Store edges: contents of each pointee <- stored value's pts.
            for stored in self._store_edges.get(id(value), ()):
                stored_pts = self._pts[id(stored)]
                for obj in pts:
                    contents = self._contents[id(obj)]
                    new = stored_pts - contents
                    if new:
                        contents |= new
                        self._reflow_contents(obj, worklist)
            # Newly discovered indirect call targets.
            self._wire_indirect_calls(worklist)
            # Escape propagation happens at the end (it is monotone too).
            basic += 1
        self._propagate_escapes()

    def _reflow_contents(self, obj: MemoryObject, worklist: list[Value]) -> None:
        """Contents of ``obj`` changed: re-push loads that read from it."""
        for value_id, value in self._value_by_id.items():
            if obj in self._pts.get(value_id, ()):  # value may point at obj
                if self._load_edges.get(value_id):
                    worklist.append(value)

    def _generate_base_constraints(self, worklist: list[Value]) -> None:
        for gv in self.module.globals.values():
            obj = self._object("global", gv, gv.name)
            self._note(gv)
            self._add_pts(gv, obj, worklist)
        for fn in self.module.functions.values():
            obj = self._object("function", fn, fn.name)
            self._note(fn)
            self._add_pts(fn, obj, worklist)
        # Global initializers that reference functions/globals seed contents.
        for gv in self.module.globals.values():
            init = gv.initializer
            if init is None:
                continue
            gv_obj = self._object_of_site[id(gv)]
            for target in self._initializer_pointers(init):
                target_obj = self._object_of_site.get(id(target))
                if target_obj is not None:
                    self._contents[id(gv_obj)].add(target_obj)
        for fn in self.module.functions.values():
            for arg in fn.args:
                self._note(arg)
            for inst in fn.instructions():
                self._generate_for_instruction(fn, inst, worklist)

    def _initializer_pointers(self, init) -> list[Value]:
        from ..ir.values import ConstantArray

        if isinstance(init, (GlobalVariable, Function)):
            return [init]
        if isinstance(init, ConstantArray):
            result = []
            for element in init.elements:
                result.extend(self._initializer_pointers(element))
            return result
        return []

    def _generate_for_instruction(
        self, fn: Function, inst: Instruction, worklist: list[Value]
    ) -> None:
        self._note(inst)
        if isinstance(inst, Alloca):
            obj = self._object("alloca", inst, f"{fn.name}.{inst.name}")
            self._add_pts(inst, obj, worklist)
        elif isinstance(inst, (Phi, Select)):
            sources = (
                [v for v, _ in inst.incoming()]
                if isinstance(inst, Phi)
                else [inst.true_value, inst.false_value]
            )
            for source in sources:
                if source.type.is_pointer():
                    self._copy_edges[id(source)].append(inst)
        elif isinstance(inst, Cast):
            if inst.type.is_pointer() and inst.value.type.is_pointer():
                self._copy_edges[id(inst.value)].append(inst)
            elif inst.type.is_pointer():
                # inttoptr: anything — model as unknown.
                self._add_pts(inst, self.unknown, worklist)
        elif isinstance(inst, ElemPtr):
            self._copy_edges[id(inst.base)].append(inst)
        elif isinstance(inst, Load):
            if inst.type.is_pointer():
                self._load_edges[id(inst.pointer)].append(inst)
        elif isinstance(inst, Store):
            if inst.value.type.is_pointer():
                self._store_edges[id(inst.pointer)].append(inst.value)
        elif isinstance(inst, Call):
            self._generate_for_call(fn, inst, worklist)

    def _generate_for_call(self, fn: Function, call: Call, worklist: list[Value]) -> None:
        callee = call.called_function()
        if callee is None:
            self._indirect_calls.append(call)
            return
        if callee.is_declaration():
            self._model_external_call(call, callee, worklist)
            return
        self._wire_call(call, callee)

    def _wire_call(self, call: Call, callee: Function) -> None:
        key = (id(call), id(callee))
        if key in self._wired_call_targets:
            return
        self._wired_call_targets.add(key)
        for actual, formal in zip(call.args, callee.args):
            if actual.type.is_pointer():
                self._copy_edges[id(actual)].append(formal)
                self._note(formal)
        if call.type.is_pointer():
            for block in callee.blocks:
                term = block.terminator
                if isinstance(term, Ret) and term.value is not None:
                    self._copy_edges[id(term.value)].append(call)

    def _wire_indirect_calls(self, worklist: list[Value]) -> None:
        for call in self._indirect_calls:
            for obj in list(self._pts.get(id(call.callee), ())):
                if obj.kind != "function":
                    continue
                target: Function = obj.site
                if target.is_declaration():
                    self._model_external_call(call, target, worklist)
                    continue
                key = (id(call), id(target))
                if key in self._wired_call_targets:
                    continue
                self._wire_call(call, target)
                # Seed flow along the new edges.
                for actual, formal in zip(call.args, target.args):
                    if actual.type.is_pointer() and self._pts.get(id(actual)):
                        worklist.append(actual)
                for block in target.blocks:
                    term = block.terminator
                    if isinstance(term, Ret) and term.value is not None:
                        if self._pts.get(id(term.value)):
                            worklist.append(term.value)

    def _model_external_call(
        self, call: Call, callee: Function, worklist: list[Value]
    ) -> None:
        key = (id(call), id(callee))
        if key in self._wired_call_targets:
            return
        self._wired_call_targets.add(key)
        if callee.name in ALLOCATOR_INTRINSICS:
            obj = self._object("heap", call, f"heap.{callee.name}.{id(call) & 0xFFFF:x}")
            self._add_pts(call, obj, worklist)
            return
        if callee.name in INTRINSICS:
            # Modeled intrinsics neither capture nor return pointers
            # (malloc handled above); pointer args are read-only buffers.
            return
        # Truly unknown external: pointer arguments escape; a pointer return
        # may be anything.
        for actual in call.args:
            if actual.type.is_pointer():
                for obj in self._pts.get(id(actual), ()):
                    self._escaped.add(id(obj))
        if call.type.is_pointer():
            self._add_pts(call, self.unknown, worklist)

    def _propagate_escapes(self) -> None:
        """An escaped object leaks everything stored inside it."""
        changed = True
        while changed:
            changed = False
            for obj_id in list(self._escaped):
                for inner in self._contents.get(obj_id, ()):
                    if id(inner) not in self._escaped:
                        self._escaped.add(id(inner))
                        changed = True


class AndersenAliasAnalysis(AliasAnalysis):
    """Alias analysis backed by module-wide points-to, refined locally.

    Plays the role of SCAF/SVF in the paper: the PDG built with this AA
    disproves far more memory dependences than the basic one.
    """

    def __init__(self, module: Module):
        self.module = module
        self.pointsto = PointsToAnalysis(module)
        self._basic = BasicAliasAnalysis()
        self._memo = AliasMemo()

    def alias(self, a: Value, b: Value) -> AliasResult:
        _fault_checkpoint("alias_query")
        STATS.count("aa.andersen.queries")
        key, pin_a, pin_b = self._memo.key_of(a, b)
        cached = self._memo.lookup(key)
        if cached is not None:
            STATS.count("aa.andersen.memo_hits")
            return cached
        result = self._alias_uncached(a, b)
        self._memo.store(key, result, pin_a, pin_b)
        return result

    def _alias_uncached(self, a: Value, b: Value) -> AliasResult:
        basic = self._basic.alias(a, b)
        if basic in (AliasResult.NO_ALIAS, AliasResult.MUST_ALIAS):
            return basic
        if not self.pointsto.may_alias(a, b):
            return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS

    def mod_ref(self, inst: Instruction, ptr: Value) -> ModRefResult:
        if isinstance(inst, Load):
            if self.alias(inst.pointer, ptr) is AliasResult.NO_ALIAS:
                return ModRefResult.NO_MOD_REF
            return ModRefResult.REF
        if isinstance(inst, Store):
            if self.alias(inst.pointer, ptr) is AliasResult.NO_ALIAS:
                return ModRefResult.NO_MOD_REF
            return ModRefResult.MOD
        if isinstance(inst, Call):
            return self._call_mod_ref(inst, ptr)
        return ModRefResult.NO_MOD_REF

    def _call_mod_ref(self, call: Call, ptr: Value) -> ModRefResult:
        from .modref import FunctionEffects  # local import: modref builds on us

        basic = self._basic.call_mod_ref(call, ptr)
        if basic is ModRefResult.NO_MOD_REF:
            return basic
        effects = self._effects()
        return effects.call_mod_ref(call, ptr)

    _effects_cache: "object | None" = None

    def _effects(self):
        from .modref import ModRefAnalysis

        if self._effects_cache is None:
            self._effects_cache = ModRefAnalysis(self.module, self.pointsto)
        return self._effects_cache
