"""Scalar evolution — symbolic evolutions of loop values.

The engine recognizes affine add-recurrences ``{start, +, step}`` around a
given loop, folds constants symbolically, combines evolutions under
add/sub/mul, and keeps loop-invariant values as opaque symbolic unknowns —
which is exactly what the induction variable abstraction, the IV stepper,
DOALL's chunking, and the dependence-test engine
(:mod:`repro.analysis.deptest`) need.  NOELLE re-implements LLVM's scalar
evolution with user-controlled lifetime (Section 2.2); these objects are
plain values, reproducing that behaviour.

Beyond recurrence recognition the engine derives *trip counts* from loop
exit compares (``trip_count``), bounds an add-recurrence's value range
over those iterations (``addrec_range``), and folds ``srem`` by a
constant away when the dividend's range provably stays inside
``[0, modulus)`` — the form every generated workload's subscripts take.

Every SCEV node compares *structurally*: two independently-derived
evolutions of the same shape are equal and hash together, so they can key
memo tables and cancel against each other in dependence subscripts.  A
``SCEVUnknown`` keys by the underlying ``Value``'s own equality (identity
for instructions, structural for constants) — the same convention the
alias memo uses — so structurally identical invariant operands reached
through different query paths compare equal.
"""

from __future__ import annotations

from ..ir.instructions import BinaryOp, CmpInst, CondBranch, Instruction, Phi
from ..ir.values import ConstantInt, Value
from .loopinfo import NaturalLoop

#: Sentinel distinguishing "not computed yet" from a computed ``None``.
_UNSET = object()


class SCEV:
    """Base class of symbolic scalar evolutions."""


class SCEVConstant(SCEV):
    def __init__(self, value: int):
        self.value = value

    def __repr__(self) -> str:
        return f"{self.value}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SCEVConstant) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("scev-const", self.value))


class SCEVUnknown(SCEV):
    """A loop-invariant value we cannot decompose further.

    Equality keys on the wrapped ``Value`` itself (not ``id``): values
    with structural equality (constants) compare structurally, while
    instructions and arguments keep identity semantics.  The node holds a
    strong reference to the value, so the key can never be recycled.
    """

    def __init__(self, value: Value):
        self.value = value

    def __repr__(self) -> str:
        return f"unknown({self.value.ref()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SCEVUnknown) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("scev-unknown", self.value))


class SCEVAddRec(SCEV):
    """An affine recurrence ``{start, +, step}`` over a loop."""

    def __init__(self, start: SCEV, step: SCEV, loop: NaturalLoop):
        self.start = start
        self.step = step
        self.loop = loop

    def constant_step(self) -> int | None:
        return self.step.value if isinstance(self.step, SCEVConstant) else None

    def constant_start(self) -> int | None:
        return (
            self.start.value if isinstance(self.start, SCEVConstant) else None
        )

    def __repr__(self) -> str:
        return f"{{{self.start!r}, +, {self.step!r}}}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SCEVAddRec)
            and other.loop is self.loop
            and other.start == self.start
            and other.step == self.step
        )

    def __hash__(self) -> int:
        return hash(("scev-addrec", self.start, self.step, id(self.loop)))


class _Sym(SCEV):
    """A symbolic combination kept opaque (enough for IV purposes)."""

    def __init__(self, opcode: str, lhs: SCEV, rhs: SCEV):
        self.opcode = opcode
        self.lhs = lhs
        self.rhs = rhs

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.opcode} {self.rhs!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _Sym)
            and other.opcode == self.opcode
            and other.lhs == self.lhs
            and other.rhs == self.rhs
        )

    def __hash__(self) -> int:
        return hash(("scev-sym", self.opcode, self.lhs, self.rhs))


class ScalarEvolution:
    """Per-loop symbolic evolution analysis.

    ``fold_srem`` controls the range-proof rewrite of ``x srem m`` to
    ``x``: it defaults to the ``NOELLE_DEPTEST`` environment flag so the
    default build keeps the seed's (weaker) evolutions byte-for-byte,
    while the dependence-test configuration sees through the modulo
    guards generated subscripts carry.
    """

    def __init__(self, loop: NaturalLoop, fold_srem: bool | None = None):
        self.loop = loop
        if fold_srem is None:
            from .deptest import deptest_enabled

            fold_srem = deptest_enabled()
        self.fold_srem = fold_srem
        self._cache: dict[int, SCEV | None] = {}
        #: Strong references pinning every id-keyed value (the alias-memo
        #: convention: an id key must never outlive its object).
        self._pinned: dict[int, Value] = {}
        self._trip: object = _UNSET

    def evolution_of(self, value: Value) -> SCEV | None:
        """The evolution of ``value`` around this loop, or None if unknown."""
        cached = self._cache.get(id(value))
        if cached is not None or id(value) in self._cache:
            return cached
        # Break cycles (mutually recursive phis) by pre-seeding None.
        self._cache[id(value)] = None
        self._pinned[id(value)] = value
        result = self._compute(value)
        self._cache[id(value)] = result
        return result

    def _compute(self, value: Value) -> SCEV | None:
        if isinstance(value, ConstantInt):
            return SCEVConstant(value.value)
        if not isinstance(value, Instruction) or not self.loop.contains(value):
            return SCEVUnknown(value)
        if isinstance(value, Phi):
            return self._phi_recurrence(value)
        if isinstance(value, BinaryOp) and value.opcode in ("add", "sub", "mul"):
            lhs = self.evolution_of(value.lhs)
            rhs = self.evolution_of(value.rhs)
            if lhs is None or rhs is None:
                return None
            return self._combine(value.opcode, lhs, rhs)
        if (
            self.fold_srem
            and isinstance(value, BinaryOp)
            and value.opcode == "srem"
        ):
            return self._srem_evolution(value)
        return None

    def _phi_recurrence(self, phi: Phi) -> SCEV | None:
        if phi.parent is not self.loop.header:
            return None
        start: SCEV | None = None
        step: SCEV | None = None
        for incoming, pred in phi.incoming():
            if self.loop.contains_block(pred):
                step = self._step_from_latch_value(phi, incoming)
                if step is None:
                    return None
            else:
                if start is not None:
                    return None  # multiple entry edges: not canonical
                start = self.evolution_of(incoming) or SCEVUnknown(incoming)
        if start is None or step is None:
            return None
        return SCEVAddRec(start, step, self.loop)

    def _step_from_latch_value(self, phi: Phi, latch_value: Value) -> SCEV | None:
        """Match ``latch_value == phi (+|-) loop-invariant-step``."""
        if not isinstance(latch_value, BinaryOp):
            return None
        if latch_value.opcode == "add":
            if latch_value.lhs is phi:
                other = latch_value.rhs
            elif latch_value.rhs is phi:
                other = latch_value.lhs
            else:
                return None
            return self._invariant_scev(other)
        if latch_value.opcode == "sub" and latch_value.lhs is phi:
            inv = self._invariant_scev(latch_value.rhs)
            if isinstance(inv, SCEVConstant):
                return SCEVConstant(-inv.value)
            return None
        return None

    def _invariant_scev(self, value: Value) -> SCEV | None:
        if isinstance(value, ConstantInt):
            return SCEVConstant(value.value)
        if isinstance(value, Instruction) and self.loop.contains(value):
            return None
        return SCEVUnknown(value)

    def _combine(self, opcode: str, lhs: SCEV, rhs: SCEV) -> SCEV | None:
        if isinstance(lhs, SCEVConstant) and isinstance(rhs, SCEVConstant):
            if opcode == "add":
                return SCEVConstant(lhs.value + rhs.value)
            if opcode == "sub":
                return SCEVConstant(lhs.value - rhs.value)
            return SCEVConstant(lhs.value * rhs.value)
        if isinstance(lhs, SCEVAddRec) and self._is_invariant(rhs):
            if opcode == "add":
                return SCEVAddRec(_add(lhs.start, rhs), lhs.step, lhs.loop)
            if opcode == "sub":
                return SCEVAddRec(_sub(lhs.start, rhs), lhs.step, lhs.loop)
            if opcode == "mul":
                return SCEVAddRec(
                    _mul(lhs.start, rhs), _mul(lhs.step, rhs), lhs.loop
                )
        if isinstance(rhs, SCEVAddRec) and self._is_invariant(lhs):
            if opcode == "add":
                return SCEVAddRec(_add(rhs.start, lhs), rhs.step, rhs.loop)
            if opcode == "sub":
                # inv - {s, +, d}  ==  {inv - s, +, -d}
                return SCEVAddRec(
                    _sub(lhs, rhs.start), _neg(rhs.step), rhs.loop
                )
            if opcode == "mul":
                return SCEVAddRec(
                    _mul(rhs.start, lhs), _mul(rhs.step, lhs), rhs.loop
                )
        if isinstance(lhs, SCEVAddRec) and isinstance(rhs, SCEVAddRec):
            if lhs.loop is rhs.loop and opcode == "add":
                return SCEVAddRec(
                    _add(lhs.start, rhs.start), _add(lhs.step, rhs.step), lhs.loop
                )
            if lhs.loop is rhs.loop and opcode == "sub":
                return SCEVAddRec(
                    _sub(lhs.start, rhs.start), _sub(lhs.step, rhs.step), lhs.loop
                )
        # Invariant (x) invariant stays invariant — loop bounds like
        # ``n - width - 1`` recomputed in the header are still constant
        # across iterations.
        if self._is_invariant(lhs) and self._is_invariant(rhs):
            if opcode == "add":
                return _add(lhs, rhs)
            if opcode == "sub":
                return _sub(lhs, rhs)
            return _mul(lhs, rhs)
        return None

    def _srem_evolution(self, value: BinaryOp) -> SCEV | None:
        """``x srem m`` folds to ``x`` when x provably stays in [0, m)."""
        if not isinstance(value.rhs, ConstantInt):
            return None
        modulus = value.rhs.value
        if modulus <= 0:
            return None
        lhs = self.evolution_of(value.lhs)
        if isinstance(lhs, SCEVConstant):
            return SCEVConstant(_srem(lhs.value, modulus))
        if isinstance(lhs, SCEVAddRec):
            bounds = self.addrec_range(lhs)
            if bounds is not None:
                low, high = bounds
                if 0 <= low and high < modulus:
                    return lhs
            return None
        if lhs is not None and self._is_invariant(lhs):
            return _Sym("srem", lhs, SCEVConstant(modulus))
        return None

    @staticmethod
    def _is_invariant(scev: SCEV) -> bool:
        return evolution_is_invariant(scev)

    # -- trip counts ---------------------------------------------------------------
    def trip_count(self) -> int | None:
        """How many times the loop body executes, when statically known.

        Derived from the loop's exit compares: the unique exiting block's
        conditional branch must compare an affine recurrence with constant
        start and step against a constant bound, with a predicate that
        forces the exit the first time it fails.  Returns None for
        multi-exit loops, symbolic bounds, or non-monotone exits.
        """
        if self._trip is _UNSET:
            self._trip = self._compute_trip_count()
        return self._trip  # type: ignore[return-value]

    def _compute_trip_count(self) -> int | None:
        exiting = self.loop.exiting_blocks()
        if len(exiting) != 1:
            return None
        block = exiting[0]
        term = block.terminator
        if not isinstance(term, CondBranch):
            return None
        compare = term.condition
        if not isinstance(compare, CmpInst) or compare.opcode != "icmp":
            return None
        in_true = self.loop.contains_block(term.true_block)
        in_false = self.loop.contains_block(term.false_block)
        if in_true == in_false:
            return None
        continues_on_true = in_true
        fail_index = self._first_failing_iteration(compare, continues_on_true)
        if fail_index is None:
            return None
        # A header test cuts iteration ``fail_index`` before its body runs;
        # a latch test has already run the body of the iteration it ends.
        # Latch membership must win when the block is both (a single-block
        # test-last loop): the terminator sits after the body, so the
        # failing iteration's body has already executed.
        if block in self.loop.latches():
            return fail_index + 1
        if block is self.loop.header:
            return fail_index
        return None

    def _first_failing_iteration(
        self, compare: CmpInst, continues_on_true: bool
    ) -> int | None:
        """First iteration i >= 0 where the continue condition fails.

        The compare's IV-side operand evaluates to ``start + step*i`` in
        iteration i (its add-recurrence around this loop), so the first
        failure is a closed form when the predicate is monotone.
        """
        predicate, start, step, bound = self._normalized_exit(compare) or (
            None, None, None, None
        )
        if predicate is None:
            return None
        if not continues_on_true:
            predicate = _NEGATED_PREDICATE.get(predicate)
            if predicate is None:
                return None
        return _first_failure(predicate, start, step, bound)

    def _normalized_exit(self, compare: CmpInst):
        """(predicate, start, step, bound) with the recurrence on the left."""
        lhs = self.evolution_of(compare.lhs)
        rhs = self.evolution_of(compare.rhs)
        for mine, other, predicate in (
            (lhs, rhs, compare.predicate),
            (rhs, lhs, _SWAPPED_PREDICATE.get(compare.predicate)),
        ):
            if predicate is None:
                continue
            if not isinstance(mine, SCEVAddRec) or mine.loop is not self.loop:
                continue
            start = mine.constant_start()
            step = mine.constant_step()
            if start is None or step is None:
                continue
            if not isinstance(other, SCEVConstant):
                continue
            return predicate, start, step, other.value
        return None

    # -- value ranges --------------------------------------------------------------
    def addrec_range(
        self, addrec: SCEVAddRec, trip: int | None = None
    ) -> tuple[int, int] | None:
        """Inclusive (min, max) of the recurrence over the loop's iterations.

        Needs a constant start and step plus a known trip count (passed in
        or derived from the exit compare).  None when any is unknown or
        the loop provably never runs.
        """
        if addrec.loop is not self.loop:
            return None
        start = addrec.constant_start()
        step = addrec.constant_step()
        if start is None or step is None:
            return None
        if trip is None:
            trip = self.trip_count()
        if trip is None or trip <= 0:
            return None
        last = start + step * (trip - 1)
        return (min(start, last), max(start, last))


#: icmp predicate under operand swap (a pred b  <=>  b pred' a).
_SWAPPED_PREDICATE = {
    "eq": "eq", "ne": "ne",
    "slt": "sgt", "sle": "sge", "sgt": "slt", "sge": "sle",
}

#: icmp predicate negation (continue-on-false exits re-use the closed forms).
_NEGATED_PREDICATE = {
    "eq": "ne", "ne": "eq",
    "slt": "sge", "sle": "sgt", "sgt": "sle", "sge": "slt",
}


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _first_failure(
    predicate: str, start: int, step: int, bound: int
) -> int | None:
    """First i >= 0 where ``(start + step*i) predicate bound`` is False.

    None when the condition never fails (or failure is not forced by
    monotonicity — e.g. a decreasing value tested with ``slt``, which only
    fails through wraparound we do not model).
    """
    if predicate == "slt":
        if start >= bound:
            return 0
        if step <= 0:
            return None
        return _ceil_div(bound - start, step)
    if predicate == "sle":
        if start > bound:
            return 0
        if step <= 0:
            return None
        return _ceil_div(bound - start + 1, step)
    if predicate == "sgt":
        if start <= bound:
            return 0
        if step >= 0:
            return None
        return _ceil_div(start - bound, -step)
    if predicate == "sge":
        if start < bound:
            return 0
        if step >= 0:
            return None
        return _ceil_div(start - bound + 1, -step)
    if predicate == "ne":
        if start == bound:
            return 0
        if step == 0:
            return None
        quotient, remainder = divmod(bound - start, step)
        if remainder != 0 or quotient < 0:
            return None  # the value steps over the bound: never equal
        return quotient
    if predicate == "eq":
        return None if step == 0 and start == bound else (1 if start == bound else 0)
    return None  # unsigned predicates: not modelled


def _srem(value: int, modulus: int) -> int:
    """Truncated (C-style) signed remainder."""
    remainder = abs(value) % abs(modulus)
    return -remainder if value < 0 else remainder


def _add(a: SCEV, b: SCEV) -> SCEV:
    if isinstance(a, SCEVConstant) and isinstance(b, SCEVConstant):
        return SCEVConstant(a.value + b.value)
    if isinstance(a, SCEVConstant) and a.value == 0:
        return b
    if isinstance(b, SCEVConstant) and b.value == 0:
        return a
    return _Sym("add", a, b)


def _sub(a: SCEV, b: SCEV) -> SCEV:
    if isinstance(a, SCEVConstant) and isinstance(b, SCEVConstant):
        return SCEVConstant(a.value - b.value)
    if isinstance(b, SCEVConstant) and b.value == 0:
        return a
    if a == b:
        return SCEVConstant(0)
    return _Sym("sub", a, b)


def _mul(a: SCEV, b: SCEV) -> SCEV:
    if isinstance(a, SCEVConstant) and isinstance(b, SCEVConstant):
        return SCEVConstant(a.value * b.value)
    for const, other in ((a, b), (b, a)):
        if isinstance(const, SCEVConstant):
            if const.value == 0:
                return SCEVConstant(0)
            if const.value == 1:
                return other
    return _Sym("mul", a, b)


def _neg(a: SCEV) -> SCEV:
    return _sub(SCEVConstant(0), a)


def evolution_is_invariant(scev: SCEV | None) -> bool:
    """True when the evolution provably takes the same value every
    iteration (constants, out-of-loop values, and combinations thereof)."""
    if isinstance(scev, (SCEVConstant, SCEVUnknown)):
        return True
    if isinstance(scev, _Sym):
        return evolution_is_invariant(scev.lhs) and evolution_is_invariant(
            scev.rhs
        )
    return False
