"""Scalar evolution — add-recurrence recognition for loop values.

A small SCEV: it recognizes values of the form ``{start, +, step}`` around a
given loop (affine add-recurrences), which is exactly what the induction
variable abstraction, the IV stepper, and DOALL's chunking need.  NOELLE
re-implements LLVM's scalar evolution with user-controlled lifetime
(Section 2.2); these objects are plain values, reproducing that behaviour.
"""

from __future__ import annotations

from ..ir.instructions import BinaryOp, Instruction, Phi
from ..ir.values import ConstantInt, Value
from .loopinfo import NaturalLoop


class SCEV:
    """Base class of symbolic scalar evolutions."""


class SCEVConstant(SCEV):
    def __init__(self, value: int):
        self.value = value

    def __repr__(self) -> str:
        return f"{self.value}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SCEVConstant) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("scev-const", self.value))


class SCEVUnknown(SCEV):
    """A loop-invariant value we cannot decompose further."""

    def __init__(self, value: Value):
        self.value = value

    def __repr__(self) -> str:
        return f"unknown({self.value.ref()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SCEVUnknown) and other.value is self.value

    def __hash__(self) -> int:
        return hash(("scev-unknown", id(self.value)))


class SCEVAddRec(SCEV):
    """An affine recurrence ``{start, +, step}`` over a loop."""

    def __init__(self, start: SCEV, step: SCEV, loop: NaturalLoop):
        self.start = start
        self.step = step
        self.loop = loop

    def constant_step(self) -> int | None:
        return self.step.value if isinstance(self.step, SCEVConstant) else None

    def __repr__(self) -> str:
        return f"{{{self.start!r}, +, {self.step!r}}}"


class ScalarEvolution:
    """Per-loop add-recurrence analysis."""

    def __init__(self, loop: NaturalLoop):
        self.loop = loop
        self._cache: dict[int, SCEV | None] = {}

    def evolution_of(self, value: Value) -> SCEV | None:
        """The evolution of ``value`` around this loop, or None if unknown."""
        cached = self._cache.get(id(value))
        if cached is not None or id(value) in self._cache:
            return cached
        # Break cycles (mutually recursive phis) by pre-seeding None.
        self._cache[id(value)] = None
        result = self._compute(value)
        self._cache[id(value)] = result
        return result

    def _compute(self, value: Value) -> SCEV | None:
        if isinstance(value, ConstantInt):
            return SCEVConstant(value.value)
        if not isinstance(value, Instruction) or not self.loop.contains(value):
            return SCEVUnknown(value)
        if isinstance(value, Phi):
            return self._phi_recurrence(value)
        if isinstance(value, BinaryOp) and value.opcode in ("add", "sub", "mul"):
            lhs = self.evolution_of(value.lhs)
            rhs = self.evolution_of(value.rhs)
            if lhs is None or rhs is None:
                return None
            return self._combine(value.opcode, lhs, rhs)
        return None

    def _phi_recurrence(self, phi: Phi) -> SCEV | None:
        if phi.parent is not self.loop.header:
            return None
        start: SCEV | None = None
        step: SCEV | None = None
        for incoming, pred in phi.incoming():
            if self.loop.contains_block(pred):
                step = self._step_from_latch_value(phi, incoming)
                if step is None:
                    return None
            else:
                if start is not None:
                    return None  # multiple entry edges: not canonical
                start = self.evolution_of(incoming) or SCEVUnknown(incoming)
        if start is None or step is None:
            return None
        return SCEVAddRec(start, step, self.loop)

    def _step_from_latch_value(self, phi: Phi, latch_value: Value) -> SCEV | None:
        """Match ``latch_value == phi (+|-) loop-invariant-step``."""
        if not isinstance(latch_value, BinaryOp):
            return None
        if latch_value.opcode == "add":
            if latch_value.lhs is phi:
                other = latch_value.rhs
            elif latch_value.rhs is phi:
                other = latch_value.lhs
            else:
                return None
            return self._invariant_scev(other)
        if latch_value.opcode == "sub" and latch_value.lhs is phi:
            inv = self._invariant_scev(latch_value.rhs)
            if isinstance(inv, SCEVConstant):
                return SCEVConstant(-inv.value)
            return None
        return None

    def _invariant_scev(self, value: Value) -> SCEV | None:
        if isinstance(value, ConstantInt):
            return SCEVConstant(value.value)
        if isinstance(value, Instruction) and self.loop.contains(value):
            return None
        return SCEVUnknown(value)

    def _combine(self, opcode: str, lhs: SCEV, rhs: SCEV) -> SCEV | None:
        if isinstance(lhs, SCEVConstant) and isinstance(rhs, SCEVConstant):
            if opcode == "add":
                return SCEVConstant(lhs.value + rhs.value)
            if opcode == "sub":
                return SCEVConstant(lhs.value - rhs.value)
            return SCEVConstant(lhs.value * rhs.value)
        if isinstance(lhs, SCEVAddRec) and self._is_invariant(rhs):
            if opcode == "add":
                return SCEVAddRec(_add(lhs.start, rhs), lhs.step, lhs.loop)
            if opcode == "sub":
                return SCEVAddRec(_sub(lhs.start, rhs), lhs.step, lhs.loop)
            if opcode == "mul" and isinstance(rhs, SCEVConstant):
                return SCEVAddRec(
                    _mul(lhs.start, rhs), _mul(lhs.step, rhs), lhs.loop
                )
        if isinstance(rhs, SCEVAddRec) and self._is_invariant(lhs):
            if opcode == "add":
                return SCEVAddRec(_add(rhs.start, lhs), rhs.step, rhs.loop)
            if opcode == "mul" and isinstance(lhs, SCEVConstant):
                return SCEVAddRec(
                    _mul(rhs.start, lhs), _mul(rhs.step, lhs), rhs.loop
                )
        if isinstance(lhs, SCEVAddRec) and isinstance(rhs, SCEVAddRec):
            if opcode == "add":
                return SCEVAddRec(
                    _add(lhs.start, rhs.start), _add(lhs.step, rhs.step), lhs.loop
                )
        # Invariant (x) invariant stays invariant — loop bounds like
        # ``n - width - 1`` recomputed in the header are still constant
        # across iterations.
        if self._is_invariant(lhs) and self._is_invariant(rhs):
            return _Sym(opcode, lhs, rhs)
        return None

    @staticmethod
    def _is_invariant(scev: SCEV) -> bool:
        return evolution_is_invariant(scev)


def _add(a: SCEV, b: SCEV) -> SCEV:
    if isinstance(a, SCEVConstant) and isinstance(b, SCEVConstant):
        return SCEVConstant(a.value + b.value)
    return _Sym("add", a, b)


def _sub(a: SCEV, b: SCEV) -> SCEV:
    if isinstance(a, SCEVConstant) and isinstance(b, SCEVConstant):
        return SCEVConstant(a.value - b.value)
    return _Sym("sub", a, b)


def _mul(a: SCEV, b: SCEV) -> SCEV:
    if isinstance(a, SCEVConstant) and isinstance(b, SCEVConstant):
        return SCEVConstant(a.value * b.value)
    return _Sym("mul", a, b)


def evolution_is_invariant(scev: SCEV | None) -> bool:
    """True when the evolution provably takes the same value every
    iteration (constants, out-of-loop values, and combinations thereof)."""
    if isinstance(scev, (SCEVConstant, SCEVUnknown)):
        return True
    if isinstance(scev, _Sym):
        return evolution_is_invariant(scev.lhs) and evolution_is_invariant(
            scev.rhs
        )
    return False


class _Sym(SCEV):
    """A symbolic combination kept opaque (enough for IV purposes)."""

    def __init__(self, opcode: str, lhs: SCEV, rhs: SCEV):
        self.opcode = opcode
        self.lhs = lhs
        self.rhs = rhs

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.opcode} {self.rhs!r})"
