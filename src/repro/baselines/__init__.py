"""repro.baselines — "vanilla LLVM"-grade counterparts.

These reproduce what the paper's custom tools would have to build (and
settle for) without NOELLE: Algorithm 1 invariance, do-while-only
induction variables, basic-AA dependence analysis, a standalone LICM, and
a gcc/icc-grade conservative auto-parallelizer.
"""

from .conservative_parallelizer import ConservativeParallelizer
from .depanalysis_llvm import (
    build_llvm_pdg,
    build_noelle_pdg,
    dependence_statistics,
)
from .induction_llvm import (
    LLVMInductionVariable,
    count_governing_ivs_llvm,
    find_governing_iv_llvm,
)
from .invariants_llvm import invariants_llvm, is_invariant_llvm
from .licm_llvm import licm_llvm_function, licm_llvm_module

__all__ = [
    "ConservativeParallelizer",
    "build_llvm_pdg",
    "build_noelle_pdg",
    "dependence_statistics",
    "LLVMInductionVariable",
    "count_governing_ivs_llvm",
    "find_governing_iv_llvm",
    "invariants_llvm",
    "is_invariant_llvm",
    "licm_llvm_function",
    "licm_llvm_module",
]
