"""The gcc/icc auto-parallelization stand-in for Figure 5.

Production auto-parallelizers (``gcc -ftree-parallelize-loops``,
``icc -parallel``) are famously conservative: they parallelize a loop only
when (a) its shape matches the canonical countable form their induction
machinery recognizes (the do-while / bottom-tested form after loop
rotation *with provable bounds*), and (b) their dependence analysis — a
local, intraprocedural one — proves every memory access independent.

This baseline reproduces those restrictions on purpose:

* governing IV detection uses the LLVM-style do-while matcher
  (:mod:`repro.baselines.induction_llvm`);
* dependences come from a PDG built with *basic* alias analysis only;
* any may-dependence, any call, any irregular bound rejects the loop.

On while-shaped, pointer-based MiniBench/PARSEC-style loops it therefore
parallelizes (almost) nothing — which is exactly why gcc and icc sit at
1.0x in the paper's Figure 5.
"""

from __future__ import annotations

from ..analysis.aa import BasicAliasAnalysis
from ..analysis.loopinfo import LoopInfo
from ..core.loop import Loop
from ..core.noelle import Noelle
from ..core.pdg import PDG
from ..ir.instructions import Call
from ..ir.module import Module
from ..xforms.doall import DOALL
from ..xforms.parallelizer_common import ParallelizationError
from .induction_llvm import find_governing_iv_llvm


class ConservativeParallelizer:
    """gcc/icc-grade DOALL: weak analysis, rigid shape requirements."""

    name = "gcc-icc-baseline"

    def __init__(self, module: Module, default_cores: int = 12):
        self.module = module
        self.default_cores = default_cores
        # The whole point: the baseline sees only basic AA.
        self._weak_noelle = Noelle(module)
        self._weak_noelle._aa = BasicAliasAnalysis()

    # -- selection ----------------------------------------------------------------------
    def can_parallelize(self, loop: Loop) -> bool:
        return self._reject_reason(loop) is None

    def _reject_reason(self, loop: Loop) -> str | None:
        natural = loop.natural_loop
        # (a) shape: the do-while pattern matcher must find the governing IV.
        if find_governing_iv_llvm(natural) is None:
            return "loop shape not recognized (no bottom-tested governing IV)"
        # (b) calls defeat the local dependence analysis outright.
        for inst in natural.instructions():
            if isinstance(inst, Call):
                callee = inst.called_function()
                if callee is None or "pure" not in callee.attributes:
                    return "loop contains an opaque call"
        # (c) every memory dependence must be disproved by basic AA.
        loop_dg = loop.dependence_graph
        for edge in loop_dg.edges():
            if edge.is_data() and edge.is_memory and edge.is_loop_carried:
                return "possible loop-carried memory dependence"
        # (d) no reductions either: gcc/icc handle only explicit OpenMP
        # reductions; auto-par rejects scalar cycles.
        for scc in loop.sccdag.sccs:
            if scc.is_sequential() or scc.is_reducible():
                return "scalar cycle (no reduction support)"
        return None

    # -- driver -------------------------------------------------------------------------
    def run(self) -> int:
        """Attempt to parallelize every outermost loop; returns successes."""
        parallelized = 0
        doall = DOALL(self._weak_noelle, self.default_cores)
        for loop in self._weak_noelle.loops():
            fn = loop.structure.function
            if fn.metadata.get("noelle.task"):
                continue
            if loop.structure.depth() != 1:
                continue
            if not self.can_parallelize(loop):
                continue
            try:
                doall.parallelize(loop)
                parallelized += 1
                self._weak_noelle.invalidate(fn)
            except ParallelizationError:
                continue
        return parallelized

    def report(self) -> list[tuple[str, str | None]]:
        """(loop header, rejection reason) per outermost loop — for the
        Figure 5 analysis of *why* the baseline stays at 1.0x."""
        rows = []
        for loop in self._weak_noelle.loops():
            if loop.structure.depth() != 1:
                continue
            rows.append((loop.structure.header.name, self._reject_reason(loop)))
        return rows
