"""LLVM-grade dependence analysis — the Figure 3 baseline.

The same PDG construction NOELLE uses, but powered only by the stateless
basic alias analysis (what ``opt``'s default AA stack can prove without
SCAF/SVF).  Figure 3 compares the fraction of potential memory dependences
each side disproves.
"""

from __future__ import annotations

from ..analysis.aa import BasicAliasAnalysis
from ..analysis.pointsto import AndersenAliasAnalysis
from ..core.pdg import PDG
from ..ir.module import Module


def build_llvm_pdg(module: Module) -> PDG:
    """The baseline PDG: basic (LLVM-grade) alias analysis only."""
    return PDG(module, BasicAliasAnalysis())


def build_noelle_pdg(module: Module) -> PDG:
    """The NOELLE PDG: whole-module inclusion-based points-to (SCAF/SVF)."""
    return PDG(module, AndersenAliasAnalysis(module))


def dependence_statistics(module: Module) -> dict[str, float]:
    """Queried/disproved counts for both sides (the Figure 3 data point)."""
    llvm_pdg = build_llvm_pdg(module)
    noelle_pdg = build_noelle_pdg(module)
    return {
        "queries": llvm_pdg.memory_queries,
        "llvm_disproved": llvm_pdg.memory_disproved,
        "noelle_disproved": noelle_pdg.memory_disproved,
        "llvm_fraction": (
            llvm_pdg.memory_disproved / llvm_pdg.memory_queries
            if llvm_pdg.memory_queries
            else 0.0
        ),
        "noelle_fraction": (
            noelle_pdg.memory_disproved / noelle_pdg.memory_queries
            if noelle_pdg.memory_queries
            else 0.0
        ),
    }
