"""LLVM-style governing induction variable detection.

The paper (Section 4.3) explains why stock LLVM finds so few governing
IVs: its induction machinery pattern-matches the *do-while* canonical
shape — the loop latch contains the exit test comparing the incremented IV
against the bound — via low-level def-use chains.  Most source loops are
while-shaped (the test lives in the header, on the pre-increment value),
so LLVM comes up empty: 11 governing IVs vs NOELLE's 385 across the
paper's 41 benchmarks.

This module reproduces that limitation faithfully; the NOELLE counterpart
(:mod:`repro.core.induction`) works on any shape via the aSCCDAG.
"""

from __future__ import annotations

from ..analysis.loopinfo import NaturalLoop
from ..ir.instructions import BinaryOp, CmpInst, CondBranch, Instruction, Phi
from ..ir.values import ConstantInt, Value


class LLVMInductionVariable:
    """A (phi, step) pair found by the do-while pattern matcher."""

    def __init__(self, phi: Phi, step: int, compare: CmpInst):
        self.phi = phi
        self.step = step
        self.compare = compare

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<llvm-iv {self.phi.ref()} step={self.step}>"


def find_governing_iv_llvm(loop: NaturalLoop) -> LLVMInductionVariable | None:
    """Detect the governing IV the way LLVM's pattern does.

    Requirements (all must hold, mirroring ``InductionDescriptor`` +
    ``getLoopLatch``-based exit analysis on canonical do-while loops):

    1. the loop has a single latch, and that latch is the exiting block
       (the do-while shape);
    2. the latch terminator is a conditional branch on an integer compare;
    3. one compare operand is the *post-increment* update of a header phi
       whose step is a constant (``%next = add %phi, C``) — the def-use
       chain LLVM walks;
    4. the other operand is loop-invariant.
    """
    latches = loop.latches()
    if len(latches) != 1:
        return None
    latch = latches[0]
    exiting = loop.exiting_blocks()
    if len(exiting) != 1 or exiting[0] is not latch:
        return None  # not do-while shaped: LLVM gives up
    term = latch.terminator
    if not isinstance(term, CondBranch):
        return None
    compare = term.condition
    if not isinstance(compare, CmpInst):
        return None
    for candidate, bound in ((compare.lhs, compare.rhs), (compare.rhs, compare.lhs)):
        iv = _match_post_increment(candidate, loop)
        if iv is None:
            continue
        if isinstance(bound, Instruction) and loop.contains(bound):
            continue  # bound must be invariant
        return LLVMInductionVariable(iv[0], iv[1], compare)
    return None


def _match_post_increment(value: Value, loop: NaturalLoop):
    """Match ``value == add(header-phi, constant)`` exactly."""
    if not isinstance(value, BinaryOp) or value.opcode != "add":
        return None
    for phi_side, step_side in ((value.lhs, value.rhs), (value.rhs, value.lhs)):
        if not isinstance(phi_side, Phi) or phi_side.parent is not loop.header:
            continue
        if not isinstance(step_side, ConstantInt):
            continue
        # The phi must receive this update on the latch edge (the cycle).
        for incoming, pred in phi_side.incoming():
            if incoming is value and loop.contains_block(pred):
                return phi_side, step_side.value
    return None


def count_governing_ivs_llvm(loops: list[NaturalLoop]) -> int:
    return sum(1 for loop in loops if find_governing_iv_llvm(loop) is not None)
