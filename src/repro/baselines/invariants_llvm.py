"""Algorithm 1 of the paper: LLVM's loop-invariance logic, reproduced.

This is the low-level counterpart of NOELLE's PDG-powered Algorithm 2
(:mod:`repro.core.invariants`).  It reasons case by case over loads,
stores, and calls using alias analysis and dominators — longer, harder to
maintain, and *less precise*: the Figure 4 experiment counts how many
invariants each finds.

Sources of imprecision reproduced faithfully from the paper's pseudo-code:

* an instruction with an operand defined inside the loop is rejected
  outright, even when that operand is itself invariant (no recursion);
* loads bail out when *any* loop instruction may modify *any* memory
  (``getModRef`` against each instruction, no dependence chaining);
* stores and calls use conservative dominance and sub-loop checks.
"""

from __future__ import annotations

from ..analysis.aa import AliasAnalysis, ModRefResult
from ..analysis.dominators import DominatorTree
from ..analysis.loopinfo import NaturalLoop
from ..ir.instructions import (
    Call,
    Instruction,
    Load,
    Phi,
    Store,
    TerminatorInst,
)


def is_invariant_llvm(
    inst: Instruction,
    loop: NaturalLoop,
    dom: DominatorTree,
    aa: AliasAnalysis,
) -> bool:
    """Algorithm 1: ``isInvariant_llvm(I, L, DT, AA)``."""
    if isinstance(inst, (TerminatorInst, Phi)):
        return False
    # "for operand in I.getOperands(): if operand is defined in L: False"
    for operand in inst.operands:
        if isinstance(operand, Instruction) and loop.contains(operand):
            return False
    if isinstance(inst, Load):
        # "for J in L: if getModRef(J, I) != NoMod: return False"
        for other in loop.instructions():
            if other is inst:
                continue
            if not other.may_write_memory():
                continue
            if aa.mod_ref(other, inst.pointer) & ModRefResult.MOD:
                return False
        return True
    if isinstance(inst, Store):
        # "Conservatively ensure no memory use precedes this store."
        for other in loop.instructions():
            if other is inst or not other.touches_memory():
                continue
            if not dom.dominates(inst, other):
                return False
            if aa.mod_ref(other, inst.pointer) is not ModRefResult.NO_MOD_REF:
                return False
        # "Ensure no memory def/use would be invalidated by hoisting."
        # Without a MemorySSA walker the conservative answer is: any store
        # to may-aliasing memory anywhere in the function blocks hoisting.
        fn = inst.function()
        for other in fn.instructions():
            if other is inst or not isinstance(other, Store):
                continue
            if loop.contains(other):
                return False
        return True
    if isinstance(inst, Call):
        callee = inst.called_function()
        # "if AA.getModRefBehavior(call) != NoMod: return False"
        if callee is None or "pure" not in callee.attributes:
            return False
        # "if not onlyMemoryAccessesAreArguments(call): return False" —
        # pure intrinsics qualify by definition.
        # "for A of call: for sL in L.subLoops: for sI in sL: ..."
        for argument in inst.args:
            if not argument.type.is_pointer():
                continue
            for sub_loop in loop.sub_loops():
                for sub_inst in sub_loop.instructions():
                    if sub_inst.may_write_memory():
                        if aa.mod_ref(sub_inst, argument) & ModRefResult.MOD:
                            return False
        return True
    return True


def invariants_llvm(
    loop: NaturalLoop, dom: DominatorTree, aa: AliasAnalysis
) -> list[Instruction]:
    """All instructions Algorithm 1 accepts, in program order."""
    return [
        inst
        for inst in loop.instructions()
        if is_invariant_llvm(inst, loop, dom, aa)
    ]
