"""A standalone LLVM-style LICM — the Table 3 "LLVM" counterpart of LICM.

Implements loop invariant code motion on top of *low-level* facilities
only: Algorithm 1's invariance test, raw dominator queries, and manual
pre-header surgery.  Exists so the Table 3 LoC comparison and the Figure 4
quality comparison have a real, runnable baseline.
"""

from __future__ import annotations

from ..analysis.aa import AliasAnalysis, BasicAliasAnalysis
from ..analysis.cfg import split_edge
from ..analysis.dominators import DominatorTree
from ..analysis.loopinfo import LoopInfo, NaturalLoop
from ..ir.instructions import Branch, Instruction, Phi
from ..ir.module import BasicBlock, Function, Module
from .invariants_llvm import is_invariant_llvm


def licm_llvm_function(fn: Function, aa: AliasAnalysis | None = None) -> int:
    """Hoist invariants in every loop of ``fn``; returns hoist count."""
    aa = aa or BasicAliasAnalysis()
    hoisted = 0
    # Fresh analyses per round: hoisting changes the CFG's contents.
    changed = True
    while changed:
        changed = False
        dom = DominatorTree(fn)
        info = LoopInfo(fn, dom)
        for loop in info.loops():
            count = _hoist_in_loop(fn, loop, dom, aa)
            if count:
                hoisted += count
                changed = True
                break  # analyses are stale; restart
    return hoisted


def licm_llvm_module(module: Module) -> int:
    aa = BasicAliasAnalysis()
    return sum(licm_llvm_function(fn, aa) for fn in module.defined_functions())


def _hoist_in_loop(
    fn: Function, loop: NaturalLoop, dom: DominatorTree, aa: AliasAnalysis
) -> int:
    pre_header = _get_or_create_pre_header(fn, loop)
    if pre_header is None:
        return 0
    hoisted = 0
    for inst in list(loop.instructions()):
        if not is_invariant_llvm(inst, loop, dom, aa):
            continue
        if inst.may_write_memory():
            continue  # hoisting stores needs the full dominance story
        if not _safe_to_hoist(inst, loop, dom):
            continue
        inst.move_to_end(pre_header)
        hoisted += 1
    return hoisted


def _safe_to_hoist(inst: Instruction, loop: NaturalLoop, dom: DominatorTree) -> bool:
    """The instruction must execute unconditionally (dominate all latches)
    or be speculatively executable (no side effects, no traps)."""
    if inst.has_side_effects():
        return False
    if inst.opcode in ("sdiv", "srem"):
        # Division may trap; only hoist when it dominates every latch.
        for latch in loop.latches():
            term = latch.terminator
            if term is None or not dom.dominates(inst, term):
                return False
    if inst.may_read_memory():
        # A load is only safe when it executes on every iteration.
        for latch in loop.latches():
            term = latch.terminator
            if term is None or not dom.dominates(inst, term):
                return False
    return True


def _get_or_create_pre_header(fn: Function, loop: NaturalLoop) -> BasicBlock | None:
    entries = loop.entries()
    if len(entries) == 1:
        entry = entries[0]
        if len(entry.successors()) == 1:
            return entry
        return split_edge(entry, loop.header)
    return None  # multiple entries: LLVM's LICM also requires a pre-header
