"""repro.cache — content-addressed artifact cache for warm cold-starts.

Enabled by pointing ``NOELLE_CACHE_DIR`` at a directory (shared safely
across concurrent processes).  Caches three artifact kinds per module,
keyed by SHA-256 of the canonical printed IR plus a format/version
salt: the binary ``.nir`` module, per-function PDG shards, and
compiled-engine plans.  See DESIGN.md §12.
"""

from .binding import (
    ModuleCacheBinding,
    attach,
    cached_compile,
    enabled,
    get_store,
    load_ir_binary,
    load_ir_text,
    module_key,
    publish_artifacts,
    remember_key,
)
from .store import CACHE_DIR_ENV, KEY_SALT, ArtifactStore

__all__ = [
    "ArtifactStore",
    "CACHE_DIR_ENV",
    "KEY_SALT",
    "ModuleCacheBinding",
    "attach",
    "cached_compile",
    "enabled",
    "get_store",
    "load_ir_binary",
    "load_ir_text",
    "module_key",
    "publish_artifacts",
    "remember_key",
]
