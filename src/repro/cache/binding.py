"""Cache wiring: hydration into live objects and publish-back.

The store (`repro.cache.store`) moves bytes; this module converts
between those bytes and live analysis state:

* `cached_compile` / `load_ir_text` — front door for source text and
  textual IR.  On a warm hit the module is decoded from the binary
  payload instead of re-parsed, and its PDG shards and compiled-engine
  plans are hydrated eagerly so the first `run` does no analysis work.
* `attach` — binds a `Noelle` facade to the cache entry of its module,
  so `invalidate(fn)` evicts exactly that function's on-disk artifacts.
* `publish_artifacts` — writes back whatever the process computed (PDG
  shards, engine plans) for functions that were never mutated.

Hydrated PDGs keep per-function invalidation working: `_HydratedPDG`
exposes ``aa`` as a lazy property delegating to the owning facade's
alias analysis, so a single stale function is rebuilt in place (with a
real Andersen analysis) rather than forcing a whole-module re-analysis.
"""

from __future__ import annotations

import hashlib
import os
import weakref

from ..core.depgraph import DependenceGraph
from ..core.pdg import PDG, _Shard
from ..frontend.codegen import compile_source
from ..interp.engine import EnginePlanError, engine_for, _ENGINES
from ..ir import parse_module, print_module, verify_module
from ..ir.module import Function, Module
from ..perf import STATS
from .store import CACHE_DIR_ENV, ArtifactStore

#: Process-wide store singleton, keyed by the env var's current value so
#: tests can repoint ``NOELLE_CACHE_DIR`` freely.
_STORE: tuple[str, ArtifactStore] | None = None

#: Module -> content key, for modules loaded/published by this process.
#: Weak keys: the index must not keep modules alive.
_KEYS: "weakref.WeakKeyDictionary[Module, str]" = weakref.WeakKeyDictionary()


def get_store() -> ArtifactStore | None:
    """The active store, or None when ``NOELLE_CACHE_DIR`` is unset."""
    global _STORE
    root = os.environ.get(CACHE_DIR_ENV, "").strip()
    if not root:
        return None
    if _STORE is None or _STORE[0] != root:
        try:
            _STORE = (root, ArtifactStore(root))
        except OSError:
            return None
    return _STORE[1]


def enabled() -> bool:
    return get_store() is not None


def module_key(module: Module) -> str | None:
    """The content key of ``module`` as known to this process, if any."""
    return _KEYS.get(module)


def remember_key(module: Module, key: str) -> None:
    _KEYS[module] = key


# -- hydrated PDG ------------------------------------------------------------


class _HydratedPDG(PDG):
    """A PDG rebuilt from cached shards.

    Unlike `PDG.from_serialized` (whose ``aa`` is None, forcing
    whole-graph invalidation), the alias analysis here is a lazy
    property delegating to the owning `Noelle` facade — so invalidating
    one function keeps the other shards and rebuilds just that one with
    a real Andersen analysis.
    """

    @property
    def aa(self):
        return self._aa_supplier()

    def can_rebuild_shards(self) -> bool:
        return True  # aa materializes on demand; don't build it here


def _serialize_shard(pdg: PDG, shard: _Shard) -> dict | None:
    """One function's shard as index-based, process-independent data."""
    fn = shard.fn
    insts = list(fn.instructions())
    position = {id(inst): i for i, inst in enumerate(insts)}
    edges = []
    for edge in shard.edges:
        src_i = position.get(id(edge.src.value))
        dst_i = position.get(id(edge.dst.value))
        if src_i is None or dst_i is None:
            return None  # cross-function edge: not publishable
        edges.append(
            (src_i, dst_i, edge.kind, edge.data_kind, edge.is_memory,
             edge.is_must)
        )
    return {
        "fn": fn.name,
        "ninsts": len(insts),
        "edges": edges,
        "queries": shard.queries,
        "disproved": shard.disproved,
    }


def _hydrate_pdg(module: Module, aa_supplier, shards: dict[str, dict]) -> PDG:
    """Build a `_HydratedPDG` from per-function shard payloads.

    Functions without a (valid) payload are left unbuilt — the PDG's
    normal lazy materialization rebuilds them on first query.
    """
    pdg = _HydratedPDG.__new__(_HydratedPDG)
    DependenceGraph.__init__(pdg)
    pdg.module = module
    pdg._aa_supplier = aa_supplier
    pdg.partition = True
    pdg._materializing = False
    pdg._memory_queries = 0
    pdg._memory_disproved = 0
    pdg._shards = {}
    for fn in module.defined_functions():
        payload = shards.get(fn.name)
        if payload is None:
            continue
        insts = list(fn.instructions())
        if payload.get("ninsts") != len(insts):
            continue  # stale shard: rebuilt lazily
        shard = _Shard(fn)
        pdg._shards[id(fn)] = shard
        for inst in insts:
            pdg.add_node(inst, internal=True)
            shard.node_ids.append(id(inst))
        for src_i, dst_i, kind, data_kind, is_memory, is_must in (
            payload["edges"]
        ):
            edge = pdg.add_edge(
                insts[src_i], insts[dst_i], kind, data_kind, is_memory,
                is_must,
            )
            shard.edges.append(edge)
        shard.queries = payload.get("queries", 0)
        shard.disproved = payload.get("disproved", 0)
        pdg._memory_queries += shard.queries
        pdg._memory_disproved += shard.disproved
        STATS.count("cache.pdg_shards_hydrated")
    return pdg


# -- facade binding ----------------------------------------------------------


class ModuleCacheBinding:
    """Links one `Noelle` facade to its cache entry.

    Tracks which functions were mutated since load (``dirty``) so
    publish-back never writes artifacts derived from transformed code
    under the pristine module's key, and mirrors per-function
    invalidation onto disk.
    """

    def __init__(self, store: ArtifactStore, key: str, module: Module):
        self.store = store
        self.key = key
        self.module = module
        self.dirty: set[str] = set()

    def invalidate_function(self, fn: Function) -> None:
        self.dirty.add(fn.name)
        self.store.evict_function(self.key, fn.name)

    def publish_pdg(self, pdg: PDG | None) -> int:
        """Write back built, clean shards; returns shards published."""
        if pdg is None:
            return 0
        # Note: _HydratedPDG's ``aa`` is a lazy property — testing it
        # for None would force a full Andersen build just to publish.
        if not isinstance(pdg, _HydratedPDG) and pdg.aa is None:
            return 0  # metadata-rehydrated PDG: shards not trustworthy
        published = 0
        for shard in list(pdg._shards.values()):
            if shard.fn.name in self.dirty or shard.fn.parent is not self.module:
                continue
            payload = _serialize_shard(pdg, shard)
            if payload is None:
                continue
            self.store.publish_pdg_shard(self.key, shard.fn.name, payload)
            published += 1
        return published

    def publish_engine(self) -> int:
        """Write back compiled-engine plans for clean functions."""
        engine = _ENGINES.get(self.module)
        if engine is None:
            return 0
        published = 0
        for cf in list(engine.functions.values()):
            fn = cf.fn
            if (
                cf.plan is None
                or cf.code is None
                or fn.name in self.dirty
                or fn.parent is not self.module
            ):
                continue
            self.store.publish_engine_plan(self.key, fn.name, cf.plan, cf.code)
            published += 1
        return published


def attach(noelle) -> ModuleCacheBinding | None:
    """Bind ``noelle`` to the cache and hydrate what the entry holds.

    Publishes the module payload if this is the first sighting of its
    content.  PDG shards hydrate into ``noelle._pdg`` (directly — going
    through `adopt_pdg` would invalidate the compiled engine we are
    about to hydrate); engine plans hydrate into the module's engine.
    """
    store = get_store()
    if store is None:
        return None
    module = noelle.module
    key = _KEYS.get(module)
    if key is None:
        text = print_module(module)
        key = store.module_key(text)
        _KEYS[module] = key
        if not store.has_entry(key):
            store.publish_module(key, module, text)
    elif not store.has_entry(key):
        store.publish_module(key, module, print_module(module))
    binding = ModuleCacheBinding(store, key, module)
    if noelle._pdg is None:
        shards = store.load_pdg_shards(key)
        if shards:
            try:
                with STATS.timer("cache.hydrate_pdg"):
                    noelle._pdg = _hydrate_pdg(
                        module, noelle.alias_analysis, shards
                    )
            except Exception:
                noelle._pdg = None
                store.evict(key)
    _hydrate_engine(store, key, module)
    noelle.bind_cache(binding)
    return binding


def _hydrate_engine(store: ArtifactStore, key: str, module: Module) -> int:
    """Adopt the cached engine plan of every function that still needs
    one; plans that no longer match (stale after a format drift) are
    evicted.  Plan files of already-hydrated functions are not re-read."""
    engine = engine_for(module)
    hydrated = 0
    for fn in module.defined_functions():
        if id(fn) in engine.functions:
            continue
        loaded = store.load_engine_plan(key, fn.name)
        if loaded is None:
            continue
        plan, code = loaded
        try:
            engine.adopt(fn, plan, code)
            hydrated += 1
            STATS.count("cache.engine_plans_hydrated")
        except EnginePlanError:
            store.evict_function(key, fn.name)
    return hydrated


def publish_artifacts(module: Module, noelle=None) -> None:
    """Write back this process's computed artifacts for ``module``.

    No-op unless the cache is enabled and the module's key is known
    (i.e. it went through `cached_compile`/`load_ir_text`/`attach`).
    When a facade is given, its binding's dirty set is respected;
    otherwise the module is assumed pristine (never handed to tools).
    """
    store = get_store()
    if store is None:
        return
    binding = getattr(noelle, "_cache_binding", None) if noelle else None
    if binding is None:
        key = _KEYS.get(module)
        if key is None:
            return
        if not store.has_entry(key):
            store.publish_module(key, module, print_module(module))
        binding = ModuleCacheBinding(store, key, module)
    with STATS.timer("cache.publish"):
        if noelle is not None:
            binding.publish_pdg(noelle._pdg)
        binding.publish_engine()


# -- front doors -------------------------------------------------------------


def _load_via_alias(store: ArtifactStore, digest: str) -> Module | None:
    key = store.get_alias(digest)
    if key is None:
        return None
    module = store.load_module(key)
    if module is None:
        return None
    _KEYS[module] = key
    _hydrate_engine(store, key, module)
    return module


def cached_compile(source: str, name: str = "minic") -> Module:
    """`compile_source` with a content-addressed warm path.

    A warm hit decodes the binary module (skipping the frontend
    entirely) and pre-hydrates its engine plans; a miss compiles,
    then publishes the result keyed by its canonical printed text.
    """
    store = get_store()
    if store is None:
        return compile_source(source, name)
    digest = store.source_digest("src", name, source)
    module = _load_via_alias(store, digest)
    if module is not None:
        STATS.count("cache.hits")
        return module
    STATS.count("cache.misses")
    module = compile_source(source, name)
    text = print_module(module)
    key = store.module_key(text)
    _KEYS[module] = key
    store.publish_module(key, module, text)
    store.set_alias(digest, key)
    # An alias miss can still land on a warm entry (same canonical
    # text reached through another front door): adopt its plans.
    _hydrate_engine(store, key, module)
    return module


def load_ir_binary(data: bytes, name: str = "module") -> Module:
    """Decode binary IR with the same warm artifact path as the text
    front doors.

    The ``.nir`` payload already *is* the cached module encoding, so
    there is nothing to skip on decode — what the cache adds is the
    surrounding state: the module's content key (one canonical print,
    skipped on later loads via an alias over the raw bytes), hydrated
    engine plans, and publish-back of whatever this process computes.
    """
    from ..ir.binio import read_module

    store = get_store()
    if store is None:
        module = read_module(data)
        verify_module(module)
        return module
    raw = hashlib.sha256(data).hexdigest()
    digest = store.source_digest("nir", name, raw)
    key = store.get_alias(digest)
    if key is not None:
        module = read_module(data)
        _KEYS[module] = key
        if not store.has_entry(key):
            store.publish_module(key, module, print_module(module))
        _hydrate_engine(store, key, module)
        STATS.count("cache.hits")
        return module
    STATS.count("cache.misses")
    module = read_module(data)
    verify_module(module)
    canonical = print_module(module)
    key = store.module_key(canonical)
    _KEYS[module] = key
    if not store.has_entry(key):
        store.publish_module(key, module, canonical)
    store.set_alias(digest, key)
    _hydrate_engine(store, key, module)
    return module


def load_ir_text(text: str, name: str = "module") -> Module:
    """Parse textual IR with the same warm path as `cached_compile`."""
    store = get_store()
    if store is None:
        module = parse_module(text, name)
        verify_module(module)
        return module
    digest = store.source_digest("ir", name, text)
    module = _load_via_alias(store, digest)
    if module is not None:
        STATS.count("cache.hits")
        return module
    STATS.count("cache.misses")
    module = parse_module(text, name)
    verify_module(module)
    canonical = print_module(module)
    key = store.module_key(canonical)
    _KEYS[module] = key
    store.publish_module(key, module, canonical)
    store.set_alias(digest, key)
    # Same as `cached_compile`: the canonical key may already be warm.
    _hydrate_engine(store, key, module)
    return module
