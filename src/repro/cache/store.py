"""Content-addressed artifact store backing the compilation cache.

Layout under the cache root (``NOELLE_CACHE_DIR``)::

    objects/<key>/module.nir        binary module (repro.ir.binio)
    objects/<key>/meta.json         entry metadata — written LAST, so its
                                    presence commits the entry
    objects/<key>/pdg/<fn>.pkl      per-function PDG shard (pickle)
    objects/<key>/engine/<fn>.plan  per-function engine plan + marshal'd
                                    code object
    aliases/<digest>                source-text digest -> entry key
    tmp/                            staging area for atomic publishes

``<key>`` is the SHA-256 of the canonical printed module text prefixed
with a format/version salt (binary format version, engine plan version),
so any encoding change naturally invalidates every old entry.  Every
file is published atomically: written to ``tmp/`` and ``os.replace``'d
into place, so concurrent processes (serve workers, ``jobs=N`` pools)
can share one cache directory without locks — readers see either the
old complete file or the new complete file, never a torn one.

Validation on read is structural and cheap: the module payload's
SHA-256 must match ``meta.json`` (a mismatch is treated as poisoning —
the entry is evicted and the lookup reported as a miss), and engine
plan files carry the plan version plus the CPython bytecode magic
(marshal'd code objects are interpreter-specific).
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import marshal
import os
import pickle
import shutil

from ..interp.engine import EPLAN_VERSION
from ..ir.binio import FORMAT_VERSION, BinFormatError, read_module, write_module
from ..ir.module import Module
from ..perf import STATS

#: Environment variable pointing at the shared cache directory; the
#: cache is disabled when unset.
CACHE_DIR_ENV = "NOELLE_CACHE_DIR"

#: Salt prefixed to every hashed text.  Includes the binary format and
#: engine plan versions: bumping either orphans all old entries.
KEY_SALT = f"repro-noelle-cache-v1:nir{FORMAT_VERSION}:eplan{EPLAN_VERSION}:"

#: CPython bytecode magic — marshal'd code objects only load into the
#: same interpreter generation that wrote them.
_PY_MAGIC = importlib.util.MAGIC_NUMBER.hex()

_counter = 0


def _fn_filename(name: str) -> str:
    """A filesystem-safe, collision-free filename for a function name."""
    safe = "".join(
        c if c.isalnum() or c in "._-" else f"%{ord(c):02x}" for c in name
    )
    if safe != name or len(safe) > 80:
        safe = safe[:48] + "~" + hashlib.sha256(name.encode()).hexdigest()[:16]
    return safe


class ArtifactStore:
    """One cache directory; safe for concurrent multi-process use."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.objects = os.path.join(self.root, "objects")
        self.aliases = os.path.join(self.root, "aliases")
        self.tmp = os.path.join(self.root, "tmp")
        for path in (self.objects, self.aliases, self.tmp):
            os.makedirs(path, exist_ok=True)

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def module_key(text: str) -> str:
        """Content key of a module from its canonical printed text."""
        return hashlib.sha256((KEY_SALT + text).encode()).hexdigest()

    @staticmethod
    def source_digest(kind: str, name: str, source: str) -> str:
        """Alias key for raw input text (C-like source or textual IR)."""
        payload = f"{KEY_SALT}{kind}\x00{name}\x00{source}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def entry_dir(self, key: str) -> str:
        return os.path.join(self.objects, key)

    def has_entry(self, key: str) -> bool:
        return os.path.exists(os.path.join(self.entry_dir(key), "meta.json"))

    # -- atomic publishing ---------------------------------------------------

    def _write_atomic(self, path: str, data: bytes) -> None:
        global _counter
        _counter += 1
        staged = os.path.join(
            self.tmp, f"{os.getpid()}.{_counter}.{os.urandom(6).hex()}"
        )
        with open(staged, "wb") as handle:
            handle.write(data)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        os.replace(staged, path)
        STATS.count("cache.bytes_written", len(data))

    def _read(self, path: str) -> bytes | None:
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        STATS.count("cache.bytes_read", len(data))
        return data

    # -- module payloads -----------------------------------------------------

    def publish_module(self, key: str, module: Module, text: str) -> None:
        """Write the binary module and commit the entry with meta.json.

        ``text`` must be ``print_module(module)`` — the same canonical
        text the key was derived from.
        """
        entry = self.entry_dir(key)
        if self.has_entry(key):
            return
        with STATS.timer("cache.publish"):
            data = write_module(module)
            self._write_atomic(os.path.join(entry, "module.nir"), data)
            meta = {
                "key": key,
                "format": FORMAT_VERSION,
                "eplan": EPLAN_VERSION,
                "module_name": module.name,
                "nir_sha256": hashlib.sha256(data).hexdigest(),
                "text_bytes": len(text),
            }
            self._write_atomic(
                os.path.join(entry, "meta.json"),
                json.dumps(meta, sort_keys=True).encode(),
            )

    def load_module(self, key: str) -> Module | None:
        """Read an entry's module; None on miss, corruption, or version
        skew.  A payload whose hash no longer matches meta.json is
        treated as a poisoned entry: evicted and reported as a miss."""
        entry = self.entry_dir(key)
        meta_raw = self._read(os.path.join(entry, "meta.json"))
        if meta_raw is None:
            return None
        try:
            meta = json.loads(meta_raw)
        except ValueError:
            self.evict(key)
            return None
        if meta.get("format") != FORMAT_VERSION or meta.get("key") != key:
            self.evict(key)
            return None
        data = self._read(os.path.join(entry, "module.nir"))
        if data is None:
            self.evict(key)
            return None
        if hashlib.sha256(data).hexdigest() != meta.get("nir_sha256"):
            STATS.count("cache.poisoned")
            self.evict(key)
            return None
        try:
            with STATS.timer("cache.hydrate_module"):
                return read_module(data)
        except BinFormatError:
            STATS.count("cache.poisoned")
            self.evict(key)
            return None

    # -- PDG shards ----------------------------------------------------------

    def publish_pdg_shard(self, key: str, fn_name: str, payload: dict) -> None:
        path = os.path.join(
            self.entry_dir(key), "pdg", _fn_filename(fn_name) + ".pkl"
        )
        if os.path.exists(path):
            return
        self._write_atomic(path, pickle.dumps(payload, protocol=4))

    def load_pdg_shards(self, key: str) -> dict[str, dict]:
        """Every readable PDG shard of an entry, by function name."""
        directory = os.path.join(self.entry_dir(key), "pdg")
        shards: dict[str, dict] = {}
        try:
            names = os.listdir(directory)
        except OSError:
            return shards
        for filename in names:
            data = self._read(os.path.join(directory, filename))
            if data is None:
                continue
            try:
                payload = pickle.loads(data)
                fn_name = payload["fn"]
            except Exception:
                continue  # corrupt shard: skip (rebuilt lazily)
            shards[fn_name] = payload
        return shards

    # -- engine plans --------------------------------------------------------

    def publish_engine_plan(self, key: str, fn_name: str, plan: dict,
                            code) -> None:
        path = os.path.join(
            self.entry_dir(key), "engine", _fn_filename(fn_name) + ".plan"
        )
        if os.path.exists(path):
            return
        payload = {
            "fn": fn_name,
            "eplan": EPLAN_VERSION,
            "magic": _PY_MAGIC,
            "plan": plan,
            "code": marshal.dumps(code),
        }
        self._write_atomic(path, pickle.dumps(payload, protocol=4))

    def load_engine_plan(self, key: str, fn_name: str):
        """One function's engine plan as ``(plan, code)``, or None."""
        path = os.path.join(
            self.entry_dir(key), "engine", _fn_filename(fn_name) + ".plan"
        )
        data = self._read(path)
        if data is None:
            return None
        try:
            payload = pickle.loads(data)
            if (
                payload["eplan"] != EPLAN_VERSION
                or payload["magic"] != _PY_MAGIC
                or payload["fn"] != fn_name
            ):
                return None
            return payload["plan"], marshal.loads(payload["code"])
        except Exception:
            return None  # corrupt plan: recompiled instead

    def load_engine_plans(self, key: str) -> dict[str, tuple[dict, object]]:
        """Every valid engine plan of an entry: fn name -> (plan, code).

        Plans from a different plan version or CPython bytecode
        generation are skipped (they belong to another toolchain)."""
        directory = os.path.join(self.entry_dir(key), "engine")
        plans: dict[str, tuple[dict, object]] = {}
        try:
            names = os.listdir(directory)
        except OSError:
            return plans
        for filename in names:
            data = self._read(os.path.join(directory, filename))
            if data is None:
                continue
            try:
                payload = pickle.loads(data)
                if (
                    payload["eplan"] != EPLAN_VERSION
                    or payload["magic"] != _PY_MAGIC
                ):
                    continue
                code = marshal.loads(payload["code"])
                plans[payload["fn"]] = (payload["plan"], code)
            except Exception:
                continue  # corrupt plan: recompiled instead
        return plans

    # -- aliases -------------------------------------------------------------

    def set_alias(self, digest: str, key: str) -> None:
        self._write_atomic(
            os.path.join(self.aliases, digest), key.encode()
        )

    def get_alias(self, digest: str) -> str | None:
        data = self._read(os.path.join(self.aliases, digest))
        if data is None:
            return None
        key = data.decode("ascii", "replace").strip()
        return key if len(key) == 64 and key.isalnum() else None

    # -- eviction & maintenance ----------------------------------------------

    def evict(self, key: str) -> None:
        """Drop a whole entry (meta.json first, so readers miss cleanly)."""
        entry = self.entry_dir(key)
        try:
            os.unlink(os.path.join(entry, "meta.json"))
        except OSError:
            pass
        shutil.rmtree(entry, ignore_errors=True)
        STATS.count("cache.evictions")

    def evict_function(self, key: str, fn_name: str) -> None:
        """Drop one function's derived artifacts (PDG shard, engine
        plan), keeping the module payload and other functions intact."""
        entry = self.entry_dir(key)
        filename = _fn_filename(fn_name)
        for sub, ext in (("pdg", ".pkl"), ("engine", ".plan")):
            try:
                os.unlink(os.path.join(entry, sub, filename + ext))
                STATS.count("cache.evictions")
            except OSError:
                pass

    def clear(self) -> int:
        """Remove every entry and alias; returns entries removed."""
        removed = 0
        for directory in (self.objects, self.aliases, self.tmp):
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                path = os.path.join(directory, name)
                removed += 1
                if os.path.isdir(path):
                    shutil.rmtree(path, ignore_errors=True)
                else:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
        return removed

    def gc(self) -> dict:
        """Prune incomplete entries (no meta.json), entries from other
        format versions, dangling aliases, and leftover tmp files."""
        pruned_entries = 0
        pruned_aliases = 0
        pruned_tmp = 0
        try:
            entries = os.listdir(self.objects)
        except OSError:
            entries = []
        for key in entries:
            meta_path = os.path.join(self.objects, key, "meta.json")
            keep = False
            meta_raw = self._read(meta_path)
            if meta_raw is not None:
                try:
                    meta = json.loads(meta_raw)
                    keep = (
                        meta.get("format") == FORMAT_VERSION
                        and meta.get("key") == key
                    )
                except ValueError:
                    keep = False
            if not keep:
                shutil.rmtree(
                    os.path.join(self.objects, key), ignore_errors=True
                )
                pruned_entries += 1
        try:
            aliases = os.listdir(self.aliases)
        except OSError:
            aliases = []
        for digest in aliases:
            key = self.get_alias(digest)
            if key is None or not self.has_entry(key):
                try:
                    os.unlink(os.path.join(self.aliases, digest))
                except OSError:
                    pass
                pruned_aliases += 1
        try:
            leftovers = os.listdir(self.tmp)
        except OSError:
            leftovers = []
        for name in leftovers:
            try:
                os.unlink(os.path.join(self.tmp, name))
            except OSError:
                pass
            pruned_tmp += 1
        return {
            "pruned_entries": pruned_entries,
            "pruned_aliases": pruned_aliases,
            "pruned_tmp": pruned_tmp,
        }

    def stats(self) -> dict:
        """Entry/alias counts and on-disk footprint."""
        entries = 0
        pdg_shards = 0
        engine_plans = 0
        total_bytes = 0
        try:
            keys = os.listdir(self.objects)
        except OSError:
            keys = []
        for key in keys:
            entry = os.path.join(self.objects, key)
            if not os.path.exists(os.path.join(entry, "meta.json")):
                continue
            entries += 1
            for base, _dirs, files in os.walk(entry):
                for filename in files:
                    try:
                        total_bytes += os.path.getsize(
                            os.path.join(base, filename)
                        )
                    except OSError:
                        pass
                    if filename.endswith(".pkl"):
                        pdg_shards += 1
                    elif filename.endswith(".plan"):
                        engine_plans += 1
        try:
            aliases = len(os.listdir(self.aliases))
        except OSError:
            aliases = 0
        return {
            "root": self.root,
            "entries": entries,
            "aliases": aliases,
            "pdg_shards": pdg_shards,
            "engine_plans": engine_plans,
            "total_bytes": total_bytes,
        }
