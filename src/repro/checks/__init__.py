"""Static analysis checkers and diagnostics (the checker subsystem).

``run_checkers(module, noelle)`` is the entry point; see ``base.py``.
"""

from .base import (
    CHECKER_REGISTRY,
    CheckFailure,
    Checker,
    all_checker_names,
    checks_enabled,
    register_checker,
    run_checkers,
)
from .diagnostics import SEVERITIES, Diagnostic, has_errors, worst_severity

__all__ = [
    "CHECKER_REGISTRY",
    "CheckFailure",
    "Checker",
    "Diagnostic",
    "SEVERITIES",
    "all_checker_names",
    "checks_enabled",
    "has_errors",
    "register_checker",
    "run_checkers",
    "worst_severity",
]
