"""The checker framework: base class, registry, and driver.

A :class:`Checker` is a read-only static analysis over a module that
emits :class:`~repro.checks.diagnostics.Diagnostic` findings.  Checkers
are built on the NOELLE abstractions (PDG shards, points-to, the DFE)
rather than ad-hoc IR walks — the whole point of the subsystem is to
demonstrate that the abstraction layer makes correctness tooling cheap.

:func:`run_checkers` is the single driver everything routes through:
the ``repro-noelle check`` CLI verb, the ``NOELLE_CHECKS=1`` post-pass
gate in the transactional pass manager, and the tests.  It times each
checker (``checks.<name>`` timers) and counts findings per severity
(``checks.diagnostics.<severity>``) in the process-wide perf registry.
"""

from __future__ import annotations

import os

from ..perf import STATS
from .diagnostics import Diagnostic, has_errors

#: Environment variable enabling the post-pass checker gate.
ENV_VAR = "NOELLE_CHECKS"


class Checker:
    """Base class of every registered checker."""

    #: Registry key and diagnostic tag; subclasses must override.
    name = "checker"

    def run(self, module, noelle) -> list[Diagnostic]:
        """Analyze ``module`` (read-only) and return the findings.

        ``noelle`` is the facade to pull abstractions from; sharing the
        caller's facade keeps analysis caches (PDG shards, points-to,
        alias memos) warm across checkers and subsequent passes.
        """
        raise NotImplementedError


#: name -> Checker subclass, in registration (= execution) order.
CHECKER_REGISTRY: dict[str, type[Checker]] = {}


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding ``cls`` to the registry."""
    if not cls.name or cls.name == Checker.name:
        raise ValueError(f"checker {cls!r} must define a unique name")
    CHECKER_REGISTRY[cls.name] = cls
    return cls


def all_checker_names() -> list[str]:
    _ensure_builtin_checkers()
    return list(CHECKER_REGISTRY)


def checks_enabled(environ=None) -> bool:
    """True when ``NOELLE_CHECKS`` asks for the post-pass gate."""
    value = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    return value not in ("", "0")


class CheckFailure(Exception):
    """Raised by the pass-manager gate when a checker reports errors.

    Carries the full diagnostic list so the rollback path can serialize
    it into the crash bundle.
    """

    def __init__(self, diagnostics: list[Diagnostic]):
        errors = [d for d in diagnostics if d.severity == "error"]
        preview = "; ".join(str(d) for d in errors[:3])
        if len(errors) > 3:
            preview += f"; ... ({len(errors) - 3} more)"
        super().__init__(f"{len(errors)} checker error(s): {preview}")
        self.diagnostics = diagnostics


def _ensure_builtin_checkers() -> None:
    """Import the built-in checkers so they self-register.

    Lazy on purpose: importing this module (the pass manager does, to
    read ``checks_enabled``) must not drag in the analysis stack.
    """
    from . import lint, races, sanitizer  # noqa: F401


def run_checkers(module, noelle=None, names: list[str] | None = None):
    """Run checkers over ``module`` and return the combined findings.

    ``names`` selects a subset (registry order is kept); default is every
    registered checker.  A fresh facade is built when the caller has none.
    """
    _ensure_builtin_checkers()
    if noelle is None:
        from ..core.noelle import Noelle

        noelle = Noelle(module)
    if names is None:
        selected = list(CHECKER_REGISTRY)
    else:
        unknown = [n for n in names if n not in CHECKER_REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown checker(s) {unknown}; "
                f"available: {sorted(CHECKER_REGISTRY)}"
            )
        selected = [n for n in CHECKER_REGISTRY if n in set(names)]
    STATS.count("checks.runs")
    diagnostics: list[Diagnostic] = []
    with STATS.timer("checks.total"):
        for name in selected:
            checker = CHECKER_REGISTRY[name]()
            with STATS.timer(f"checks.{name}"):
                found = checker.run(module, noelle)
            for diagnostic in found:
                STATS.count(f"checks.diagnostics.{diagnostic.severity}")
            diagnostics.extend(found)
    if has_errors(diagnostics):
        STATS.count("checks.failed_modules")
    return diagnostics
