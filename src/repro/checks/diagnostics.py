"""Structured findings of the checker subsystem.

A :class:`Diagnostic` is the unit of output every checker produces: a
severity, the checker that emitted it, where in the module it points
(function name and instruction reference as *strings*, so a diagnostic
survives serialization into a crash bundle and stays meaningful after
the module it described was rolled back), and a human-readable message.

This module is dependency-light on purpose: the transactional pass
manager serializes diagnostics into ``CrashBundle`` reports, so the
dict form must round-trip through JSON without referencing IR objects.
"""

from __future__ import annotations

#: Severities in ascending order of badness.  Only ``error`` findings
#: fail the ``repro-noelle check`` exit code and the pass-manager gate;
#: ``warning`` marks possible-but-unproven problems (e.g. a may-alias
#: loop-carried dependence), ``info`` is lint-grade advice.
SEVERITIES = ("info", "warning", "error")

_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


class Diagnostic:
    """One checker finding, locatable and JSON-serializable."""

    __slots__ = ("checker", "severity", "message", "function", "location",
                 "pass_name")

    def __init__(
        self,
        checker: str,
        severity: str,
        message: str,
        function: str | None = None,
        location: str | None = None,
        pass_name: str | None = None,
    ):
        if severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {severity!r}; expected one of {SEVERITIES}"
            )
        self.checker = checker
        self.severity = severity
        self.message = message
        #: Name of the function the finding is in (None for module-level).
        self.function = function
        #: Instruction/block reference text (e.g. ``%load.3``), if any.
        self.location = location
        #: The parallelization technique or pass the finding concerns
        #: (e.g. "doall", "helix", "dswp"), when attributable.
        self.pass_name = pass_name

    @property
    def rank(self) -> int:
        return _RANK[self.severity]

    def to_dict(self) -> dict:
        return {
            "checker": self.checker,
            "severity": self.severity,
            "message": self.message,
            "function": self.function,
            "location": self.location,
            "pass": self.pass_name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        return cls(
            data["checker"],
            data["severity"],
            data["message"],
            function=data.get("function"),
            location=data.get("location"),
            pass_name=data.get("pass"),
        )

    def __str__(self) -> str:
        where = self.function or "<module>"
        if self.location:
            where = f"{where}:{self.location}"
        tag = f"[{self.checker}]"
        return f"{self.severity}: {tag} {where}: {self.message}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Diagnostic {self}>"


def worst_severity(diagnostics: list[Diagnostic]) -> str | None:
    """The highest severity present, or None for an empty list."""
    worst: str | None = None
    for diagnostic in diagnostics:
        if worst is None or diagnostic.rank > _RANK[worst]:
            worst = diagnostic.severity
    return worst


def has_errors(diagnostics: list[Diagnostic]) -> bool:
    return any(d.severity == "error" for d in diagnostics)
