"""IR lint: structural smells that are legal but usually unintended.

Everything this checker reports is *valid* IR (the verifier accepts it)
— the findings are advisory, so the checker never emits errors:

* unreachable basic blocks (no path from the entry) — WARNING;
* dead values: non-void, side-effect-free instructions with no users —
  INFO (a cleanup pass would delete them);
* non-canonical phis: a phi with a single incoming edge, or whose
  incoming values are all identical — INFO (both fold to a copy).
"""

from __future__ import annotations

from ..ir.instructions import Phi
from .base import Checker, register_checker
from .diagnostics import Diagnostic


@register_checker
class IRLint(Checker):
    """Advisory structural findings; never produces errors."""

    name = "lint"

    def run(self, module, noelle) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for fn in module.defined_functions():
            reachable = _reachable_blocks(fn)
            for block in fn.blocks:
                if id(block) not in reachable:
                    diagnostics.append(
                        Diagnostic(
                            self.name,
                            "warning",
                            f"block {block.ref()} is unreachable from the entry",
                            function=fn.name,
                            location=block.ref(),
                        )
                    )
            for inst in fn.instructions():
                if (
                    not inst.type.is_void()
                    and not inst.has_side_effects()
                    and not any(True for _ in inst.users())
                ):
                    diagnostics.append(
                        Diagnostic(
                            self.name,
                            "info",
                            f"value {inst.ref()} ({inst.opcode}) is never used",
                            function=fn.name,
                            location=inst.ref(),
                        )
                    )
                if isinstance(inst, Phi):
                    note = _phi_smell(inst)
                    if note is not None:
                        diagnostics.append(
                            Diagnostic(
                                self.name,
                                "info",
                                f"phi {inst.ref()} {note}",
                                function=fn.name,
                                location=inst.ref(),
                            )
                        )
        return diagnostics


def _reachable_blocks(fn) -> set[int]:
    if not fn.blocks:
        return set()
    seen = {id(fn.entry)}
    worklist = [fn.entry]
    while worklist:
        block = worklist.pop()
        for succ in block.successors():
            if id(succ) not in seen:
                seen.add(id(succ))
                worklist.append(succ)
    return seen


def _phi_smell(phi: Phi) -> str | None:
    incoming = list(phi.incoming())
    if len(incoming) == 1:
        return "has a single incoming edge (folds to a copy)"
    values = {id(value) for value, _ in incoming}
    if len(values) == 1:
        return "has identical incoming values (folds to a copy)"
    return None
