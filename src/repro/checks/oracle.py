"""The dynamic race oracle: ground truth for the static race detector.

A :class:`RaceOracle` is a :class:`~repro.runtime.machine.ParallelMachine`
that records every load/store executed inside a parallel region (via the
interpreter's ``memory_observer`` hook, which forces the reference
walker) and attributes each access to its *concurrency unit*:

* DOALL — the worker core (``task(env, core, n)`` argument);
* DSWP — the pipeline stage (``task(env, stage, n)`` argument);
* HELIX — the loop iteration, counted by the ``helix_iter_boundary``
  markers (iterations land on cores round-robin, so two different
  iterations may run concurrently).

After each region the access log is scanned for conflicts: the same
address touched by two different units with at least one write.  For
HELIX, a conflict is exempt when every conflicting access pair executed
under a common sequential segment id (the segment serializes them); no
exemption exists for DOALL (which promises independence) or DSWP
(queues are value channels, not memory).

One modeling correction keeps the oracle faithful: the HELIX region
executes as a *single* sequential call with core id 0, so any address
derived from the core-id argument (per-core reduction slots) would
falsely collide across iterations — in a real run each core addresses
its own slot.  Accesses whose pointer is data-dependent on the core-id
argument without passing through a phi (i.e. not via the chunked
induction variable) are therefore ignored for HELIX regions.

The differential contract this oracle anchors (see
``tests/checks/test_differential.py``): every race it observes must be
covered by a static race-checker diagnostic — the static detector may
over-approximate (warnings the oracle never confirms) but must never
miss an observed race.
"""

from __future__ import annotations

from ..ir.instructions import Call, Load, Phi, Store
from ..ir.module import Function
from ..runtime.machine import ParallelMachine

_DISPATCH_KINDS = {
    "noelle_dispatch_doall": "doall",
    "noelle_dispatch_helix": "helix",
    "noelle_dispatch_dswp": "dswp",
}


class DynamicRace:
    """One observed unsynchronized conflict."""

    __slots__ = ("kind", "task", "address", "unit_a", "unit_b")

    def __init__(self, kind, task, address, unit_a, unit_b):
        self.kind = kind      # "doall" | "helix" | "dswp"
        self.task = task      # task/selector function name
        self.address = address
        self.unit_a = unit_a  # e.g. ("core", 3), ("iter", 17), ("stage", 1)
        self.unit_b = unit_b

    def __str__(self) -> str:
        return (
            f"{self.kind} region @{self.task}: address {self.address} "
            f"touched by {self.unit_a[0]} {self.unit_a[1]} and "
            f"{self.unit_b[0]} {self.unit_b[1]} with a write"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DynamicRace {self}>"


class _Region:
    """Access log of one in-flight parallel dispatch."""

    __slots__ = ("kind", "task", "iteration", "current_unit", "accesses")

    def __init__(self, kind: str, task: Function):
        self.kind = kind
        self.task = task
        self.iteration = 0
        self.current_unit = None
        # address -> unit -> [set of read segment-sets, set of write ones]
        self.accesses: dict[int, dict[tuple, list[set]]] = {}


class RaceOracle(ParallelMachine):
    """ParallelMachine that logs per-unit memory accesses and finds races."""

    def __init__(self, module, **kwargs):
        kwargs.setdefault("engine", "reference")
        super().__init__(module, **kwargs)
        self.memory_observer = self._observe
        self.races: list[DynamicRace] = []
        self._region: _Region | None = None
        self._core_derived: dict[int, set[int]] = {}

    # -- region lifecycle ----------------------------------------------------------
    def _call_parallel_intrinsic(self, name: str, args: list[object]) -> object:
        kind = _DISPATCH_KINDS.get(name)
        if kind is not None:
            region = _Region(kind, self._task_of(args))
            outer, self._region = self._region, region
            try:
                return super()._call_parallel_intrinsic(name, args)
            finally:
                self._region = outer
                self._evaluate(region)
        if (
            name == "helix_iter_boundary"
            and self._region is not None
            and self._region.kind == "helix"
        ):
            self._region.iteration += 1
        return super()._call_parallel_intrinsic(name, args)

    def call_function(self, fn: Function, args: list[object]) -> object:
        region = self._region
        if region is not None and fn is region.task:
            previous = region.current_unit
            if region.kind == "doall":
                region.current_unit = ("core", int(args[1]))
            elif region.kind == "dswp":
                region.current_unit = ("stage", int(args[1]))
            else:
                region.current_unit = "helix"  # resolved per access
            try:
                return super().call_function(fn, args)
            finally:
                region.current_unit = previous
        return super().call_function(fn, args)

    # -- observation ---------------------------------------------------------------
    def _observe(self, kind: str, address: int, inst) -> None:
        region = self._region
        if region is None or region.current_unit is None:
            return
        if region.kind == "helix":
            if id(inst) in self._core_derived_accesses(region.task):
                return  # per-core storage; see the module docstring
            unit = ("iter", region.iteration)
            segments = frozenset(seg for seg, _ in self._segment_stack)
        else:
            unit = region.current_unit
            segments = frozenset()
        slot = region.accesses.setdefault(address, {})
        reads, writes = slot.setdefault(unit, [set(), set()])
        (writes if kind == "store" else reads).add(segments)

    def _core_derived_accesses(self, task: Function) -> set[int]:
        cached = self._core_derived.get(id(task))
        if cached is not None:
            return cached
        accesses: set[int] = set()
        if len(task.args) >= 2:
            tainted = {id(task.args[1])}
            changed = True
            while changed:
                changed = False
                for inst in task.instructions():
                    if id(inst) in tainted or isinstance(inst, (Phi, Load, Call)):
                        continue
                    if any(id(op) in tainted for op in inst.operands):
                        tainted.add(id(inst))
                        changed = True
            for inst in task.instructions():
                if isinstance(inst, (Load, Store)) and id(inst.pointer) in tainted:
                    accesses.add(id(inst))
        self._core_derived[id(task)] = accesses
        return accesses

    # -- conflict evaluation --------------------------------------------------------
    def _evaluate(self, region: _Region) -> None:
        for address, by_unit in region.accesses.items():
            race = self._first_conflict(region, address, by_unit)
            if race is not None:
                self.races.append(race)

    @staticmethod
    def _first_conflict(region, address, by_unit):
        """The first conflicting unit pair on ``address``, if any.

        One :class:`DynamicRace` per racy address is enough ground truth
        for the differential test; enumerating every unit pair would be
        quadratic in the iteration count for a racy accumulator.
        """
        units = list(by_unit.items())
        for i in range(len(units)):
            unit_a, (reads_a, writes_a) = units[i]
            for j in range(i + 1, len(units)):
                unit_b, (reads_b, writes_b) = units[j]
                if not writes_a and not writes_b:
                    continue
                if region.kind == "helix" and _segments_cover(
                    reads_a, writes_a, reads_b, writes_b
                ):
                    continue
                return DynamicRace(
                    region.kind, region.task.name, address, unit_a, unit_b
                )
        return None


def _segments_cover(reads_a, writes_a, reads_b, writes_b) -> bool:
    """True when every conflicting access pair shares a segment id."""
    for segs_a in writes_a:
        for segs_b in reads_b | writes_b:
            if not (segs_a & segs_b):
                return False
    for segs_b in writes_b:
        for segs_a in reads_a:
            if not (segs_a & segs_b):
                return False
    return True
