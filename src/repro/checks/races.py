"""The static race detector for parallelized IR.

For every parallel construct emitted by DOALL/HELIX/DSWP the checker
proves, with the same abstractions the parallelizers used (per-function
PDG shards, loop-carried classification, Andersen points-to), that
conflicting memory accesses across concurrently-executing iterations or
stages are either absent or covered by the construct's synchronization:

* **DOALL** promises *no* cross-iteration memory dependence at all —
  any loop-carried memory data edge left in the task's loop is a finding;
* **HELIX** serializes code inside sequential segments — a loop-carried
  memory data edge is fine iff both endpoints execute under a common
  ``helix_seq_begin/end`` segment id, and a finding otherwise;
* **DSWP** isolates stages except for the value queues — conflicting
  accesses in two different stage functions (which run concurrently)
  are findings unless points-to/AA proves them disjoint.

Constructs are discovered *structurally* — calls to the
``noelle_dispatch_*`` runtime entry points, DSWP stages through the
selector's ``switch`` — because metadata does not survive a
print/parse round-trip; the ``noelle.parallel`` metadata the
transforms attach is a refinement, not the source of truth.

Severity policy (calibrated against the dynamic oracle, see
``tests/checks/test_differential.py``): a *must*-alias unsynchronized
dependence is an ERROR (the conflict provably happens), a *may* edge is
a WARNING (the abstraction could not disprove it; on the registry
workloads these are SCEV imprecision after chunking, and the oracle
confirms they do not materialize).

Under ``NOELLE_DEPTEST=1`` the symbolic dependence tests
(:mod:`repro.analysis.deptest`) sharpen both directions: loop-carried
may-edges the tests disprove never reach the checker (the WARNING is
dropped as proven safe by the shared LoopDG refinement), and a surviving
edge whose iteration distance the tests *proved* is upgraded to an ERROR
in a DOALL task — DOALL promises zero carried dependences, so a proven
distance is a definite race.  HELIX keeps the WARNING severity (the
distance is reported) because cross-iteration conflicts there are only
races when no sequential segment covers them across cores.
"""

from __future__ import annotations

from ..analysis.aa import AliasResult, ModRefResult, underlying_object
from ..ir.instructions import Alloca, Call, Cast, ElemPtr, Load, Store, Switch
from ..ir.module import Function, Module
from ..ir.values import ConstantInt
from .base import Checker, register_checker
from .diagnostics import Diagnostic

#: Runtime dispatch entry points, keyed by callee name.
PARALLEL_DISPATCHES = {
    "noelle_dispatch_doall": "doall",
    "noelle_dispatch_helix": "helix",
    "noelle_dispatch_dswp": "dswp",
}

#: Callee-name prefixes of the synchronization/runtime intrinsics; their
#: "memory effects" model the runtime, not the program under analysis.
SYNC_PREFIXES = ("helix_seq_", "helix_iter_", "queue_push_", "queue_pop_",
                 "noelle_dispatch_")


class ParallelConstruct:
    """One discovered parallel region: the dispatch and its task code."""

    __slots__ = ("kind", "call", "task", "host", "stages")

    def __init__(self, kind: str, call: Call, task: Function, host: Function,
                 stages: list[tuple[int, Function]] | None = None):
        self.kind = kind            # "doall" | "helix" | "dswp"
        self.call = call            # the noelle_dispatch_* call
        self.task = task            # task (doall/helix) or selector (dswp)
        self.host = host            # function containing the dispatch
        self.stages = stages or []  # [(stage index, stage fn)] for dswp


def _called_name(inst) -> str | None:
    if not isinstance(inst, Call):
        return None
    callee = inst.called_function()
    return callee.name if callee is not None else None


def _is_sync_intrinsic(inst) -> bool:
    name = _called_name(inst)
    return name is not None and name.startswith(SYNC_PREFIXES)


def find_parallel_constructs(module: Module) -> list[ParallelConstruct]:
    """Discover every dispatched parallel region in ``module``."""
    constructs: list[ParallelConstruct] = []
    for fn in module.defined_functions():
        for inst in fn.instructions():
            kind = PARALLEL_DISPATCHES.get(_called_name(inst) or "")
            if kind is None:
                continue
            task = inst.args[0]
            if not isinstance(task, Function) or task.is_declaration():
                continue
            stages = _dswp_stages(task) if kind == "dswp" else None
            constructs.append(ParallelConstruct(kind, inst, task, fn, stages))
    return constructs


def _dswp_stages(selector: Function) -> list[tuple[int, Function]]:
    """Recover the stage functions from the selector's dispatch switch."""
    stages: list[tuple[int, Function]] = []
    for inst in selector.instructions():
        if not isinstance(inst, Switch):
            continue
        for const, block in inst.cases():
            for candidate in block.instructions:
                callee = (
                    candidate.called_function()
                    if isinstance(candidate, Call) else None
                )
                if callee is not None and not callee.is_declaration():
                    stages.append((const.value, callee))
                    break
        break
    return stages


def segment_spans(fn: Function) -> dict[int, frozenset]:
    """Map each instruction id to the HELIX segment ids covering it.

    Segments are bracketed by ``helix_seq_begin(id)``/``helix_seq_end(id)``
    marker calls whose spans never cross a block boundary (the transform
    emits them per block), so a linear per-block scan suffices.
    """
    spans: dict[int, frozenset] = {}
    for block in fn.blocks:
        active: list[int] = []
        for inst in block.instructions:
            name = _called_name(inst)
            if name == "helix_seq_begin":
                seg = inst.args[0]
                active.append(seg.value if isinstance(seg, ConstantInt) else -1)
            spans[id(inst)] = frozenset(active)
            if name == "helix_seq_end" and active:
                active.pop()
    return spans


def _address_root(inst):
    """The pointer operand's underlying object, if the access has one."""
    if isinstance(inst, (Load, Store)):
        return underlying_object(inst.pointer)
    return None


def _address_is_private(root, fn: Function) -> bool:
    """True when ``root`` is an alloca of ``fn`` whose address never
    leaves the function — per-invocation storage no other core/stage can
    reach, so accesses to it cannot race."""
    if not isinstance(root, Alloca):
        return False
    block = getattr(root, "parent", None)
    if block is None or block.parent is not fn:
        return False
    worklist = [root]
    seen = {id(root)}
    while worklist:
        value = worklist.pop()
        for user in value.users():
            if isinstance(user, (ElemPtr, Cast)):
                if id(user) not in seen:
                    seen.add(id(user))
                    worklist.append(user)
            elif isinstance(user, Load):
                continue
            elif isinstance(user, Store):
                if user.value is value:
                    return False  # address stored somewhere
            else:
                return False  # call argument, phi, return, comparison, ...
    return True


def _env_field_path(pointer, fn: Function) -> tuple | None:
    """Constant index path of an env-struct access, or None.

    DSWP stage functions receive the shared environment as their first
    argument; two accesses rooted at it are provably disjoint when their
    index chains differ at a position where both are constant (distinct
    struct fields / reduction slots).  Returns the flattened constant
    prefix (None entries mark non-constant levels).
    """
    if not fn.args:
        return None
    env = fn.args[0]
    chain: list = []
    value = pointer
    while isinstance(value, (ElemPtr, Cast)):
        if isinstance(value, Cast):
            value = value.value
            continue
        level = []
        for index in value.indices:
            level.append(index.value if isinstance(index, ConstantInt) else None)
        chain = level + chain
        value = value.base
    if value is not env or not chain:
        return None
    return tuple(chain)


def _env_paths_disjoint(path_a: tuple, path_b: tuple) -> bool:
    for a, b in zip(path_a, path_b):
        if a is not None and b is not None and a != b:
            return True
    return False


@register_checker
class RaceChecker(Checker):
    """Prove dispatched parallel regions free of unsynchronized conflicts."""

    name = "races"

    def run(self, module, noelle) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for construct in find_parallel_constructs(module):
            if construct.kind in ("doall", "helix"):
                diagnostics.extend(self._check_loop_construct(construct, noelle))
            else:
                diagnostics.extend(self._check_dswp(construct, noelle))
        return diagnostics

    # -- DOALL / HELIX: loop-carried edges of the task loop ------------------------
    def _check_loop_construct(self, construct, noelle) -> list[Diagnostic]:
        task = construct.task
        spans = segment_spans(task) if construct.kind == "helix" else None
        findings: dict[frozenset, Diagnostic] = {}
        for natural in noelle.loop_info(task).loops():
            if natural.parent is not None:
                continue  # carried deps of inner loops stay within one iteration
            ldg = noelle.pdg().loop_dependence_graph(natural)
            for edge in ldg.loop_carried_edges():
                if not edge.is_memory or not edge.is_data():
                    continue
                src, dst = edge.src.value, edge.dst.value
                if _is_sync_intrinsic(src) or _is_sync_intrinsic(dst):
                    continue
                root_src = _address_root(src)
                root_dst = _address_root(dst)
                if (
                    isinstance(root_src, Alloca)
                    and root_src is root_dst
                    and natural.contains(root_src)
                ):
                    continue  # fresh allocation every iteration: private
                if (
                    _address_is_private(root_src, task)
                    and _address_is_private(root_dst, task)
                ):
                    continue  # per-invocation (= per-core) storage
                if spans is not None:
                    common = (
                        spans.get(id(src), frozenset())
                        & spans.get(id(dst), frozenset())
                    )
                    if common:
                        continue  # serialized by a shared sequential segment
                severity = "error" if edge.is_must else "warning"
                distance = edge.distance
                if distance is not None and construct.kind == "doall":
                    # The dependence-test engine proved the conflict and
                    # its iteration distance; a DOALL loop promises no
                    # carried dependence at all, so this is definite.
                    severity = "error"
                key = frozenset((id(src), id(dst)))
                previous = findings.get(key)
                if previous is not None and previous.severity == "error":
                    continue
                suffix = (
                    "outside any sequential segment"
                    if construct.kind == "helix"
                    else "in a DOALL loop (which promises none)"
                )
                if distance is not None:
                    suffix += f" (proven iteration distance {distance})"
                findings[key] = Diagnostic(
                    self.name,
                    severity,
                    f"loop-carried {edge.data_kind} memory dependence "
                    f"between {_describe(src)} and {_describe(dst)} {suffix}",
                    function=task.name,
                    location=_location(src),
                    pass_name=construct.kind,
                )
        return list(findings.values())

    # -- DSWP: cross-stage conflicts -----------------------------------------------
    def _check_dswp(self, construct, noelle) -> list[Diagnostic]:
        aa = noelle.alias_analysis()
        stage_memory = [
            (index, fn, self._memory_instructions(fn))
            for index, fn in construct.stages
        ]
        findings: dict[frozenset, Diagnostic] = {}
        for i in range(len(stage_memory)):
            index_a, fn_a, insts_a = stage_memory[i]
            for j in range(i + 1, len(stage_memory)):
                index_b, fn_b, insts_b = stage_memory[j]
                for a in insts_a:
                    for b in insts_b:
                        if not (a.may_write_memory() or b.may_write_memory()):
                            continue
                        verdict = self._conflict(a, fn_a, b, fn_b, aa)
                        if verdict is None:
                            continue
                        key = frozenset((id(a), id(b)))
                        previous = findings.get(key)
                        if previous is not None and previous.severity == "error":
                            continue
                        findings[key] = Diagnostic(
                            self.name,
                            verdict,
                            f"stages {index_a} and {index_b} may access the "
                            f"same memory without a queue: {_describe(a)} in "
                            f"@{fn_a.name} vs {_describe(b)} in @{fn_b.name}",
                            function=fn_a.name,
                            location=_location(a),
                            pass_name="dswp",
                        )
        return list(findings.values())

    @staticmethod
    def _memory_instructions(fn: Function) -> list:
        result = []
        for inst in fn.instructions():
            if not inst.touches_memory() or _is_sync_intrinsic(inst):
                continue
            result.append(inst)
        return result

    @staticmethod
    def _conflict(a, fn_a, b, fn_b, aa) -> str | None:
        """Severity of the cross-stage conflict, or None when disproved."""
        pointer_a = a.pointer if isinstance(a, (Load, Store)) else None
        pointer_b = b.pointer if isinstance(b, (Load, Store)) else None
        if pointer_a is not None and _address_is_private(
            underlying_object(pointer_a), fn_a
        ):
            return None
        if pointer_b is not None and _address_is_private(
            underlying_object(pointer_b), fn_b
        ):
            return None
        if pointer_a is not None and pointer_b is not None:
            path_a = _env_field_path(pointer_a, fn_a)
            path_b = _env_field_path(pointer_b, fn_b)
            if (
                path_a is not None
                and path_b is not None
                and _env_paths_disjoint(path_a, path_b)
            ):
                return None  # distinct environment fields
            result = aa.alias(pointer_a, pointer_b)
            if result is AliasResult.NO_ALIAS:
                return None
            if result is AliasResult.MUST_ALIAS:
                return "error"
            if path_a is not None and path_b is not None and path_a == path_b:
                # Same constant env field from two stages: a definite
                # conflict even if the AA only answers "may".
                return "error"
            return "warning"
        # At least one call: fall back to mod/ref against the other pointer.
        if isinstance(a, Call) and pointer_b is not None:
            if aa.mod_ref(a, pointer_b) is ModRefResult.NO_MOD_REF:
                return None
            return "warning"
        if isinstance(b, Call) and pointer_a is not None:
            if aa.mod_ref(b, pointer_a) is ModRefResult.NO_MOD_REF:
                return None
            return "warning"
        return "warning"  # call/call: conservative


def _describe(inst) -> str:
    if isinstance(inst, Load):
        return f"load {inst.ref()}"
    if isinstance(inst, Store):
        return f"store to {inst.pointer.ref()}"
    name = _called_name(inst)
    if name is not None:
        return f"call @{name}"
    return inst.opcode


def _location(inst) -> str:
    if getattr(inst, "name", ""):
        return f"%{inst.name}"
    block = getattr(inst, "parent", None)
    return f"{inst.opcode} in %{block.name}" if block is not None else inst.opcode
