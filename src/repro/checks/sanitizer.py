"""The memory sanitizer: use-before-init and static out-of-bounds.

Two analyses, both built on existing abstractions rather than ad-hoc
walks:

* **use-before-init** — a forward *must-be-initialized* problem on the
  DFE (intersection meet from TOP, empty at entry): an alloca id is in
  the set when every path from the entry stores to it first.  A load
  whose underlying object is a local alloca not in its IN set may read
  uninitialized storage.  Stores gen the allocas they may write (via
  ``underlying_object``, falling back to Andersen points-to); calls gen
  every alloca they may mod (per the AA's mod/ref) so interprocedural
  initialization does not produce false positives.  Findings are
  WARNINGs, not ERRORs: the reference machine zero-initializes memory,
  so the read is deterministic — just almost certainly unintended.

* **out-of-bounds** — constant-folds ``elem_ptr`` index chains against
  the statically known allocation type of a direct alloca/global base.
  A non-zero leading index (stepping off a single object) or a constant
  array index outside ``[0, count)`` is flagged: ERROR when the address
  feeds a load/store directly, WARNING when it is only computed.

  Under ``NOELLE_DEPTEST=1`` the constant fold is upgraded to a
  *symbolic range proof*: an array index that is an affine recurrence of
  the enclosing loop is bounded by its SCEV range over the derived trip
  count, and a range escaping ``[0, count)`` is flagged (WARNING — the
  escaping iteration may be guarded) even though no single index is
  constant.  Indices already wrapped by a provably in-range ``srem``
  fold away and are proven safe by the same machinery.
"""

from __future__ import annotations

from ..analysis.aa import ModRefResult, underlying_object
from ..analysis.deptest import deptest_enabled
from ..analysis.scev import SCEVAddRec, ScalarEvolution
from ..ir.instructions import Alloca, Call, Cast, ElemPtr, Load, Store
from ..ir.types import ArrayType, StructType
from ..ir.values import ConstantInt, GlobalVariable
from .base import Checker, register_checker
from .diagnostics import Diagnostic


@register_checker
class MemorySanitizer(Checker):
    """Flag use-before-init of allocas and statically OOB elem_ptrs."""

    name = "sanitizer"

    def run(self, module, noelle) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for fn in module.defined_functions():
            diagnostics.extend(self._check_use_before_init(fn, noelle))
            diagnostics.extend(self._check_bounds(fn, noelle))
        return diagnostics

    # -- use-before-init -----------------------------------------------------------
    def _check_use_before_init(self, fn, noelle) -> list[Diagnostic]:
        from ..core.dataflow import DataFlowProblem

        allocas = [i for i in fn.instructions() if isinstance(i, Alloca)]
        if not allocas:
            return []
        local_ids = {id(a) for a in allocas}
        aa = noelle.alias_analysis()
        pts = noelle.points_to()

        def initialized_by(inst) -> set:
            if isinstance(inst, Store):
                root = underlying_object(inst.pointer)
                if isinstance(root, Alloca) and id(root) in local_ids:
                    return {id(root)}
                targets = pts.points_to(inst.pointer)
                if not targets or any(o.kind == "unknown" for o in targets):
                    return set(local_ids)  # could write anything: stay quiet
                return {
                    id(o.site)
                    for o in targets
                    if o.kind == "alloca" and id(o.site) in local_ids
                }
            if isinstance(inst, Call):
                return {
                    id(a)
                    for a in allocas
                    if aa.mod_ref(inst, a) is not ModRefResult.NO_MOD_REF
                }
            return set()

        problem = DataFlowProblem(
            "forward", initialized_by, lambda inst: set(), meet="intersection"
        )
        result = noelle.dataflow_engine().run(fn, problem)
        diagnostics = []
        for inst in fn.instructions():
            if not isinstance(inst, Load):
                continue
            root = underlying_object(inst.pointer)
            if not (isinstance(root, Alloca) and id(root) in local_ids):
                continue
            if id(root) not in result.in_of(inst):
                diagnostics.append(
                    Diagnostic(
                        self.name,
                        "warning",
                        f"load {inst.ref()} may read alloca "
                        f"{root.ref()} before it is initialized",
                        function=fn.name,
                        location=inst.ref(),
                    )
                )
        return diagnostics

    # -- static bounds -------------------------------------------------------------
    def _check_bounds(self, fn, noelle) -> list[Diagnostic]:
        diagnostics = []
        symbolic = _SymbolicBounds(fn, noelle) if deptest_enabled() else None
        for inst in fn.instructions():
            if not isinstance(inst, ElemPtr):
                continue
            problem = _fold_indices(inst)
            if problem is not None:
                severity = (
                    "error" if _directly_dereferenced(inst) else "warning"
                )
            elif symbolic is not None:
                problem = symbolic.check(inst)
                # The escaping iterations may be guarded inside the loop,
                # so a range proof never claims more than a WARNING.
                severity = "warning"
            if problem is None:
                continue
            diagnostics.append(
                Diagnostic(
                    self.name,
                    severity,
                    f"elem_ptr {inst.ref()} is statically out of bounds: "
                    f"{problem}",
                    function=fn.name,
                    location=inst.ref(),
                )
            )
        return diagnostics


class _SymbolicBounds:
    """SCEV-range bounds proofs for loop-varying elem_ptr indices."""

    def __init__(self, fn, noelle):
        self.fn = fn
        self._noelle = noelle
        self._info = None
        self._engines: dict[int, ScalarEvolution] = {}
        self._pinned: dict[int, object] = {}

    def _loop_of(self, inst):
        if self._info is None:
            if self._noelle is not None:
                self._info = self._noelle.loop_info(self.fn)
            else:
                from ..analysis.loopinfo import LoopInfo

                self._info = LoopInfo(self.fn)
        return self._info.loop_of(inst.parent)

    def _scev_of(self, loop) -> ScalarEvolution:
        engine = self._engines.get(id(loop))
        if engine is None:
            engine = ScalarEvolution(loop, fold_srem=True)
            self._engines[id(loop)] = engine
            self._pinned[id(loop)] = loop
        return engine

    def check(self, inst: ElemPtr) -> str | None:
        """OOB description when an index's iteration range escapes."""
        loop = self._loop_of(inst)
        if loop is None:
            return None
        base = inst.base
        while isinstance(base, Cast):
            base = base.value
        if isinstance(base, (Alloca, GlobalVariable)):
            allocated = base.allocated_type
        else:
            return None
        scev = self._scev_of(loop)
        current = allocated
        for index in inst.indices[1:]:
            if isinstance(current, ArrayType):
                bounds = self._index_bounds(scev, index)
                if bounds is not None:
                    low, high = bounds
                    if low < 0 or high >= current.count:
                        return (
                            f"index range [{low}, {high}] over the loop's "
                            f"iterations escapes [0, {current.count}) of "
                            f"{current} in {base.ref()}"
                        )
                current = current.element
            elif isinstance(current, StructType):
                if not isinstance(index, ConstantInt):
                    return None
                if not 0 <= index.value < len(current.fields):
                    return None
                current = current.fields[index.value]
            else:
                return None
        return None

    @staticmethod
    def _index_bounds(scev: ScalarEvolution, index) -> tuple[int, int] | None:
        if isinstance(index, ConstantInt):
            return (index.value, index.value)
        evolution = scev.evolution_of(index)
        if isinstance(evolution, SCEVAddRec):
            return scev.addrec_range(evolution)
        return None


def _fold_indices(inst: ElemPtr) -> str | None:
    """Description of the OOB condition, or None for in-bounds/unknown."""
    base = inst.base
    while isinstance(base, Cast):
        base = base.value
    if isinstance(base, Alloca):
        allocated = base.allocated_type
    elif isinstance(base, GlobalVariable):
        allocated = base.allocated_type
    else:
        return None  # derived pointer: allocation extent unknown here
    indices = inst.indices
    first = indices[0]
    if isinstance(first, ConstantInt) and first.value != 0:
        return (
            f"leading index {first.value} steps off the single "
            f"{allocated} object {base.ref()}"
        )
    current = allocated
    for index in indices[1:]:
        if isinstance(current, ArrayType):
            if isinstance(index, ConstantInt) and not (
                0 <= index.value < current.count
            ):
                return (
                    f"index {index.value} outside [0, {current.count}) "
                    f"of {current} in {base.ref()}"
                )
            current = current.element
        elif isinstance(current, StructType):
            if not isinstance(index, ConstantInt):
                return None  # verifier rejects this; don't double-report
            if not 0 <= index.value < len(current.fields):
                return None
            current = current.fields[index.value]
        else:
            return None  # scalar level: nothing left to index
    return None


def _directly_dereferenced(inst: ElemPtr) -> bool:
    for user in inst.users():
        if isinstance(user, Load) and user.pointer is inst:
            return True
        if isinstance(user, Store) and user.pointer is inst:
            return True
    return False
