"""repro.core — the NOELLE abstraction layer (the paper's Table 1).

One module per abstraction:

========================  ==========================================
Abstraction (paper name)  Module
========================  ==========================================
PDG                       :mod:`repro.core.pdg` (+ :mod:`depgraph`)
aSCCDAG                   :mod:`repro.core.sccdag`
Call graph (CG)           :mod:`repro.core.callgraph`
Environment (ENV)         :mod:`repro.core.environment`
Task (T)                  :mod:`repro.core.task`
Data-flow engine (DFE)    :mod:`repro.core.dataflow`
Loop structure (LS)       :mod:`repro.core.loopstructure`
Profiler (PRO)            :mod:`repro.core.profiler`
Scheduler (SCD)           :mod:`repro.core.scheduler`
Invariant (INV)           :mod:`repro.core.invariants`
Induction variable (IV)   :mod:`repro.core.induction`
IV stepper (IVS)          :mod:`repro.core.ivstepper`
Reduction (RD)            :mod:`repro.core.reduction`
Loop (L)                  :mod:`repro.core.loop`
Forest (FR)               :mod:`repro.core.forest`
Loop builder (LB)         :mod:`repro.core.loopbuilder`
Islands (ISL)             :mod:`repro.core.islands`
Architecture (AR)         :mod:`repro.core.architecture`
IDs / metadata            :mod:`repro.core.metadata`
========================  ==========================================

:class:`repro.core.noelle.Noelle` is the demand-driven facade tying them
together.
"""

from .architecture import ArchitectureDescription
from .callgraph import CallEdge, CallGraph
from .dataflow import (
    DataFlowEngine,
    DataFlowProblem,
    DataFlowResult,
    liveness,
    reaching_definitions,
)
from .depgraph import DependenceGraph, DGEdge, DGNode
from .environment import Environment, EnvironmentBuilder
from .forest import Forest, TreeNode
from .induction import InductionVariable, InductionVariableManager
from .invariants import InvariantManager
from .islands import connected_components, dependence_graph_islands
from .ivstepper import InductionVariableStepper, IVStepperError
from .loop import Loop
from .loopbuilder import LoopBuilder
from .loopstructure import LoopStructure
from .metadata import IDAssigner, clean_noelle_metadata
from .noelle import Noelle
from .partitioner import Partition, SCCDAGPartitioner
from .pdg import PDG, LoopDG
from .profiler import ProfileData, Profiler, embed_profile
from .reduction import ReductionDescriptor, match_reduction
from .sccdag import SCC, SCCDAG
from .scheduler import BasicBlockScheduler, LoopScheduler, Scheduler
from .task import Task, make_task_function

__all__ = [
    "ArchitectureDescription",
    "CallEdge",
    "CallGraph",
    "DataFlowEngine",
    "DataFlowProblem",
    "DataFlowResult",
    "liveness",
    "reaching_definitions",
    "DependenceGraph",
    "DGEdge",
    "DGNode",
    "Environment",
    "EnvironmentBuilder",
    "Forest",
    "TreeNode",
    "InductionVariable",
    "InductionVariableManager",
    "InvariantManager",
    "connected_components",
    "dependence_graph_islands",
    "InductionVariableStepper",
    "IVStepperError",
    "Loop",
    "LoopBuilder",
    "LoopStructure",
    "IDAssigner",
    "clean_noelle_metadata",
    "Noelle",
    "Partition",
    "SCCDAGPartitioner",
    "PDG",
    "LoopDG",
    "ProfileData",
    "Profiler",
    "embed_profile",
    "ReductionDescriptor",
    "match_reduction",
    "SCC",
    "SCCDAG",
    "BasicBlockScheduler",
    "LoopScheduler",
    "Scheduler",
    "Task",
    "make_task_function",
]
