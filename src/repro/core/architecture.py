"""The architecture abstraction (Table 1, "AR").

Describes the machine a parallelized program will run on: logical and
physical cores, their mapping, NUMA nodes, and the measured core-to-core
communication latencies and bandwidths.  In the paper this is produced by
``noelle-arch``, which benchmarks the real machine (via hwloc); here the
machine is the simulator in :mod:`repro.runtime.machine`, and the
measurement tool probes it the same way (send a token core-to-core, time
it), so the description stays honest with respect to what the parallel
runtime will actually pay.
"""

from __future__ import annotations


class ArchitectureDescription:
    """A machine description consumed by HELIX/DSWP/DOALL."""

    def __init__(
        self,
        num_physical_cores: int,
        smt_ways: int = 1,
        numa_nodes: int = 1,
        core_to_core_latency: dict[tuple[int, int], int] | None = None,
        core_to_core_bandwidth: dict[tuple[int, int], float] | None = None,
        default_latency: int = 40,
        default_bandwidth: float = 8.0,
    ):
        self.num_physical_cores = num_physical_cores
        self.smt_ways = smt_ways
        self.numa_nodes = numa_nodes
        self._latency = core_to_core_latency or {}
        self._bandwidth = core_to_core_bandwidth or {}
        self.default_latency = default_latency
        self.default_bandwidth = default_bandwidth

    @property
    def num_logical_cores(self) -> int:
        return self.num_physical_cores * self.smt_ways

    def physical_core_of(self, logical: int) -> int:
        """Logical cores are numbered physical-major (hwloc-style)."""
        return logical % self.num_physical_cores

    def numa_node_of(self, logical: int) -> int:
        cores_per_node = max(1, self.num_physical_cores // self.numa_nodes)
        return self.physical_core_of(logical) // cores_per_node

    def latency(self, src: int, dst: int) -> int:
        """Cycles for a value to travel from core ``src`` to core ``dst``."""
        if src == dst:
            return 0
        key = (min(src, dst), max(src, dst))
        base = self._latency.get(key, self.default_latency)
        if self.numa_node_of(src) != self.numa_node_of(dst):
            base = int(base * 2.5)  # cross-socket penalty
        return base

    def bandwidth(self, src: int, dst: int) -> float:
        """Values per cycle sustainable between two cores."""
        if src == dst:
            return float("inf")
        key = (min(src, dst), max(src, dst))
        return self._bandwidth.get(key, self.default_bandwidth)

    def set_latency(self, src: int, dst: int, cycles: int) -> None:
        self._latency[(min(src, dst), max(src, dst))] = cycles

    def set_bandwidth(self, src: int, dst: int, values_per_cycle: float) -> None:
        self._bandwidth[(min(src, dst), max(src, dst))] = values_per_cycle

    @classmethod
    def haswell_like(cls) -> "ArchitectureDescription":
        """A description shaped after the paper's evaluation platform:
        12 physical cores, 2-way SMT, one NUMA node."""
        return cls(num_physical_cores=12, smt_ways=2, numa_nodes=1,
                   default_latency=40)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Architecture {self.num_physical_cores}c x{self.smt_ways}smt "
            f"{self.numa_nodes}numa>"
        )
