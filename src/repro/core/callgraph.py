"""The complete program call graph (Table 1, "CG").

Unlike LLVM's call graph, NOELLE's is *complete*: indirect calls are
resolved to their possible callees through the points-to layer (the same
machinery that powers the PDG).  Completeness is what lets custom tools
treat a missing edge as proof that one function cannot call another —
the property DeadFunctionElimination relies on to delete functions.

Edges are **must** (a direct call, or an indirect call with exactly one
possible target) or **may** (several possible targets), and each edge
carries sub-edges naming the call instructions realizing it.
"""

from __future__ import annotations

from ..analysis.pointsto import PointsToAnalysis
from ..ir.instructions import Call
from ..ir.module import Function, Module


class CallEdge:
    """caller -> callee, with the call sites realizing it."""

    def __init__(self, caller: Function, callee: Function, is_must: bool):
        self.caller = caller
        self.callee = callee
        self.is_must = is_must
        #: Sub-edges: the specific call instructions of this caller-callee pair.
        self.call_sites: list[Call] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "must" if self.is_must else "may"
        return f"<call {self.caller.name} -> {self.callee.name} ({kind})>"


class CallGraph:
    """The complete call graph of one module."""

    def __init__(self, module: Module, pointsto: PointsToAnalysis):
        self.module = module
        self.pointsto = pointsto
        self._outgoing: dict[int, list[CallEdge]] = {}
        self._incoming: dict[int, list[CallEdge]] = {}
        self._edge_index: dict[tuple[int, int], CallEdge] = {}
        #: Calls whose target set could not be resolved at all.
        self.unresolved_calls: list[Call] = []
        self._build()

    def _build(self) -> None:
        for fn in self.module.functions.values():
            self._outgoing.setdefault(id(fn), [])
            self._incoming.setdefault(id(fn), [])
        for fn in self.module.defined_functions():
            for inst in fn.instructions():
                if not isinstance(inst, Call):
                    continue
                targets = self.pointsto.callees_of(inst)
                if not targets:
                    self.unresolved_calls.append(inst)
                    continue
                is_must = len(targets) == 1
                for callee in targets:
                    self._add_edge(fn, callee, inst, is_must)

    def _add_edge(self, caller: Function, callee: Function, site: Call, is_must: bool):
        key = (id(caller), id(callee))
        edge = self._edge_index.get(key)
        if edge is None:
            edge = CallEdge(caller, callee, is_must)
            self._edge_index[key] = edge
            self._outgoing[id(caller)].append(edge)
            self._incoming[id(callee)].append(edge)
        edge.is_must = edge.is_must and is_must
        edge.call_sites.append(site)

    # -- queries --------------------------------------------------------------------
    def callees_of(self, fn: Function) -> list[CallEdge]:
        return list(self._outgoing.get(id(fn), []))

    def callers_of(self, fn: Function) -> list[CallEdge]:
        return list(self._incoming.get(id(fn), []))

    def possible_callees(self, call: Call) -> list[Function]:
        return self.pointsto.callees_of(call)

    def is_complete(self) -> bool:
        """True when every call site resolved to at least one target."""
        return not self.unresolved_calls

    def reachable_from(self, roots: list[Function]) -> set[int]:
        """ids of all functions transitively callable from ``roots``."""
        reachable: set[int] = set()
        worklist = list(roots)
        while worklist:
            fn = worklist.pop()
            if id(fn) in reachable:
                continue
            reachable.add(id(fn))
            for edge in self.callees_of(fn):
                if id(edge.callee) not in reachable:
                    worklist.append(edge.callee)
        return reachable

    def islands(self) -> list[list[Function]]:
        """Disconnected components of the (undirected) call graph.

        The ISL abstraction works over any graph; the call graph exposes it
        directly because DEAD and COOS consume it here.
        """
        from .islands import connected_components

        functions = list(self.module.functions.values())
        neighbors: dict[int, list[Function]] = {id(f): [] for f in functions}
        for edge in self._edge_index.values():
            neighbors[id(edge.caller)].append(edge.callee)
            neighbors[id(edge.callee)].append(edge.caller)
        return connected_components(functions, neighbors)

    def is_recursive(self, fn: Function) -> bool:
        """Can ``fn`` reach itself through calls?"""
        return id(fn) in self.reachable_from(
            [e.callee for e in self.callees_of(fn)]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CallGraph {len(self._edge_index)} edges>"
