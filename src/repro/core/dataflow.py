"""The data-flow engine (Table 1, "DFE").

A generic engine for gen/kill data-flow problems with the optimizations the
paper lists: set-based transfer functions, *basic-block granularity* (block
summaries are composed once, instruction-level results materialized on
demand), a *worklist* algorithm, and *priority ordering* (reverse postorder
for forward problems, postorder for backward ones, which approximates
loop-based priority).

Canned analyses built on the engine: liveness and reaching definitions —
the two consumed by the scheduler, COOS, and the parallelizers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable

from ..analysis.cfg import postorder, reverse_postorder
from ..ir.instructions import Instruction, Phi
from ..ir.module import BasicBlock, Function


class DataFlowProblem:
    """Specification of a gen/kill data-flow problem."""

    def __init__(
        self,
        direction: str,
        gen: Callable[[Instruction], set[Hashable]],
        kill: Callable[[Instruction], set[Hashable]],
        meet: str = "union",
        boundary: set[Hashable] | None = None,
    ):
        if direction not in ("forward", "backward"):
            raise ValueError(f"bad direction {direction!r}")
        if meet not in ("union", "intersection"):
            raise ValueError(f"bad meet {meet!r}")
        self.direction = direction
        self.gen = gen
        self.kill = kill
        self.meet = meet
        self.boundary = boundary or set()


class DataFlowResult:
    """IN/OUT sets per basic block, with on-demand per-instruction slicing."""

    def __init__(self, problem: DataFlowProblem):
        self.problem = problem
        self.block_in: dict[int, set[Hashable]] = {}
        self.block_out: dict[int, set[Hashable]] = {}

    def in_of_block(self, block: BasicBlock) -> set[Hashable]:
        return self.block_in.get(id(block), set())

    def out_of_block(self, block: BasicBlock) -> set[Hashable]:
        return self.block_out.get(id(block), set())

    def in_of(self, inst: Instruction) -> set[Hashable]:
        """The data-flow facts holding just before ``inst``."""
        block = inst.parent
        assert block is not None
        if self.problem.direction == "forward":
            state = set(self.in_of_block(block))
            for current in block.instructions:
                if current is inst:
                    return state
                state = (state - self.problem.kill(current)) | self.problem.gen(current)
            raise ValueError("instruction not in its block")
        state = set(self.out_of_block(block))
        for current in reversed(block.instructions):
            state = (state - self.problem.kill(current)) | self.problem.gen(current)
            if current is inst:
                return state
        raise ValueError("instruction not in its block")

    def out_of(self, inst: Instruction) -> set[Hashable]:
        """The data-flow facts holding just after ``inst``."""
        block = inst.parent
        assert block is not None
        if self.problem.direction == "forward":
            state = set(self.in_of_block(block))
            for current in block.instructions:
                state = (state - self.problem.kill(current)) | self.problem.gen(current)
                if current is inst:
                    return state
            raise ValueError("instruction not in its block")
        state = set(self.out_of_block(block))
        for current in reversed(block.instructions):
            if current is inst:
                return state
            state = (state - self.problem.kill(current)) | self.problem.gen(current)
        raise ValueError("instruction not in its block")


class DataFlowEngine:
    """The worklist solver."""

    def run(self, fn: Function, problem: DataFlowProblem) -> DataFlowResult:
        result = DataFlowResult(problem)
        # Block-level gen/kill summaries (the basic-block optimization).
        block_gen: dict[int, set[Hashable]] = {}
        block_kill: dict[int, set[Hashable]] = {}
        for block in fn.blocks:
            gen: set[Hashable] = set()
            kill: set[Hashable] = set()
            instructions = (
                block.instructions
                if problem.direction == "forward"
                else list(reversed(block.instructions))
            )
            for inst in instructions:
                inst_gen = problem.gen(inst)
                inst_kill = problem.kill(inst)
                gen = (gen - inst_kill) | inst_gen
                kill = (kill - inst_gen) | inst_kill
            block_gen[id(block)] = gen
            block_kill[id(block)] = kill

        if problem.direction == "forward":
            order = reverse_postorder(fn)
            inputs_of = lambda b: b.predecessors()
        else:
            order = postorder(fn)
            inputs_of = lambda b: b.successors()
        position = {id(b): i for i, b in enumerate(order)}

        # Intersection problems must start from TOP (the universe of
        # facts), or loops would erase facts against the uninitialized
        # back edge.  Union problems start from bottom (the empty set).
        if problem.meet == "intersection":
            universe: set[Hashable] = set(problem.boundary)
            for gen in block_gen.values():
                universe |= gen
            initial = universe
        else:
            initial = set()
        for block in fn.blocks:
            result.block_in[id(block)] = set(initial)
            result.block_out[id(block)] = set(initial)

        worklist: deque[BasicBlock] = deque(order)
        queued = {id(b) for b in order}
        while worklist:
            block = worklist.popleft()
            queued.discard(id(block))
            inputs = inputs_of(block)
            if problem.direction == "forward":
                state = self._meet(problem, inputs, result.block_out, block)
                result.block_in[id(block)] = state
                new_out = (state - block_kill[id(block)]) | block_gen[id(block)]
                if new_out != result.block_out[id(block)]:
                    result.block_out[id(block)] = new_out
                    self._enqueue(block.successors(), worklist, queued, position)
            else:
                state = self._meet(problem, inputs, result.block_in, block)
                result.block_out[id(block)] = state
                new_in = (state - block_kill[id(block)]) | block_gen[id(block)]
                if new_in != result.block_in[id(block)]:
                    result.block_in[id(block)] = new_in
                    self._enqueue(block.predecessors(), worklist, queued, position)
        return result

    def _meet(
        self,
        problem: DataFlowProblem,
        inputs: list[BasicBlock],
        source: dict[int, set[Hashable]],
        block: BasicBlock,
    ) -> set[Hashable]:
        if not inputs:
            return set(problem.boundary)
        sets = [source.get(id(b), set()) for b in inputs]
        if problem.meet == "union":
            merged: set[Hashable] = set()
            for s in sets:
                merged |= s
            return merged
        merged = set(sets[0])
        for s in sets[1:]:
            merged &= s
        return merged

    @staticmethod
    def _enqueue(blocks, worklist: deque, queued: set[int], position: dict[int, int]):
        for block in blocks:
            if id(block) not in queued:
                queued.add(id(block))
                worklist.append(block)


# --------------------------------------------------------------------------- canned analyses
def liveness(fn: Function) -> DataFlowResult:
    """Backward liveness of SSA values (ids of the live instructions)."""

    def gen(inst: Instruction) -> set[Hashable]:
        used: set[Hashable] = set()
        for operand in inst.operands:
            if isinstance(operand, Instruction):
                used.add(id(operand))
        return used

    def kill(inst: Instruction) -> set[Hashable]:
        return {id(inst)} if not inst.type.is_void() else set()

    return DataFlowEngine().run(fn, DataFlowProblem("backward", gen, kill))


def reaching_definitions(fn: Function) -> DataFlowResult:
    """Forward reaching definitions of memory stores, keyed by pointer root.

    Two stores kill each other when they provably write the same location
    (same pointer value) — a simple but useful memory data-flow.
    """
    from ..ir.instructions import Store

    stores_by_pointer: dict[int, set[Hashable]] = {}
    for inst in fn.instructions():
        if isinstance(inst, Store):
            stores_by_pointer.setdefault(id(inst.pointer), set()).add(id(inst))

    def gen(inst: Instruction) -> set[Hashable]:
        return {id(inst)} if isinstance(inst, Store) else set()

    def kill(inst: Instruction) -> set[Hashable]:
        if isinstance(inst, Store):
            others = stores_by_pointer.get(id(inst.pointer), set())
            return others - {id(inst)}
        return set()

    return DataFlowEngine().run(fn, DataFlowProblem("forward", gen, kill))


def live_phi_free_values_at(fn: Function, block: BasicBlock) -> set[int]:
    """Convenience: ids of values live at the top of ``block``."""
    result = liveness(fn)
    return set(result.in_of_block(block))
