"""The generic *dependence graph* template (Section 2.2, "PDG").

NOELLE's PDG is an instantiation of a templated dependence-graph class:
what constitutes a node is decided at instantiation (instructions for the
PDG, functions for the call graph, SCCs for the SCCDAG).  Edges carry
attributes distinguishing control from data dependences; data dependences
are further characterized by kind (RAW/WAW/WAR), memory vs register,
loop-carried or not, and apparent (may) vs actual (must).

The graph also distinguishes *internal* from *external* nodes: internal
nodes belong to the code region the graph describes (e.g. a loop), external
nodes are its live-ins/live-outs — exactly the split a parallelizing
transformation needs.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class DGEdge(Generic[T]):
    """A directed dependence from ``src`` to ``dst`` (dst depends on src)."""

    __slots__ = ("src", "dst", "kind", "data_kind", "is_memory", "is_must",
                 "is_loop_carried", "distance")

    def __init__(
        self,
        src: "DGNode[T]",
        dst: "DGNode[T]",
        kind: str,
        data_kind: str | None = None,
        is_memory: bool = False,
        is_must: bool = False,
        is_loop_carried: bool = False,
    ):
        if kind not in ("data", "control"):
            raise ValueError(f"bad edge kind {kind!r}")
        if kind == "data" and data_kind not in ("RAW", "WAW", "WAR"):
            raise ValueError(f"bad data dependence kind {data_kind!r}")
        self.src = src
        self.dst = dst
        self.kind = kind
        self.data_kind = data_kind
        self.is_memory = is_memory
        #: Actual (proved) vs apparent (may) dependence.
        self.is_must = is_must
        self.is_loop_carried = is_loop_carried
        #: Proven iteration distance of a carried memory dependence, when
        #: the dependence-test engine derived one (NOELLE_DEPTEST=1).
        self.distance: int | None = None

    def is_data(self) -> bool:
        return self.kind == "data"

    def is_control(self) -> bool:
        return self.kind == "control"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tags = [self.kind]
        if self.data_kind:
            tags.append(self.data_kind)
        if self.is_memory:
            tags.append("mem")
        if self.is_loop_carried:
            tags.append("carried")
        return f"<edge {self.src.value!r} -> {self.dst.value!r} [{' '.join(tags)}]>"


class DGNode(Generic[T]):
    """A node wrapping one value of the instantiating type."""

    __slots__ = ("value", "is_internal", "outgoing", "incoming")

    def __init__(self, value: T, is_internal: bool = True):
        self.value = value
        self.is_internal = is_internal
        self.outgoing: list[DGEdge[T]] = []
        self.incoming: list[DGEdge[T]] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "internal" if self.is_internal else "external"
        return f"<node {self.value!r} ({role})>"


class DependenceGraph(Generic[T]):
    """A directed multigraph of dependences between nodes of type ``T``."""

    def __init__(self) -> None:
        self._nodes: dict[int, DGNode[T]] = {}
        self._edges: list[DGEdge[T]] = []

    # -- nodes --------------------------------------------------------------------
    def add_node(self, value: T, internal: bool = True) -> DGNode[T]:
        node = self._nodes.get(id(value))
        if node is None:
            node = DGNode(value, internal)
            self._nodes[id(value)] = node
        else:
            node.is_internal = node.is_internal or internal
        return node

    def node_of(self, value: T) -> DGNode[T] | None:
        return self._nodes.get(id(value))

    def has_node(self, value: T) -> bool:
        return id(value) in self._nodes

    def nodes(self) -> Iterator[DGNode[T]]:
        return iter(self._nodes.values())

    def internal_nodes(self) -> list[DGNode[T]]:
        return [n for n in self._nodes.values() if n.is_internal]

    def external_nodes(self) -> list[DGNode[T]]:
        return [n for n in self._nodes.values() if not n.is_internal]

    def num_nodes(self) -> int:
        return len(self._nodes)

    def remove_node(self, value: T) -> None:
        node = self._nodes.pop(id(value), None)
        if node is None:
            return
        for edge in list(node.outgoing):
            self.remove_edge(edge)
        for edge in list(node.incoming):
            self.remove_edge(edge)

    # -- edges ---------------------------------------------------------------------
    def add_edge(
        self,
        src: T,
        dst: T,
        kind: str,
        data_kind: str | None = None,
        is_memory: bool = False,
        is_must: bool = False,
        is_loop_carried: bool = False,
    ) -> DGEdge[T]:
        src_node = self._nodes.get(id(src))
        if src_node is None:
            src_node = self.add_node(src)
        dst_node = self._nodes.get(id(dst))
        if dst_node is None:
            dst_node = self.add_node(dst)
        edge = DGEdge(
            src_node,
            dst_node,
            kind,
            data_kind,
            is_memory,
            is_must,
            is_loop_carried,
        )
        src_node.outgoing.append(edge)
        dst_node.incoming.append(edge)
        self._edges.append(edge)
        return edge

    def remove_edge(self, edge: DGEdge[T]) -> None:
        if edge in edge.src.outgoing:
            edge.src.outgoing.remove(edge)
        if edge in edge.dst.incoming:
            edge.dst.incoming.remove(edge)
        if edge in self._edges:
            self._edges.remove(edge)

    def edges(self) -> list[DGEdge[T]]:
        return list(self._edges)

    def num_edges(self) -> int:
        return len(self._edges)

    def edges_between(self, src: T, dst: T) -> list[DGEdge[T]]:
        src_node = self._nodes.get(id(src))
        if src_node is None:
            return []
        return [e for e in src_node.outgoing if e.dst.value is dst]

    # -- dependence queries --------------------------------------------------------
    def dependences_of(self, value: T) -> list[DGEdge[T]]:
        """Edges from values ``value`` depends on (its incoming edges)."""
        node = self._nodes.get(id(value))
        return list(node.incoming) if node is not None else []

    def dependents_of(self, value: T) -> list[DGEdge[T]]:
        """Edges to values that depend on ``value``."""
        node = self._nodes.get(id(value))
        return list(node.outgoing) if node is not None else []

    # -- derived graphs --------------------------------------------------------------
    def subgraph(self, internal_values: list[T]) -> "DependenceGraph[T]":
        """Project the graph onto ``internal_values``.

        Nodes outside the set that touch it are kept as *external* nodes —
        they are the region's live-ins/live-outs.
        """
        return self._project(internal_values, self._edges)

    def _project(
        self, internal_values: list[T], edges: "list[DGEdge[T]]"
    ) -> "DependenceGraph[T]":
        """Project onto ``internal_values`` considering only ``edges``.

        The caller guarantees ``edges`` contains every edge touching the
        internal set (subclasses that shard their edge lists — the PDG —
        use this to project without scanning unrelated shards).
        """
        internal_ids = {id(v) for v in internal_values}
        result: DependenceGraph[T] = DependenceGraph()
        for value in internal_values:
            if id(value) in self._nodes:
                result.add_node(value, internal=True)
        for edge in edges:
            src_in = id(edge.src.value) in internal_ids
            dst_in = id(edge.dst.value) in internal_ids
            if not (src_in or dst_in):
                continue
            if not src_in:
                result.add_node(edge.src.value, internal=False)
            if not dst_in:
                result.add_node(edge.dst.value, internal=False)
            copied = result.add_edge(
                edge.src.value,
                edge.dst.value,
                edge.kind,
                edge.data_kind,
                edge.is_memory,
                edge.is_must,
                edge.is_loop_carried,
            )
            copied.distance = edge.distance
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DependenceGraph {len(self._nodes)} nodes, {len(self._edges)} edges>"
