"""The environment abstraction (Table 1, "ENV").

An *environment* carries the values flowing into and out of a task: the
live-ins and live-outs of the code region the task executes.  Conceptually
it is the paper's "array of pointers of variables"; here it is materialized
as a struct — one typed field per variable — allocated by the dispatching
code.  Tasks receive a pointer to it, load their live-ins from it, and
store their live-outs back, which is exactly the explicit value forwarding
the parallelizers need.

:class:`EnvironmentBuilder` creates, modifies, and queries environments
(the paper's *Environment Builder*).
"""

from __future__ import annotations

from .. import ir


class Environment:
    """The live-in/live-out layout of one task."""

    def __init__(self, struct: ir.StructType, live_ins: list[ir.Value],
                 live_outs: list[ir.Value]):
        self.struct = struct
        self.live_ins = list(live_ins)
        self.live_outs = list(live_outs)
        #: Field index of each value inside the struct.
        self.index_of: dict[int, int] = {}
        for index, value in enumerate(self.live_ins + self.live_outs):
            # A value that is both live-in and live-out keeps its first slot.
            self.index_of.setdefault(id(value), index)

    def num_fields(self) -> int:
        return len(self.live_ins) + self.num_live_outs()

    def num_live_outs(self) -> int:
        return len(self.live_outs)

    def field_index(self, value: ir.Value) -> int:
        return self.index_of[id(value)]

    def pointer_type(self) -> ir.PointerType:
        return ir.PointerType(self.struct)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Environment %{self.struct.name}: {len(self.live_ins)} in, "
            f"{len(self.live_outs)} out>"
        )


class EnvironmentBuilder:
    """Creates environments and the IR that populates/consumes them."""

    _counter = 0

    def __init__(self, module: ir.Module):
        self.module = module

    def create(
        self, live_ins: list[ir.Value], live_outs: list[ir.Value], name_hint: str = "env"
    ) -> Environment:
        """Define the environment struct type for the given boundary."""
        EnvironmentBuilder._counter += 1
        struct_name = f"{name_hint}.{EnvironmentBuilder._counter}"
        fields = [v.type for v in live_ins] + [v.type for v in live_outs]
        struct = self.module.add_struct(struct_name, fields)
        return Environment(struct, live_ins, live_outs)

    # -- caller side -------------------------------------------------------------
    def allocate(self, builder: ir.IRBuilder, env: Environment) -> ir.Value:
        """Allocate one environment instance at the builder's position."""
        return builder.alloca(env.struct, "env")

    def store_live_ins(
        self, builder: ir.IRBuilder, env: Environment, env_ptr: ir.Value
    ) -> None:
        """Populate the live-in fields from the surrounding code's values."""
        for value in env.live_ins:
            self.store_field(builder, env, env_ptr, value, value)

    def store_field(
        self,
        builder: ir.IRBuilder,
        env: Environment,
        env_ptr: ir.Value,
        key: ir.Value,
        value: ir.Value,
    ) -> None:
        index = env.field_index(key)
        field_ptr = builder.elem_ptr(
            env_ptr, [ir.const_int(0), ir.const_int(index)], f"env.f{index}"
        )
        builder.store(value, field_ptr)

    def load_field(
        self,
        builder: ir.IRBuilder,
        env: Environment,
        env_ptr: ir.Value,
        key: ir.Value,
        name: str = "env.load",
    ) -> ir.Value:
        index = env.field_index(key)
        field_ptr = builder.elem_ptr(
            env_ptr, [ir.const_int(0), ir.const_int(index)], f"env.f{index}"
        )
        return builder.load(field_ptr, name)
