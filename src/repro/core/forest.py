"""The forest abstraction (Table 1, "FR").

A forest of trees whose defining feature is deletion behaviour: removing a
node re-attaches its children to its parent, so the forest stays connected
while transformations dissolve nodes (e.g. LICM processing loops innermost
to outermost, or a loop transformation deleting a loop).

The canonical instance is the loop-nesting forest, built from the NOELLE
loop abstraction so every tree node carries a :class:`repro.core.loop.Loop`.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")


class TreeNode(Generic[T]):
    def __init__(self, value: T):
        self.value = value
        self.parent: "TreeNode[T] | None" = None
        self.children: list["TreeNode[T]"] = []

    def depth(self) -> int:
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TreeNode {self.value!r} ({len(self.children)} children)>"


class Forest(Generic[T]):
    """A forest with parent-preserving node deletion."""

    def __init__(self) -> None:
        self.roots: list[TreeNode[T]] = []
        self._node_of: dict[int, TreeNode[T]] = {}

    def add(self, value: T, parent_value: T | None = None) -> TreeNode[T]:
        node = TreeNode(value)
        self._node_of[id(value)] = node
        if parent_value is None:
            self.roots.append(node)
        else:
            parent = self._node_of[id(parent_value)]
            node.parent = parent
            parent.children.append(node)
        return node

    def node_of(self, value: T) -> TreeNode[T] | None:
        return self._node_of.get(id(value))

    def remove(self, value: T) -> None:
        """Delete a node; its children are re-attached to its parent."""
        node = self._node_of.pop(id(value), None)
        if node is None:
            return
        for child in node.children:
            child.parent = node.parent
        if node.parent is None:
            index = self.roots.index(node)
            self.roots[index : index + 1] = node.children
        else:
            siblings = node.parent.children
            index = siblings.index(node)
            siblings[index : index + 1] = node.children
        node.children = []
        node.parent = None

    # -- traversal -----------------------------------------------------------------
    def nodes(self) -> Iterator[TreeNode[T]]:
        stack = list(self.roots)
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def values(self) -> Iterator[T]:
        for node in self.nodes():
            yield node.value

    def leaves(self) -> list[TreeNode[T]]:
        return [n for n in self.nodes() if not n.children]

    def bottom_up(self) -> list[TreeNode[T]]:
        """Nodes ordered children-before-parents (innermost loops first)."""
        order: list[TreeNode[T]] = []
        def visit(node: TreeNode[T]) -> None:
            for child in node.children:
                visit(child)
            order.append(node)
        for root in self.roots:
            visit(root)
        return order

    def num_nodes(self) -> int:
        return len(self._node_of)
