"""The induction variable abstraction (Table 1, "IV").

An induction variable of a loop is, in SSA, an SCC of the loop's aSCCDAG:
the header phi plus the update chain.  NOELLE's abstraction exposes that
SCC, the start value, the per-iteration step, and whether the IV *governs*
the loop (controls how many iterations run).

The detection of governing IVs works for **any** loop shape because it
reasons over the aSCCDAG and the exit condition's dependences.  LLVM's
counterpart (:mod:`repro.baselines.induction_llvm`) pattern-matches
do-while-shaped loops only — which is why it finds 11 governing IVs where
NOELLE finds 385 across the paper's 41 benchmarks (Section 4.3).
"""

from __future__ import annotations

from ..analysis.loopinfo import NaturalLoop
from ..analysis.scev import SCEVAddRec, ScalarEvolution
from ..ir.instructions import CmpInst, CondBranch, Instruction, Phi
from ..ir.values import Value
from .sccdag import SCC, SCCDAG


class InductionVariable:
    """One induction variable: its SCC, start, step, and role."""

    def __init__(
        self,
        loop: NaturalLoop,
        phi: Phi,
        scc: SCC | None,
        start: Value,
        step: Value | int,
    ):
        self.loop = loop
        self.phi = phi
        #: The aSCCDAG SCC embodying this IV (None when no SCCDAG was built).
        self.scc = scc
        self.start = start
        #: Either a constant int step or the loop-invariant step value.
        self.step = step
        self.is_governing = False
        #: The compare instruction of the exit this IV governs (if any).
        self.exit_compare: CmpInst | None = None
        #: Derived IVs relate to a parent (e.g. ``j = 4*i``).
        self.derived_from: "InductionVariable | None" = None

    def constant_step(self) -> int | None:
        return self.step if isinstance(self.step, int) else None

    def update_instructions(self) -> list[Instruction]:
        if self.scc is not None:
            return [i for i in self.scc.instructions if i is not self.phi]
        return [
            v
            for v, pred in self.phi.incoming()
            if isinstance(v, Instruction) and self.loop.contains_block(pred)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        governing = " governing" if self.is_governing else ""
        return f"<IV {self.phi.ref()} step={self.step!r}{governing}>"


class InductionVariableManager:
    """Detects the induction variables of one loop."""

    def __init__(self, loop: NaturalLoop, sccdag: SCCDAG | None = None):
        self.loop = loop
        self.sccdag = sccdag
        self.scev = ScalarEvolution(loop)
        self.ivs: list[InductionVariable] = []
        self._detect()
        self._detect_governing()
        self._detect_derived()

    # -- detection ------------------------------------------------------------------
    def _detect(self) -> None:
        for phi in self.loop.header.phis():
            if not phi.type.is_integer():
                continue
            evolution = self.scev.evolution_of(phi)
            if not isinstance(evolution, SCEVAddRec):
                continue
            start = self._start_value(phi)
            step = evolution.constant_step()
            if step is None:
                step_value = self._step_value(phi)
                if step_value is None:
                    continue
                step = step_value
            scc = self.sccdag.scc_of(phi) if self.sccdag is not None else None
            self.ivs.append(InductionVariable(self.loop, phi, scc, start, step))

    def _start_value(self, phi: Phi) -> Value:
        for value, pred in phi.incoming():
            if not self.loop.contains_block(pred):
                return value
        raise ValueError(f"header phi {phi.ref()} has no entry edge")

    def _step_value(self, phi: Phi) -> Value | None:
        """The loop-invariant (but non-constant) step, if recognizable."""
        from ..ir.instructions import BinaryOp

        for value, pred in phi.incoming():
            if self.loop.contains_block(pred) and isinstance(value, BinaryOp):
                if value.opcode == "add":
                    other = value.rhs if value.lhs is phi else value.lhs
                    if not (
                        isinstance(other, Instruction) and self.loop.contains(other)
                    ):
                        return other
        return None

    def _detect_governing(self) -> None:
        """Find IVs that control the loop's iteration count.

        Works on any loop shape: examine every exiting branch; if its
        condition is a compare between an IV's SCC value and a
        loop-invariant bound, that IV governs the exit.
        """
        for exiting in self.loop.exiting_blocks():
            term = exiting.terminator
            if not isinstance(term, CondBranch):
                continue
            condition = term.condition
            if not isinstance(condition, CmpInst):
                continue
            iv = self._iv_of_compare(condition)
            if iv is not None:
                iv.is_governing = True
                iv.exit_compare = condition

    def _iv_of_compare(self, compare: CmpInst) -> InductionVariable | None:
        from ..analysis.scev import evolution_is_invariant

        for operand, other in ((compare.lhs, compare.rhs), (compare.rhs, compare.lhs)):
            iv = self._iv_producing(operand)
            if iv is None:
                continue
            if isinstance(other, Instruction) and self.loop.contains(other):
                # A bound recomputed in the loop still governs when its
                # evolution is invariant (e.g. ``n - width - 1``).
                if self._iv_producing(other) is None and not (
                    evolution_is_invariant(self.scev.evolution_of(other))
                ):
                    continue  # bound truly varies: not governing
            return iv
        return None

    def _iv_producing(self, value: Value) -> InductionVariable | None:
        """The IV whose SCC produces ``value``, looking through its chain."""
        for iv in self.ivs:
            if value is iv.phi:
                return iv
            if iv.scc is not None and isinstance(value, Instruction):
                if iv.scc.contains(value):
                    return iv
            elif isinstance(value, Instruction) and value in iv.update_instructions():
                return iv
        # A value with an affine evolution in lockstep with an IV also
        # exposes it (e.g. comparing i+1 against n in a rotated loop).
        if isinstance(value, Instruction) and self.loop.contains(value):
            evolution = self.scev.evolution_of(value)
            if isinstance(evolution, SCEVAddRec) and self.ivs:
                return self.ivs[0] if len(self.ivs) == 1 else None
        return None

    def _detect_derived(self) -> None:
        """Relate IVs whose evolutions are affine in another IV's steps."""
        constant_ivs = [iv for iv in self.ivs if iv.constant_step() is not None]
        for iv in constant_ivs:
            for other in constant_ivs:
                if iv is other or other.derived_from is not None:
                    continue
                step_a, step_b = iv.constant_step(), other.constant_step()
                if step_a and step_b and step_b % step_a == 0 and step_b != step_a:
                    other.derived_from = iv

    # -- queries --------------------------------------------------------------------
    def governing_iv(self) -> InductionVariable | None:
        """The governing induction variable, if a unique one exists."""
        governing = [iv for iv in self.ivs if iv.is_governing]
        return governing[0] if len(governing) == 1 else None

    def all_ivs(self) -> list[InductionVariable]:
        return list(self.ivs)
