"""The invariant abstraction (Table 1, "INV") — Algorithm 2 of the paper.

NOELLE decides loop invariance with one recursive rule over the PDG: an
instruction is invariant iff everything it depends on (register, memory,
*and* control dependences alike) is either outside the loop or itself
invariant.  The cycle-breaking stack makes mutually dependent instructions
non-invariant, exactly as in the paper's pseudo-code.

Compare with :mod:`repro.baselines.invariants_llvm`, the reproduction of
Algorithm 1: LLVM's low-level implementation special-cases loads, stores,
and calls against alias analysis and dominators, and is both longer and
weaker — the gap Figure 4 measures.
"""

from __future__ import annotations

from ..analysis.loopinfo import NaturalLoop
from ..ir.instructions import Call, Instruction, Phi, TerminatorInst
from .pdg import PDG


class InvariantManager:
    """Per-loop invariant queries powered by the PDG (Algorithm 2)."""

    def __init__(self, loop: NaturalLoop, pdg: PDG):
        self.loop = loop
        self.pdg = pdg
        # The loop dependence graph adds the *reverse* loop-carried memory
        # edges the program-order PDG omits (a later store feeding an
        # earlier load of the next iteration); invariance must see them.
        self._dg = pdg.loop_dependence_graph(loop)
        self._cache: dict[int, bool] = {}

    def is_invariant(self, inst: Instruction) -> bool:
        """Is ``inst`` a loop invariant of this loop?"""
        if not self.loop.contains(inst):
            return False
        return self._is_invariant(inst, set())

    def invariants(self) -> list[Instruction]:
        """All invariant instructions of the loop, in program order."""
        return [i for i in self.loop.instructions() if self.is_invariant(i)]

    # -- Algorithm 2 --------------------------------------------------------------
    def _is_invariant(self, inst: Instruction, stack: set[int]) -> bool:
        cached = self._cache.get(id(inst))
        if cached is not None:
            return cached
        if id(inst) in stack:
            return False  # dependence cycle: cannot be invariant
        if not self._may_be_invariant(inst):
            self._cache[id(inst)] = False
            return False
        stack.add(id(inst))
        result = True
        for edge in self._dg.dependences_of(inst):
            if edge.is_control():
                # Whether the instruction *executes* is the hoister's
                # speculation question, not an invariance question: every
                # loop-body instruction is control dependent on the exit
                # branch, so counting control edges would reject everything.
                continue
            producer = edge.src.value
            if not self.loop.contains(producer):
                continue
            if not self._is_invariant(producer, stack):
                result = False
                break
        stack.discard(id(inst))
        self._cache[id(inst)] = result
        return result

    @staticmethod
    def _may_be_invariant(inst: Instruction) -> bool:
        """Structural exclusions: control flow and phis are never invariant,
        and calls with side effects must execute every iteration."""
        if isinstance(inst, (TerminatorInst, Phi)):
            return False
        if isinstance(inst, Call):
            # A call qualifies only when provably pure; pure calls have no
            # memory effects despite the conservative Call classification.
            callee = inst.called_function()
            return callee is not None and "pure" in callee.attributes
        if inst.may_write_memory():
            return False
        return True
