"""The islands abstraction (Table 1, "ISL").

Identifies the disconnected sub-graphs of any graph — used on the call
graph by DEAD and on compare-instruction dependence slices by the
Time-Squeezer tool.
"""

from __future__ import annotations

from typing import Hashable, TypeVar

T = TypeVar("T", bound=Hashable)


def connected_components(
    values: list[T], neighbors: dict[int, list[T]]
) -> list[list[T]]:
    """Undirected connected components over ``values``.

    ``neighbors`` maps ``id(value)`` to adjacent values; missing entries
    mean isolated nodes.
    """
    seen: set[int] = set()
    components: list[list[T]] = []
    for value in values:
        if id(value) in seen:
            continue
        component: list[T] = []
        stack = [value]
        seen.add(id(value))
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbor in neighbors.get(id(node), ()):
                if id(neighbor) not in seen:
                    seen.add(id(neighbor))
                    stack.append(neighbor)
        components.append(component)
    return components


def dependence_graph_islands(graph) -> list[list]:
    """Islands of a :class:`repro.core.depgraph.DependenceGraph`."""
    values = [n.value for n in graph.nodes()]
    neighbors: dict[int, list] = {id(v): [] for v in values}
    for edge in graph.edges():
        neighbors[id(edge.src.value)].append(edge.dst.value)
        neighbors[id(edge.dst.value)].append(edge.src.value)
    return connected_components(values, neighbors)
