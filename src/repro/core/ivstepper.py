"""The induction variable stepper (Table 1, "IVS").

Modifies the step (and start) of a loop's induction variables: the user
specifies the new step value and the abstraction rewrites the loop.  This
is the mechanism behind loop-rotation step reversal and — most importantly
here — DOALL's iteration chunking, where each core's copy of the loop steps
by ``num_cores * chunk`` and starts at ``start + core_id * chunk``.
"""

from __future__ import annotations

from .. import ir
from ..ir.instructions import BinaryOp, Instruction, Phi
from ..ir.values import Value
from .induction import InductionVariable


class IVStepperError(Exception):
    """The requested stepping change cannot be applied."""


class InductionVariableStepper:
    """Rewrites IV start/step values in place."""

    def __init__(self, iv: InductionVariable):
        self.iv = iv
        self.update = self._single_update()

    def _single_update(self) -> BinaryOp:
        updates = [
            u for u in self.iv.update_instructions() if isinstance(u, BinaryOp)
        ]
        if len(updates) != 1:
            raise IVStepperError(
                f"IV {self.iv.phi.ref()} has {len(updates)} update instructions; "
                "only single-update IVs can be re-stepped"
            )
        update = updates[0]
        if update.opcode not in ("add", "sub"):
            raise IVStepperError(f"IV update {update} is not an add/sub")
        return update

    # -- queries --------------------------------------------------------------------
    def current_step_operand_index(self) -> int:
        """Which operand of the update instruction is the step amount."""
        if self.update.lhs is self.iv.phi:
            return 1
        if self.update.rhs is self.iv.phi:
            return 0
        # The update may chain through other SCC members; the non-SCC
        # operand is the step.
        scc = self.iv.scc
        if scc is not None:
            if isinstance(self.update.lhs, Instruction) and scc.contains(self.update.lhs):
                return 1
            if isinstance(self.update.rhs, Instruction) and scc.contains(self.update.rhs):
                return 0
        raise IVStepperError(f"cannot locate the step operand of {self.update}")

    # -- rewrites --------------------------------------------------------------------
    def set_step(self, new_step: Value) -> None:
        """Replace the per-iteration step with ``new_step``.

        ``new_step`` must be loop-invariant (available at the pre-header).
        """
        self.update.set_operand(self.current_step_operand_index(), new_step)

    def set_start(self, new_start: Value) -> None:
        """Replace the IV's entry value with ``new_start``."""
        phi = self.iv.phi
        for index in range(1, len(phi.operands), 2):
            pred = phi.operands[index]
            if not self.iv.loop.contains_block(pred):
                phi.set_operand(index - 1, new_start)
                return
        raise IVStepperError(f"IV {phi.ref()} has no entry edge")

    def reverse_step(self, builder: ir.IRBuilder) -> None:
        """Negate the step (loop rotation's direction reversal)."""
        index = self.current_step_operand_index()
        old_step = self.update.operands[index]
        if isinstance(old_step, ir.ConstantInt):
            negated: Value = ir.ConstantInt(old_step.type, -old_step.value)
        else:
            negated = builder.sub(
                ir.ConstantInt(old_step.type, 0), old_step, "step.neg"
            )
        self.update.set_operand(index, negated)

    def chunk_for_core(
        self,
        builder: ir.IRBuilder,
        core_id: Value,
        num_cores: Value,
    ) -> None:
        """Apply round-robin chunking: core c runs iterations c, c+N, c+2N...

        ``builder`` must be positioned in the pre-header (or wherever the
        new start/step computation should live).  The original step is
        multiplied by ``num_cores`` and the start offset by
        ``core_id * step``.
        """
        index = self.current_step_operand_index()
        old_step = self.update.operands[index]
        scaled = builder.mul(old_step, num_cores, "step.chunked")
        offset = builder.mul(old_step, core_id, "start.offset")
        phi = self.iv.phi
        entry_value = None
        for value, pred in phi.incoming():
            if not self.iv.loop.contains_block(pred):
                entry_value = value
        if entry_value is None:
            raise IVStepperError(f"IV {phi.ref()} has no entry edge")
        new_start = builder.add(entry_value, offset, "start.chunked")
        self.set_start(new_start)
        self.set_step(scaled)
