"""The canonical loop abstraction (Table 1, "L").

``Loop`` bundles the loop structure (LS) with the loop's dependence graph
(computed from the PDG), its aSCCDAG, its invariants (INV), its induction
variables (IV), and its reduction descriptors (RD) — each computed lazily,
preserving NOELLE's demand-driven promise even inside one loop object.
"""

from __future__ import annotations

from ..analysis.loopinfo import NaturalLoop
from ..perf import STATS
from .induction import InductionVariableManager
from .invariants import InvariantManager
from .loopstructure import LoopStructure
from .pdg import PDG, LoopDG
from .sccdag import SCCDAG


class Loop:
    """One loop with every loop-centric abstraction attached."""

    def __init__(self, natural_loop: NaturalLoop, pdg: PDG, loop_id: int = -1):
        self.structure = LoopStructure(natural_loop, loop_id)
        self.pdg = pdg
        self._natural = natural_loop
        self._ldg: LoopDG | None = None
        self._sccdag: SCCDAG | None = None
        self._invariants: InvariantManager | None = None
        self._ivs: InductionVariableManager | None = None

    # -- demand-driven sub-abstractions ---------------------------------------------
    @property
    def dependence_graph(self) -> LoopDG:
        if self._ldg is None:
            with STATS.timer("loop.build_ldg"):
                self._ldg = self.pdg.loop_dependence_graph(self._natural)
        return self._ldg

    @property
    def sccdag(self) -> SCCDAG:
        if self._sccdag is None:
            self._sccdag = SCCDAG(self.dependence_graph, self._natural)
        return self._sccdag

    @property
    def invariants(self) -> InvariantManager:
        if self._invariants is None:
            self._invariants = InvariantManager(self._natural, self.pdg)
        return self._invariants

    @property
    def induction_variables(self) -> InductionVariableManager:
        if self._ivs is None:
            self._ivs = InductionVariableManager(self._natural, self.sccdag)
        return self._ivs

    @property
    def natural_loop(self) -> NaturalLoop:
        return self._natural

    # -- convenience queries ------------------------------------------------------------
    def governing_iv(self):
        return self.induction_variables.governing_iv()

    def reductions(self):
        """Reduction descriptors of all reducible SCCs."""
        return [
            scc.reduction for scc in self.sccdag.sccs if scc.reduction is not None
        ]

    def live_ins(self):
        return self.dependence_graph.live_in_values()

    def live_outs(self):
        return self.dependence_graph.live_out_values()

    def is_doall(self) -> bool:
        """No sequential SCC and no carried control hazard: DOALL-able."""
        for scc in self.sccdag.sccs:
            if scc.is_sequential():
                return False
        return True

    def invalidate(self) -> None:
        """Drop cached sub-abstractions after the loop body was transformed."""
        self._ldg = None
        self._sccdag = None
        self._invariants = None
        self._ivs = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop header=%{self.structure.header.name}>"
