"""The loop builder abstraction (Table 1, "LB").

LB is to loops what ``IRBuilder`` is to instructions: the mechanism layer
for creating, modifying, and deleting loops.  It provides:

* canonicalization — pre-header creation, dedicated exits;
* hoisting — moving an instruction to the pre-header (LICM's mechanism);
* region cloning — copying a loop body into another function with value
  remapping (how the parallelizers build task bodies);
* loop splitting — dividing an iteration space into sub-loops, and
  first-iteration peeling built on it;
* shape conversion — both directions: while→do-while (rotation behind an
  entry guard) and do-while→while (peel one body copy, then move the test
  into a fresh pre-iteration header).
"""

from __future__ import annotations

from ..analysis.cfg import split_edge
from ..analysis.loopinfo import LoopInfo, NaturalLoop
from .. import ir
from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CmpInst,
    CondBranch,
    ElemPtr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    TerminatorInst,
    Unreachable,
)
from ..ir.module import BasicBlock, Function
from ..ir.values import Value


class LoopBuilder:
    """Loop-level transformation mechanisms for one function."""

    def __init__(self, fn: Function):
        self.fn = fn

    # -- canonicalization -----------------------------------------------------------
    def ensure_pre_header(self, loop: NaturalLoop) -> BasicBlock:
        """Guarantee a unique out-of-loop predecessor of the header."""
        entries = loop.entries()
        if len(entries) == 1 and len(entries[0].successors()) == 1:
            return entries[0]
        if len(entries) == 1:
            return split_edge(entries[0], loop.header)
        # Multiple entries: funnel them through a fresh block.
        pre = self.fn.add_block(f"{loop.header.name}.preheader")
        for phi in loop.header.phis():
            funnel = Phi(phi.type, f"{phi.name}.pre")
            funnel.parent = pre
            pre.instructions.insert(0, funnel)
            self.fn.assign_name(funnel)
            for value, pred in list(phi.incoming()):
                if not loop.contains_block(pred):
                    funnel.add_incoming(value, pred)
                    phi.remove_incoming(pred)
            phi.add_incoming(funnel, pre)
        pre.append(Branch(loop.header))
        for entry in entries:
            term = entry.terminator
            assert term is not None
            term.replace_successor(loop.header, pre)
        return pre

    def ensure_dedicated_exits(self, loop: NaturalLoop) -> list[BasicBlock]:
        """Make every exit block reachable only from inside the loop."""
        result = []
        for exit_block in loop.exit_blocks():
            outside_preds = [
                p for p in exit_block.predecessors() if not loop.contains_block(p)
            ]
            if outside_preds:
                for exiting in exit_block.predecessors():
                    if loop.contains_block(exiting):
                        result.append(split_edge(exiting, exit_block))
            else:
                result.append(exit_block)
        return result

    # -- hoisting ----------------------------------------------------------------------
    def hoist_to_pre_header(self, loop: NaturalLoop, inst: Instruction) -> None:
        """Move ``inst`` to the loop pre-header (used by LICM)."""
        pre = self.ensure_pre_header(loop)
        inst.move_to_end(pre)

    # -- cloning ------------------------------------------------------------------------
    def clone_blocks_into(
        self,
        target_fn: Function,
        blocks: list[BasicBlock],
        value_map: dict[int, Value],
        suffix: str = "clone",
    ) -> dict[int, BasicBlock]:
        """Clone ``blocks`` into ``target_fn``, rewriting operands.

        ``value_map`` maps id(original value) -> replacement; it is extended
        with every cloned instruction and block.  Operands with no mapping
        are kept as-is (constants, globals, and intentional live-ins).
        Returns the block mapping.
        """
        block_map: dict[int, BasicBlock] = {}
        for block in blocks:
            clone = target_fn.add_block(f"{block.name}.{suffix}")
            block_map[id(block)] = clone
            value_map[id(block)] = clone
        phis_to_fix: list[tuple[Phi, Phi]] = []
        for block in blocks:
            clone_block = block_map[id(block)]
            for inst in block.instructions:
                clone = self._clone_instruction(inst, value_map)
                clone_block.append(clone)
                value_map[id(inst)] = clone
                if isinstance(inst, Phi):
                    phis_to_fix.append((inst, clone))
        # Phi incoming values may be defined later in the region: wire them
        # after all clones exist.
        for original, clone in phis_to_fix:
            for value, pred in original.incoming():
                mapped_pred = value_map.get(id(pred))
                if not isinstance(mapped_pred, BasicBlock):
                    continue  # edge from outside the cloned region
                mapped_value = value_map.get(id(value), value)
                clone.add_incoming(mapped_value, mapped_pred)
        # Rewire operand references that were cloned after their users.
        for block in blocks:
            clone_block = block_map[id(block)]
            for inst in clone_block.instructions:
                if isinstance(inst, Phi):
                    continue
                for index, operand in enumerate(inst.operands):
                    mapped = value_map.get(id(operand))
                    if mapped is not None and mapped is not operand:
                        inst.set_operand(index, mapped)
        return block_map

    def _clone_instruction(
        self, inst: Instruction, value_map: dict[int, Value]
    ) -> Instruction:
        def m(value: Value) -> Value:
            return value_map.get(id(value), value)

        if isinstance(inst, BinaryOp):
            clone = BinaryOp(inst.opcode, m(inst.lhs), m(inst.rhs), inst.name)
        elif isinstance(inst, ICmp):
            clone = ICmp(inst.predicate, m(inst.lhs), m(inst.rhs), inst.name)
        elif isinstance(inst, FCmp):
            clone = FCmp(inst.predicate, m(inst.lhs), m(inst.rhs), inst.name)
        elif isinstance(inst, Alloca):
            clone = Alloca(inst.allocated_type, inst.name)
        elif isinstance(inst, Load):
            clone = Load(m(inst.pointer), inst.name)
        elif isinstance(inst, Store):
            clone = Store(m(inst.value), m(inst.pointer))
        elif isinstance(inst, ElemPtr):
            clone = ElemPtr(m(inst.base), [m(i) for i in inst.indices], inst.name)
        elif isinstance(inst, Call):
            clone = Call(m(inst.callee), [m(a) for a in inst.args], inst.name)
        elif isinstance(inst, Phi):
            clone = Phi(inst.type, inst.name)  # incoming wired by caller
        elif isinstance(inst, Select):
            clone = Select(
                m(inst.condition), m(inst.true_value), m(inst.false_value), inst.name
            )
        elif isinstance(inst, Cast):
            clone = Cast(inst.opcode, m(inst.value), inst.type, inst.name)
        elif isinstance(inst, Branch):
            clone = Branch(m(inst.target))
        elif isinstance(inst, CondBranch):
            clone = CondBranch(
                m(inst.condition), m(inst.true_block), m(inst.false_block)
            )
        elif isinstance(inst, Switch):
            clone = Switch(
                m(inst.value),
                m(inst.default),
                [(c, m(b)) for c, b in inst.cases()],
            )
        elif isinstance(inst, Ret):
            clone = Ret(m(inst.value) if inst.value is not None else None)
        elif isinstance(inst, Unreachable):
            clone = Unreachable()
        else:  # pragma: no cover - all instruction kinds covered above
            raise TypeError(f"cannot clone {inst!r}")
        clone.metadata = dict(inst.metadata)
        return clone

    # -- splitting -----------------------------------------------------------------------
    def split_loop(self, loop: NaturalLoop, governing_iv, split_point: Value):
        """Split the iteration space of ``loop`` at ``split_point``.

        Produces a first loop running iterations with IV < split_point and a
        second loop (the original) running the rest.  Requires a governing
        IV with an entry edge through a pre-header.  Returns the new loop's
        header block.
        """
        pre = self.ensure_pre_header(loop)
        value_map: dict[int, Value] = {}
        block_map = self.clone_blocks_into(self.fn, loop.blocks, value_map, "split")
        first_header = block_map[id(loop.header)]
        # The clone's exit edges all go to the original pre-header target;
        # retarget them to a staging block that then enters the second loop.
        stage = self.fn.add_block(f"{loop.header.name}.stage")
        for block in loop.blocks:
            clone = block_map[id(block)]
            term = clone.terminator
            assert term is not None
            for succ in term.successors():
                if id(succ) not in {id(b) for b in block_map.values()}:
                    term.replace_successor(succ, stage)
        stage.append(Branch(loop.header))
        # First loop exits when IV reaches split_point instead of its bound.
        cloned_cmp = value_map.get(id(governing_iv.exit_compare))
        if isinstance(cloned_cmp, CmpInst):
            iv_side = 0 if _produced_by(cloned_cmp.lhs, value_map, governing_iv) else 1
            cloned_cmp.set_operand(1 - iv_side, split_point)
        # The pre-header now enters the first loop.
        pre_term = pre.terminator
        assert pre_term is not None
        pre_term.replace_successor(loop.header, first_header)
        # First-loop phis start from the original entry values; the original
        # loop's phis must now start from the first loop's final values.
        for phi in list(loop.header.phis()):
            cloned_phi = value_map[id(phi)]
            assert isinstance(cloned_phi, Phi)
            entry_value = None
            for value, inc_pred in list(phi.incoming()):
                if not loop.contains_block(inc_pred):
                    entry_value = value
                    phi.remove_incoming(inc_pred)
            assert entry_value is not None
            # Wire the entry edge of the cloned loop.
            cloned_phi.add_incoming(entry_value, pre)
            # The second loop starts where the first stopped.
            phi.add_incoming(cloned_phi, stage)
        return first_header

    # -- shape conversion ----------------------------------------------------------------
    def while_to_do_while(self, loop: NaturalLoop) -> BasicBlock | None:
        """Rotate a canonical while-shaped loop into do-while form.

        The loop must have a single latch, exit only through the header, and
        a header containing just phis, side-effect-free computation feeding
        the exit test, and the test itself (with no other in-loop users).
        The rotation installs an entry guard in the pre-header, moves the
        phis into the first body block (the new header), re-tests in the
        latch, and deletes the old header.  Returns the guard block, or
        None when the loop does not match.
        """
        header = loop.header
        term = header.terminator
        if not isinstance(term, CondBranch):
            return None
        latches = loop.latches()
        if len(latches) != 1 or latches[0] is header:
            return None
        latch = latches[0]
        in_body = (
            term.true_block if loop.contains_block(term.true_block) else term.false_block
        )
        exit_block = (
            term.false_block if loop.contains_block(term.true_block) else term.true_block
        )
        exits_on_true = term.true_block is exit_block
        if loop.contains_block(exit_block) or in_body is exit_block:
            return None
        if len(in_body.predecessors()) != 1:
            return None  # the body head must be private to the header
        for block in loop.blocks:
            if block is not header and any(
                not loop.contains_block(s) for s in block.successors()
            ):
                return None  # extra exits: leave the loop alone
        phis = list(header.phis())
        computations = [
            i for i in header.instructions if not isinstance(i, Phi) and i is not term
        ]
        for inst in computations:
            if inst.may_write_memory() or isinstance(inst, Call):
                return None
            for user in inst.users():
                if isinstance(user, Instruction) and user.parent is not header:
                    return None  # computation escapes the header
        live_out_phis = [
            p
            for p in phis
            if any(
                isinstance(u, Instruction) and not loop.contains(u)
                for u in p.users()
            )
        ]
        pre = self.ensure_pre_header(loop)
        if len(exit_block.predecessors()) != 1:
            exit_block = split_edge(header, exit_block)
            term = header.terminator  # split_edge rewired the branch

        entry_map: dict[int, Value] = {}
        latch_map: dict[int, Value] = {}
        for phi in phis:
            entry_map[id(phi)] = phi.incoming_value_for(pre)
            latch_map[id(phi)] = phi.incoming_value_for(latch)

        # Guard in the pre-header: recompute the test with entry values.
        pre.terminator.erase_from_parent()
        for inst in computations:
            clone = self._clone_instruction(inst, entry_map)
            pre.append(clone)
            entry_map[id(inst)] = clone
        guard_cond = entry_map.get(id(term.condition), term.condition)
        if exits_on_true:
            pre.append(CondBranch(guard_cond, exit_block, in_body))
        else:
            pre.append(CondBranch(guard_cond, in_body, exit_block))

        # Re-test in the latch with the next-iteration values.
        latch.terminator.erase_from_parent()
        for inst in computations:
            clone = self._clone_instruction(inst, latch_map)
            latch.append(clone)
            latch_map[id(inst)] = clone
        latch_cond = latch_map.get(id(term.condition), term.condition)
        if exits_on_true:
            latch.append(CondBranch(latch_cond, exit_block, in_body))
        else:
            latch.append(CondBranch(latch_cond, in_body, exit_block))

        # Move the phis into the new header (the body head).
        for phi in reversed(phis):
            entry_value = entry_map[id(phi)]
            latch_value = latch_map[id(phi)]
            phi.drop_all_operands()
            header.instructions.remove(phi)
            phi.parent = in_body
            in_body.instructions.insert(0, phi)
            phi.add_incoming(entry_value, pre)
            phi.add_incoming(latch_value, latch)

        # Pre-existing exit phis fed by the header: split their header edge
        # into the two new edges (guard and latch), mapping the values.
        for exit_phi in exit_block.phis():
            for value, pred in list(exit_phi.incoming()):
                if pred is header:
                    exit_phi.remove_incoming(header)
                    exit_phi.add_incoming(entry_map.get(id(value), value), pre)
                    exit_phi.add_incoming(latch_map.get(id(value), value), latch)

        # Values observed after the loop: merge guard/latch views at the exit.
        for phi in live_out_phis:
            exit_phi = Phi(phi.type, f"{phi.name}.lcssa")
            exit_phi.parent = exit_block
            exit_block.instructions.insert(0, exit_phi)
            self.fn.assign_name(exit_phi)
            for user in list(phi.users()):
                if isinstance(user, Instruction) and not loop.contains(user):
                    if user is exit_phi:
                        continue
                    for index, operand in enumerate(user.operands):
                        if operand is phi:
                            user.set_operand(index, exit_phi)
            exit_phi.add_incoming(entry_map[id(phi)], pre)
            exit_phi.add_incoming(latch_map[id(phi)], latch)

        # Delete the old header.
        header.erase()
        return pre

    def peel_first_iteration(self, loop: NaturalLoop, governing_iv) -> BasicBlock:
        """Peel one iteration off the front of a counted loop.

        Implemented as an iteration-space split at ``start + step`` (the
        governing IV must have a constant start and step): the first
        sub-loop runs exactly one iteration; the original loop continues
        from the second.  Returns the peeled copy's header.
        """
        from ..ir.values import ConstantInt

        start = governing_iv.start
        step = governing_iv.constant_step()
        if not isinstance(start, ConstantInt) or step is None:
            raise ValueError("peeling needs a constant start and step")
        split_point = ir.ConstantInt(start.type, start.value + step)
        return self.split_loop(loop, governing_iv, split_point)

    def do_while_to_while(self, loop: NaturalLoop) -> BasicBlock | None:
        """Translate a canonical do-while loop into while form.

        ``do { B } while (c)`` becomes ``B; while (c) { B }``: one peeled
        body copy runs unconditionally (preserving the at-least-once
        semantics), then the test moves into a fresh header evaluated
        *before* each remaining iteration.  Requirements mirror
        :meth:`while_to_do_while`: a single latch that is the only exiting
        block, with its test computation local to the latch.  Returns the
        new header, or None when the loop does not match.
        """
        latches = loop.latches()
        if len(latches) != 1:
            return None
        latch = latches[0]
        exiting = loop.exiting_blocks()
        if len(exiting) != 1 or exiting[0] is not latch:
            return None  # not do-while shaped
        term = latch.terminator
        if not isinstance(term, CondBranch):
            return None
        header = loop.header
        in_loop = (
            term.true_block
            if loop.contains_block(term.true_block)
            else term.false_block
        )
        exit_block = (
            term.false_block
            if loop.contains_block(term.true_block)
            else term.true_block
        )
        if in_loop is not header or loop.contains_block(exit_block):
            return None
        condition = term.condition
        if (
            isinstance(condition, Instruction)
            and loop.contains(condition)
            and condition.parent is not latch
        ):
            return None  # condition computed across blocks: unsupported
        phis = list(header.phis())
        computations = [
            i
            for i in latch.instructions
            if not isinstance(i, (Phi, TerminatorInst))
            and any(
                isinstance(u, Instruction) and (u is term or u.parent is latch)
                for u in i.users()
            )
        ]
        # Every latch computation feeding the test must be latch-local and
        # free of side effects (it will be re-evaluated in the new header).
        needed: set[int] = set()
        worklist: list[Instruction] = [term.condition] if isinstance(
            term.condition, Instruction
        ) else []
        while worklist:
            inst = worklist.pop()
            if id(inst) in needed or inst.parent is not latch:
                continue
            needed.add(id(inst))
            for operand in inst.operands:
                if isinstance(operand, Instruction):
                    worklist.append(operand)
        latch_values = {
            id(phi.incoming_value_for(latch)) for phi in phis
        }
        # Chain instructions that ARE a phi's latch value need no
        # re-evaluation: at the new header they are the moved phis.
        condition_chain = [
            i
            for i in latch.instructions
            if id(i) in needed
            and not isinstance(i, Phi)
            and id(i) not in latch_values
        ]
        chain_ids = {id(i) for i in condition_chain}
        # Every value the condition needs must be re-expressible at the new
        # header: a chain member, a header phi, or a phi's latch value.  A
        # control-merging phi in the latch (e.g. a short-circuit result)
        # cannot be re-evaluated.
        header_phi_ids = {id(p) for p in header.phis()}
        for inst in latch.instructions:
            if id(inst) not in needed:
                continue
            if id(inst) in chain_ids or id(inst) in latch_values:
                continue
            if isinstance(inst, Phi) and id(inst) in header_phi_ids:
                continue
            return None
        for inst in condition_chain:
            if inst.may_write_memory() or inst.may_read_memory():
                return None  # re-evaluation could change behaviour
            # The re-evaluated chain may only consume values available in
            # the new header: other chain members, the phis' latch values
            # (which become the moved phis), or values from outside the
            # loop.
            for operand in inst.operands:
                if not isinstance(operand, Instruction):
                    continue
                if id(operand) in chain_ids or id(operand) in latch_values:
                    continue
                if not loop.contains(operand):
                    continue
                if isinstance(operand, Phi) and operand.parent is header:
                    continue  # header phis become the moved phis
                return None

        # Live-outs must be expressible at the exits after restructuring:
        # header phis, phi latch values, or condition-chain values.
        latch_value_ids = {
            id(phi.incoming_value_for(latch)) for phi in phis
        }
        phi_ids = {id(p) for p in phis}
        for inst in loop.instructions():
            for user in inst.users():
                if isinstance(user, Instruction) and not loop.contains(user):
                    if (
                        id(inst) not in phi_ids
                        and id(inst) not in latch_value_ids
                        and id(inst) not in chain_ids
                    ):
                        return None  # unsupported live-out shape

        pre = self.ensure_pre_header(loop)
        if len(exit_block.predecessors()) != 1:
            exit_block = split_edge(latch, exit_block)
            term = latch.terminator
        live_outs: list[Instruction] = []
        seen_live: set[int] = set()
        for inst in loop.instructions():
            for user in inst.users():
                if isinstance(user, Instruction) and not loop.contains(user):
                    if id(inst) not in seen_live:
                        seen_live.add(id(inst))
                        live_outs.append(inst)
                    break

        # 1. Peel: clone the whole body once, entered from the pre-header.
        entry_values = {
            id(phi): phi.incoming_value_for(pre) for phi in phis
        }
        value_map: dict[int, Value] = {}
        block_map = self.clone_blocks_into(self.fn, loop.blocks, value_map, "peel")
        peeled_header = block_map[id(header)]
        pre.terminator.erase_from_parent()
        pre.append(Branch(peeled_header))
        # Peeled phis collapse to their single (entry) value.
        for phi in phis:
            clone = value_map[id(phi)]
            if isinstance(clone, Phi):
                clone.replace_all_uses_with(entry_values[id(phi)])
                clone.erase_from_parent()

        # 2. New header: phis + re-evaluated test before each iteration.
        # The peeled latch's back edge is the new header's entry edge.
        peeled_latch = block_map[id(latch)]
        peeled_term = peeled_latch.terminator
        peeled_term.replace_successor(block_map[id(header)], new_header_ref := (
            self.fn.add_block(f"{header.name}.while")
        ))
        new_header = new_header_ref
        latch_map: dict[int, Value] = {}
        for phi in phis:
            latch_value = phi.incoming_value_for(latch)
            entry_value = value_map.get(id(latch_value), latch_value)
            moved = Phi(phi.type, f"{phi.name}.w")
            moved.parent = new_header
            new_header.instructions.append(moved)
            self.fn.assign_name(moved)
            latch_map[id(phi)] = latch_value
            phi.replace_all_uses_with(moved)
            phi.erase_from_parent()
            moved.add_incoming(entry_value, peeled_latch)
            moved.add_incoming(latch_value, latch)
        # 3. Test in the new header over the phi values.
        test_map: dict[int, Value] = {}
        moved_of: dict[int, Phi] = {}
        for phi, moved in zip(phis, list(new_header.phis())):
            test_map[id(latch_map[id(phi)])] = moved
            test_map[id(phi)] = moved  # direct phi uses in the chain
            moved_of[id(phi)] = moved
        for inst in condition_chain:
            clone = self._clone_instruction(inst, test_map)
            new_header.append(clone)
            test_map[id(inst)] = clone
        condition = test_map.get(id(term.condition), term.condition)
        exits_on_true = term.true_block is exit_block
        if exits_on_true:
            new_header.append(CondBranch(condition, exit_block, header))
        else:
            new_header.append(CondBranch(condition, header, exit_block))
        # 4. The latch now jumps unconditionally to the new header.
        term.erase_from_parent()
        latch.append(Branch(new_header))
        # 5. Pre-existing exit phis: edges now come from the new header and
        # the peeled latch instead of the original latch.
        for phi in exit_block.phis():
            for value, pred in list(phi.incoming()):
                if pred is latch:
                    phi.remove_incoming(latch)
                    phi.add_incoming(test_map.get(id(value), value), new_header)
                    phi.add_incoming(value_map.get(id(value), value), peeled_latch)
        # 6. Live-outs: at the exit, a loop value is reachable through two
        # paths — the peel (its clone) or the new header (its moved-phi /
        # re-evaluated-chain equivalent).  Merge them with exit phis.
        transform_block_ids = {id(new_header)}
        transform_block_ids.update(id(b) for b in block_map.values())
        for inst in live_outs:
            at_new_header = test_map.get(id(inst))
            if at_new_header is None and isinstance(inst, Phi):
                continue  # original phis were fully replaced already
            if at_new_header is None:
                continue
            at_peel = value_map.get(id(inst), inst)
            exit_phi = Phi(inst.type, f"{inst.name}.out")
            exit_phi.parent = exit_block
            exit_block.instructions.insert(0, exit_phi)
            self.fn.assign_name(exit_phi)
            for user in list(inst.users()):
                if not isinstance(user, Instruction) or user is exit_phi:
                    continue
                if loop.contains(user):
                    continue
                if user.parent is not None and id(user.parent) in (
                    transform_block_ids
                ):
                    continue  # the new header / peel are loop machinery
                for index, operand in enumerate(user.operands):
                    if operand is inst:
                        user.set_operand(index, exit_phi)
            exit_phi.add_incoming(at_new_header, new_header)
            exit_phi.add_incoming(at_peel, peeled_latch)
        ir.verify_function(self.fn)
        return new_header


def _produced_by(value: Value, value_map: dict[int, Value], iv) -> bool:
    """Is ``value`` the clone of the IV's SCC output feeding the compare?"""
    candidates = {id(value_map.get(id(iv.phi), iv.phi))}
    for inst in iv.update_instructions():
        candidates.add(id(value_map.get(id(inst), inst)))
    return id(value) in candidates
