"""The loop structure abstraction (Table 1, "LS").

Equivalent to LLVM's loop abstraction, but — as the paper stresses — with
user-controlled lifetime: LLVM's loop info is owned by a function pass and
silently freed when the pass moves on, which breaks module passes that
cache it.  These objects are plain Python values owned by their creator.
"""

from __future__ import annotations

from ..analysis.loopinfo import NaturalLoop
from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, Function


class LoopStructure:
    """Structural queries over one natural loop."""

    def __init__(self, loop: NaturalLoop, loop_id: int = -1):
        self._loop = loop
        #: Deterministic ID assigned by the metadata layer (IDs abstraction).
        self.loop_id = loop_id
        #: Extendible metadata attached to the loop (hotness, options, ...).
        self.metadata: dict[str, object] = {}

    # -- structure ------------------------------------------------------------------
    @property
    def header(self) -> BasicBlock:
        return self._loop.header

    @property
    def function(self) -> Function:
        assert self._loop.header.parent is not None
        return self._loop.header.parent

    def basic_blocks(self) -> list[BasicBlock]:
        return list(self._loop.blocks)

    def num_blocks(self) -> int:
        return len(self._loop.blocks)

    def instructions(self):
        return self._loop.instructions()

    def num_instructions(self) -> int:
        return self._loop.num_instructions()

    def latches(self) -> list[BasicBlock]:
        return self._loop.latches()

    def pre_header(self) -> BasicBlock | None:
        """The unique out-of-loop predecessor of the header, if it exists.

        Creating one when missing is the loop builder's job
        (:meth:`repro.core.loopbuilder.LoopBuilder.ensure_pre_header`).
        """
        entries = self._loop.entries()
        if len(entries) == 1 and len(entries[0].successors()) == 1:
            return entries[0]
        return None

    def exiting_blocks(self) -> list[BasicBlock]:
        return self._loop.exiting_blocks()

    def exit_blocks(self) -> list[BasicBlock]:
        return self._loop.exit_blocks()

    def contains(self, inst: Instruction) -> bool:
        return self._loop.contains(inst)

    def contains_block(self, block: BasicBlock) -> bool:
        return self._loop.contains_block(block)

    def depth(self) -> int:
        return self._loop.depth()

    @property
    def natural_loop(self) -> NaturalLoop:
        """Escape hatch to the underlying CFG-level loop."""
        return self._loop

    # -- shape ---------------------------------------------------------------------
    def is_do_while_shaped(self) -> bool:
        """True when the loop's exit condition sits in a latch.

        LLVM's induction-variable machinery expects this shape; most
        source-level ``while``/``for`` loops are *not* shaped this way,
        which is why LLVM finds so few governing IVs (Section 4.3).
        """
        latch_ids = {id(b) for b in self.latches()}
        exiting = self.exiting_blocks()
        return bool(exiting) and all(id(b) in latch_ids for b in exiting)

    def is_while_shaped(self) -> bool:
        """True when the header itself decides whether to run an iteration."""
        return any(
            not self.contains_block(s) for s in self.header.successors()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LoopStructure header=%{self.header.name} "
            f"blocks={self.num_blocks()} depth={self.depth()}>"
        )
