"""Deterministic IDs and extendible metadata (Section 2.2, "Others").

NOELLE attaches deterministic IDs to instructions, basic blocks, loops, and
functions so abstractions can be serialized into IR metadata (the
``noelle-meta-*`` tools) and reconstructed later without re-running
expensive analyses.  IDs are assigned in a canonical traversal order, so
the same module always gets the same IDs.
"""

from __future__ import annotations

from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, Function, Module

INSTRUCTION_ID_KEY = "noelle.id"
FUNCTION_ID_KEY = "noelle.function.id"


class IDAssigner:
    """Assigns and resolves deterministic IDs for one module."""

    def __init__(self, module: Module):
        self.module = module
        self.instruction_ids: dict[int, int] = {}
        self.block_ids: dict[int, int] = {}
        self.function_ids: dict[int, int] = {}
        self._instruction_by_id: dict[int, Instruction] = {}
        self._assign()

    def _assign(self) -> None:
        next_inst = 0
        next_block = 0
        for fn_index, fn in enumerate(sorted(self.module.functions.values(),
                                             key=lambda f: f.name)):
            self.function_ids[id(fn)] = fn_index
            fn.metadata[FUNCTION_ID_KEY] = fn_index
            for block in fn.blocks:
                self.block_ids[id(block)] = next_block
                next_block += 1
                for inst in block.instructions:
                    self.instruction_ids[id(inst)] = next_inst
                    inst.metadata[INSTRUCTION_ID_KEY] = next_inst
                    self._instruction_by_id[next_inst] = inst
                    next_inst += 1

    # -- queries -----------------------------------------------------------------
    def id_of_instruction(self, inst: Instruction) -> int:
        return self.instruction_ids[id(inst)]

    def id_of_block(self, block: BasicBlock) -> int:
        return self.block_ids[id(block)]

    def id_of_function(self, fn: Function) -> int:
        return self.function_ids[id(fn)]

    def instruction_by_id(self, ident: int) -> Instruction:
        return self._instruction_by_id[ident]


def clean_noelle_metadata(module: Module) -> int:
    """Strip all ``noelle.*`` metadata (the ``noelle-meta-clean`` tool).

    Returns how many metadata entries were removed.
    """
    removed = 0
    for key in [k for k in module.metadata if str(k).startswith("noelle.")]:
        del module.metadata[key]
        removed += 1
    for fn in module.functions.values():
        for key in [k for k in fn.metadata if str(k).startswith("noelle.")]:
            del fn.metadata[key]
            removed += 1
        for inst in fn.instructions():
            for key in [k for k in inst.metadata if str(k).startswith("noelle.")]:
                del inst.metadata[key]
                removed += 1
    return removed
