"""The NOELLE facade: demand-driven access to every abstraction.

``Noelle`` is what a custom tool receives from ``noelle-load``: one object
giving access to the PDG, the call graph, loops, the data-flow engine, the
scheduler, environments, tasks, profiles, and the architecture description.
Every abstraction is computed lazily and cached — users "only pay for the
abstractions they need" (Section 2.2) — and the expensive PDG can be
rehydrated from metadata embedded by ``noelle-meta-pdg-embed`` instead of
recomputed.
"""

from __future__ import annotations

from ..analysis.aa import AliasAnalysis, BasicAliasAnalysis
from ..analysis.dominators import DominatorTree, PostDominatorTree
from ..analysis.loopinfo import LoopInfo, NaturalLoop
from ..analysis.pointsto import AndersenAliasAnalysis, PointsToAnalysis
from ..interp.engine import invalidate_module
from ..ir.module import Function, Module
from .architecture import ArchitectureDescription
from .callgraph import CallGraph
from .dataflow import DataFlowEngine
from .environment import EnvironmentBuilder
from .forest import Forest
from .loop import Loop
from .loopbuilder import LoopBuilder
from .metadata import IDAssigner
from .pdg import PDG
from .profiler import ProfileData, Profiler
from .scheduler import BasicBlockScheduler, LoopScheduler, Scheduler


class Noelle:
    """Demand-driven entry point to the NOELLE abstraction layer."""

    def __init__(
        self,
        module: Module,
        architecture: ArchitectureDescription | None = None,
        profile: ProfileData | None = None,
        minimum_hotness: float = 0.0,
    ):
        self.module = module
        self._architecture = architecture
        self._profile = profile
        #: Loops colder than this are not offered to transformation tools.
        self.minimum_hotness = minimum_hotness
        self._aa: AliasAnalysis | None = None
        self._pdg: PDG | None = None
        self._callgraph: CallGraph | None = None
        self._pointsto: PointsToAnalysis | None = None
        self._loopinfos: dict[int, LoopInfo] = {}
        self._loops: list[Loop] | None = None
        self._ids: IDAssigner | None = None
        self._dfe: DataFlowEngine | None = None
        self._env_builder: EnvironmentBuilder | None = None
        #: Set by ``repro.cache.attach``: links this facade to the
        #: on-disk artifact entry its module was hydrated from.
        self._cache_binding = None

    # -- analyses ----------------------------------------------------------------------
    def alias_analysis(self) -> AliasAnalysis:
        """The strong AA stack powering the PDG (the SCAF/SVF stand-in)."""
        if self._aa is None:
            self._aa = AndersenAliasAnalysis(self.module)
        return self._aa

    def points_to(self) -> PointsToAnalysis:
        if self._pointsto is None:
            aa = self.alias_analysis()
            if isinstance(aa, AndersenAliasAnalysis):
                self._pointsto = aa.pointsto
            else:
                self._pointsto = PointsToAnalysis(self.module)
        return self._pointsto

    def pdg(self) -> PDG:
        """The program dependence graph (computed on first request)."""
        if self._pdg is None:
            self._pdg = PDG(self.module, self.alias_analysis())
        return self._pdg

    def adopt_pdg(self, pdg: PDG) -> None:
        """Install an externally produced PDG (e.g. rehydrated from the
        metadata embedded by ``noelle-meta-pdg-embed``) as the cached one.

        Also drops the caches *derived from* the previous PDG — the loop
        list holds :class:`Loop` objects that capture the PDG they were
        built against — so stale dependence facts cannot leak through a
        swap (the same trap the ``invalidate()`` fix closed for ``_dfe``
        and ``_env_builder``).
        """
        self._pdg = pdg
        self._loops = None
        # An adopted PDG usually accompanies module metadata surgery;
        # compiled code must not outlive whatever produced it.
        invalidate_module(self.module)

    def call_graph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(self.module, self.points_to())
        return self._callgraph

    def dominators(self, fn: Function) -> DominatorTree:
        return DominatorTree(fn)

    def post_dominators(self, fn: Function) -> PostDominatorTree:
        return PostDominatorTree(fn)

    # -- loops --------------------------------------------------------------------------
    def loop_info(self, fn: Function) -> LoopInfo:
        info = self._loopinfos.get(id(fn))
        if info is None:
            info = LoopInfo(fn)
            self._loopinfos[id(fn)] = info
        return info

    def loops(self) -> list[Loop]:
        """Every loop of the program as a canonical :class:`Loop` (hot-first).

        When a profile is attached, loops colder than ``minimum_hotness``
        are filtered out — the paper's "minimum hotness required to
        consider a loop".
        """
        if self._loops is None:
            pdg = self.pdg()
            result: list[Loop] = []
            next_id = 0
            for fn in self.module.defined_functions():
                for natural in self.loop_info(fn).loops():
                    result.append(Loop(natural, pdg, next_id))
                    next_id += 1
            if self._profile is not None:
                result = [
                    loop
                    for loop in result
                    if self._profile.loop_hotness(loop.natural_loop)
                    >= self.minimum_hotness
                ]
                result.sort(
                    key=lambda l: -self._profile.loop_hotness(l.natural_loop)
                )
            self._loops = result
        return self._loops

    def loop_of(self, natural: NaturalLoop) -> Loop:
        return Loop(natural, self.pdg())

    def loop_forest(self, fn: Function) -> Forest[Loop]:
        """The loop-nesting forest of ``fn`` over canonical loops (FR)."""
        forest: Forest[Loop] = Forest()
        pdg = self.pdg()
        by_natural: dict[int, Loop] = {}
        info = self.loop_info(fn)
        for natural in info.loops():  # outermost first
            loop = Loop(natural, pdg)
            by_natural[id(natural)] = loop
            parent = (
                by_natural.get(id(natural.parent)) if natural.parent is not None else None
            )
            forest.add(loop, parent)
        return forest

    def loop_builder(self, fn: Function) -> LoopBuilder:
        return LoopBuilder(fn)

    # -- engines & builders -----------------------------------------------------------
    def dataflow_engine(self) -> DataFlowEngine:
        if self._dfe is None:
            self._dfe = DataFlowEngine()
        return self._dfe

    def environment_builder(self) -> EnvironmentBuilder:
        if self._env_builder is None:
            self._env_builder = EnvironmentBuilder(self.module)
        return self._env_builder

    def scheduler(self, fn: Function) -> Scheduler:
        return Scheduler(fn, self.pdg())

    def basic_block_scheduler(self, fn: Function) -> BasicBlockScheduler:
        return BasicBlockScheduler(fn, self.pdg())

    def loop_scheduler(self, fn: Function) -> LoopScheduler:
        return LoopScheduler(fn, self.pdg())

    # -- checkers -----------------------------------------------------------------------
    def run_checks(self, names: list[str] | None = None):
        """Run the checker suite over the module, reusing this facade's
        cached abstractions; returns the list of diagnostics."""
        from ..checks.base import run_checkers

        return run_checkers(self.module, self, names=names)

    # -- metadata, profiles, architecture ------------------------------------------------
    def ids(self) -> IDAssigner:
        if self._ids is None:
            self._ids = IDAssigner(self.module)
        return self._ids

    def profile(self) -> ProfileData | None:
        return self._profile

    def attach_profile(self, profile: ProfileData) -> None:
        self._profile = profile
        self._loops = None  # hotness ordering changed

    def run_profiler(self, args: list[object] | None = None) -> ProfileData:
        profile = Profiler(self.module).profile(args=args)
        self.attach_profile(profile)
        return profile

    def architecture(self) -> ArchitectureDescription:
        if self._architecture is None:
            self._architecture = ArchitectureDescription.haswell_like()
        return self._architecture

    # -- cache management ---------------------------------------------------------------
    def bind_cache(self, binding) -> None:
        """Attach an artifact-cache binding (see ``repro.cache``).

        Once bound, per-function invalidation also evicts that
        function's on-disk artifacts, and a whole-module invalidation
        severs the binding — a transformed module no longer matches the
        content key its artifacts were published under.
        """
        self._cache_binding = binding

    def invalidate(self, fn: Function | None = None) -> None:
        """Drop cached analyses after the module was transformed.

        With ``fn`` given (the common case for the function-at-a-time
        transforms: LICM, the parallelization outliners, Perspective),
        only the state derived from that function's body is dropped: its
        PDG shard, its loop info, and the module-level aggregates built
        on top of them (the loop list, instruction IDs, the call graph —
        outlining adds functions and calls).  The whole-module memory
        analyses stay warm: Andersen points-to is flow-insensitive, so an
        in-place rewrite of one function can only make its facts
        conservative, never wrong — new values have no points-to
        information and fall back to may-alias, and stale mod/ref
        summaries remain supersets of the rewritten callee's effects.

        With no ``fn`` (the conservative escape hatch, and the only
        option after interprocedural rewrites that change what memory
        *other* functions' code touches), everything is dropped.
        """
        if fn is not None and self._try_invalidate_function(fn):
            # The execution engine's compiled code is per-function state
            # derived from the body: drop exactly that function's code.
            invalidate_module(self.module, fn)
            if self._cache_binding is not None:
                self._cache_binding.invalidate_function(fn)
            return
        invalidate_module(self.module)
        # The module's content no longer matches the cache entry it was
        # loaded from: stop publishing/evicting against that key.
        self._cache_binding = None
        self._aa = None
        self._pdg = None
        self._callgraph = None
        self._pointsto = None
        self._loopinfos = {}
        self._loops = None
        self._ids = None
        self._dfe = None
        self._env_builder = None

    def _try_invalidate_function(self, fn: Function) -> bool:
        """Per-function invalidation; False if a full drop is required."""
        if self._pdg is not None:
            if not self._pdg.can_rebuild_shards():
                # A metadata-rehydrated PDG cannot rebuild a shard (no
                # alias analysis attached): fall back to a full drop.
                return False
            self._pdg.invalidate_function(fn)
        self._loopinfos.pop(id(fn), None)
        self._loops = None
        self._ids = None
        self._callgraph = None
        self._dfe = None
        self._env_builder = None
        return True
