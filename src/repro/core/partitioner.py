"""The SCCDAG partitioner (Section 2.2, "Other abstractions").

Groups the nodes of an aSCCDAG into ordered partitions subject to the
constraints parallelization techniques need:

* **co-location** — SCCs connected by memory dependences must share a
  partition (queues forward registers, not memory);
* **orientation** — partitions respect the DAG's topological order, so
  inter-partition dependences all point forward (DSWP's pipeline);
* **balance** — partitions receive roughly equal cycle weight.

DSWP consumes this directly for its stage assignment; HELIX's
sequential-segment merging is the degenerate one-partition-per-SCC case.
"""

from __future__ import annotations

from ..interp.interp import INSTRUCTION_COSTS
from ..ir.instructions import Instruction
from .sccdag import SCC, SCCDAG


class Partition:
    """One ordered group of SCCs."""

    def __init__(self, index: int):
        self.index = index
        self.sccs: list[SCC] = []

    def instructions(self) -> list[Instruction]:
        result: list[Instruction] = []
        for scc in self.sccs:
            result.extend(scc.instructions)
        return result

    def cost(self) -> int:
        return sum(
            INSTRUCTION_COSTS.get(i.opcode, 1) for i in self.instructions()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Partition {self.index}: {len(self.sccs)} SCCs>"


class SCCDAGPartitioner:
    """Builds constraint-respecting, balanced partitions of an aSCCDAG."""

    def __init__(self, sccdag: SCCDAG, exclude: set[int] | None = None):
        self.sccdag = sccdag
        #: ids of instructions excluded from partitioning (e.g. the control
        #: skeleton a technique replicates everywhere).
        self.exclude = exclude or set()

    # -- constraint groups -----------------------------------------------------------
    def colocated_groups(self) -> list[list[Instruction]]:
        """SCC members merged along memory edges, in topological order."""
        candidates: list[tuple[SCC, list[Instruction]]] = []
        for scc in self.sccdag.sccs:
            members = [
                i for i in scc.instructions if id(i) not in self.exclude
            ]
            if members:
                candidates.append((scc, members))
        parent: dict[int, int] = {id(s): id(s) for s, _ in candidates}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for edge in self.sccdag.edges():
            if not edge.is_memory:
                continue
            a, b = id(edge.src.value), id(edge.dst.value)
            if a in parent and b in parent:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[ra] = rb
        topo = {id(s): k for k, s in enumerate(self.sccdag.topological_order())}
        members_of: dict[int, list[Instruction]] = {}
        rank_of: dict[int, int] = {}
        for scc, members in candidates:
            root = find(id(scc))
            members_of.setdefault(root, []).extend(members)
            rank = topo.get(id(scc), 0)
            rank_of[root] = min(rank_of.get(root, rank), rank)
        ordered = sorted(members_of.items(), key=lambda kv: rank_of[kv[0]])
        return [members for _, members in ordered]

    # -- balanced assignment ------------------------------------------------------------
    def partition(self, max_partitions: int) -> list[list[Instruction]]:
        """Contiguous, load-balanced assignment of groups to partitions."""
        groups = self.colocated_groups()
        count = min(max_partitions, len(groups))
        if count == 0:
            return []
        costs = [
            sum(INSTRUCTION_COSTS.get(i.opcode, 1) for i in group)
            for group in groups
        ]
        target = sum(costs) / count
        partitions: list[list[Instruction]] = [[] for _ in range(count)]
        index = 0
        running = 0
        for group, cost in zip(groups, costs):
            if index < count - 1 and running >= target and partitions[index]:
                index += 1
                running = 0
            partitions[index].extend(group)
            running += cost
        return [p for p in partitions if p]
