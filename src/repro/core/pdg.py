"""The Program Dependence Graph abstraction (Table 1, "PDG").

Instantiates the dependence-graph template with IR instructions.  Edges:

* **register data dependences** — SSA def-use chains (always RAW, must);
* **memory data dependences** — between memory-touching instruction pairs,
  classified RAW/WAW/WAR and must/may by the configured alias analysis
  (the strong Andersen AA by default — the SCAF/SVF stand-in);
* **control dependences** — from the Ferrante–Ottenstein–Warren relation.

From the program PDG a pass can request *function* and *loop* dependence
graphs.  Requesting a loop dependence graph triggers the loop-centric
refinements the paper describes: loop-carried classification of register
and memory dependences (using scalar evolution on the access addresses) and
live-in/live-out computation via internal/external nodes.
"""

from __future__ import annotations

from ..analysis.aa import AliasAnalysis, AliasResult, ModRefResult
from ..analysis.controldep import ControlDependence
from ..analysis.loopinfo import NaturalLoop
from ..analysis.scev import SCEVAddRec, SCEVConstant, SCEVUnknown, ScalarEvolution
from ..ir.instructions import Call, Instruction, Load, Phi, Store
from ..ir.module import Function, Module
from ..ir.values import Value
from .depgraph import DependenceGraph, DGEdge


class PDG(DependenceGraph[Instruction]):
    """Program dependence graph over all instructions of a module."""

    def __init__(self, module: Module, aa: AliasAnalysis):
        super().__init__()
        self.module = module
        self.aa = aa
        #: Statistics used by the Figure 3 experiment: how many memory
        #: instruction pairs were queried and how many were disproved.
        self.memory_queries = 0
        self.memory_disproved = 0
        for fn in module.defined_functions():
            self._build_function(fn)

    # -- construction ------------------------------------------------------------
    def _build_function(self, fn: Function) -> None:
        instructions = list(fn.instructions())
        for inst in instructions:
            self.add_node(inst, internal=True)
        self._add_register_dependences(instructions)
        self._add_memory_dependences(instructions)
        self._add_control_dependences(fn)

    def _add_register_dependences(self, instructions: list[Instruction]) -> None:
        for inst in instructions:
            for operand in inst.operands:
                if isinstance(operand, Instruction) and self.has_node(operand):
                    self.add_edge(
                        operand, inst, "data", "RAW", is_memory=False, is_must=True
                    )

    def _add_memory_dependences(self, instructions: list[Instruction]) -> None:
        memory_insts = [i for i in instructions if i.touches_memory()]
        for i, earlier in enumerate(memory_insts):
            for later in memory_insts[i + 1 :]:
                self._memory_pair(earlier, later)

    def _memory_pair(self, a: Instruction, b: Instruction) -> None:
        """Add memory dependence edges between an instruction pair.

        The pair is unordered in program terms (they may execute in either
        order across loop iterations), so both directions are considered.
        """
        writes_a, writes_b = a.may_write_memory(), b.may_write_memory()
        reads_a, reads_b = a.may_read_memory(), b.may_read_memory()
        if not writes_a and not writes_b:
            return  # read-read pairs carry no dependence
        self.memory_queries += 1
        result = self._query(a, b)
        if result is None:
            self.memory_disproved += 1
            return
        is_must = result
        if writes_a and reads_b:
            self.add_edge(a, b, "data", "RAW", is_memory=True, is_must=is_must)
        if writes_a and writes_b:
            self.add_edge(a, b, "data", "WAW", is_memory=True, is_must=is_must)
        if reads_a and writes_b:
            self.add_edge(a, b, "data", "WAR", is_memory=True, is_must=is_must)

    def _query(self, a: Instruction, b: Instruction) -> bool | None:
        """May a and b touch the same memory?  None=no, True=must, False=may."""
        pointer_a = _pointer_operand(a)
        pointer_b = _pointer_operand(b)
        if pointer_a is not None and pointer_b is not None:
            result = self.aa.alias(pointer_a, pointer_b)
            if result is AliasResult.NO_ALIAS:
                return None
            return result is AliasResult.MUST_ALIAS
        # At least one side is a call: use mod/ref.
        if isinstance(a, Call) and pointer_b is not None:
            if self.aa.mod_ref(a, pointer_b) is ModRefResult.NO_MOD_REF:
                return None
            return False
        if isinstance(b, Call) and pointer_a is not None:
            if self.aa.mod_ref(b, pointer_a) is ModRefResult.NO_MOD_REF:
                return None
            return False
        if isinstance(a, Call) and isinstance(b, Call):
            if _calls_independent(self.aa, a, b):
                return None
            return False
        return False

    def _add_control_dependences(self, fn: Function) -> None:
        cd = ControlDependence(fn)
        for block in fn.blocks:
            controllers = cd.controlling_terminators(block)
            if not controllers:
                continue
            for term in controllers:
                for inst in block.instructions:
                    self.add_edge(term, inst, "control")

    # -- derived graphs --------------------------------------------------------------
    def function_dependence_graph(self, fn: Function) -> DependenceGraph[Instruction]:
        """Dependences restricted to ``fn``; externals are its boundary."""
        return self.subgraph(list(fn.instructions()))

    def loop_dependence_graph(self, loop: NaturalLoop) -> "LoopDG":
        """The loop's dependence graph, refined with loop-carried analysis."""
        return LoopDG(self, loop)


class LoopDG(DependenceGraph[Instruction]):
    """Dependence graph of one loop with loop-carried classification.

    Internal nodes are the loop's instructions; external nodes are the
    producers of live-ins and the consumers of live-outs.
    """

    def __init__(self, pdg: PDG, loop: NaturalLoop):
        super().__init__()
        self.pdg = pdg
        self.loop = loop
        self._scev = ScalarEvolution(loop)
        internal = list(loop.instructions())
        internal_ids = {id(i) for i in internal}
        base = pdg.subgraph(internal)
        for node in base.nodes():
            self.add_node(node.value, internal=node.is_internal)
        for edge in base.edges():
            carried = False
            if edge.dst.is_internal and edge.src.is_internal:
                carried = self._is_loop_carried(edge)
            self.add_edge(
                edge.src.value,
                edge.dst.value,
                edge.kind,
                edge.data_kind,
                edge.is_memory,
                edge.is_must,
                is_loop_carried=carried,
            )
            # A carried memory conflict is direction-free: the later
            # instruction of one iteration conflicts with the earlier one of
            # the next.  The program-order PDG only has the forward edge, so
            # materialize the reverse carried edge here (e.g. the store→load
            # RAW of ``b[i] = b[i-1]``).
            if carried and edge.is_memory and edge.is_data():
                src, dst = edge.src.value, edge.dst.value
                reverse_kind = _reverse_memory_kind(dst, src)
                if reverse_kind is not None:
                    self.add_edge(
                        dst,
                        src,
                        "data",
                        reverse_kind,
                        is_memory=True,
                        is_must=edge.is_must,
                        is_loop_carried=True,
                    )

    # -- loop-carried classification ----------------------------------------------
    def _is_loop_carried(self, edge: DGEdge[Instruction]) -> bool:
        if edge.is_control():
            return False
        if not edge.is_memory:
            return self._register_dep_carried(edge.src.value, edge.dst.value)
        return self._memory_dep_carried(edge.src.value, edge.dst.value)

    def _register_dep_carried(self, src: Instruction, dst: Instruction) -> bool:
        """A register dependence is carried iff it flows around the back edge.

        In SSA that happens exactly when the consumer is a header phi and the
        producer reaches it via a latch edge.
        """
        if not isinstance(dst, Phi) or dst.parent is not self.loop.header:
            return False
        for value, pred in dst.incoming():
            if value is src and self.loop.contains_block(pred):
                return True
        return False

    def _memory_dep_carried(self, src: Instruction, dst: Instruction) -> bool:
        """Decide whether a memory dependence can cross iterations.

        Disproves the carried case when both accesses address
        ``base + iv*stride`` with the same base object, same non-zero
        stride, and same offset — then equal addresses imply equal
        iterations, so the dependence is intra-iteration only.
        """
        address_src = _pointer_operand(src)
        address_dst = _pointer_operand(dst)
        if address_src is None or address_dst is None:
            return True  # calls: stay conservative
        access_src = self._affine_access(address_src)
        access_dst = self._affine_access(address_dst)
        if access_src is None or access_dst is None:
            return True
        base_src, start_src, step_src = access_src
        base_dst, start_dst, step_dst = access_dst
        if base_src is not base_dst:
            return True  # different bases that still may-alias: conservative
        if step_src == step_dst and step_src != 0 and start_src == start_dst:
            return False
        return True

    def _affine_access(self, address: Value):
        """Decompose an address into (base object, start key, iv stride).

        The start key combines the constant part of the starting offset
        with the identities of its symbolic (loop-invariant) parts, so two
        accesses starting at e.g. ``width + 1`` compare equal even though
        the start is not a literal constant.
        """
        from ..analysis.aa import underlying_object
        from ..ir.instructions import ElemPtr
        from ..ir.values import ConstantInt

        if not isinstance(address, ElemPtr):
            return None
        base = underlying_object(address)
        const_start = 0
        symbolic_parts: list[int] = []
        stride = 0
        for index in address.indices:
            if isinstance(index, ConstantInt):
                const_start += index.value
                continue
            evolution = self._scev.evolution_of(index)
            if isinstance(evolution, SCEVAddRec):
                step = evolution.constant_step()
                if step is None:
                    return None
                stride += step
                start = evolution.start
                if isinstance(start, SCEVConstant):
                    const_start += start.value
                elif isinstance(start, SCEVUnknown):
                    symbolic_parts.append(id(start.value))
                else:
                    return None
            elif isinstance(evolution, SCEVUnknown):
                return None  # invariant but iteration-independent index
            else:
                return None
        start_key = (const_start, tuple(sorted(symbolic_parts)))
        return base, start_key, stride

    # -- region boundary -------------------------------------------------------------
    def live_in_values(self) -> list[Value]:
        """Values defined outside the loop but used inside (plus arguments)."""
        result: list[Value] = []
        seen: set[int] = set()
        from ..ir.values import Argument, Constant

        for inst in self.loop.instructions():
            for operand in inst.operands:
                if isinstance(operand, Constant):
                    continue
                if isinstance(operand, Instruction) and self.loop.contains(operand):
                    continue
                if operand.type.is_void() or str(operand.type) == "label":
                    continue
                if isinstance(operand, (Instruction, Argument)) and id(operand) not in seen:
                    seen.add(id(operand))
                    result.append(operand)
        return result

    def live_out_values(self) -> list[Instruction]:
        """Values defined inside the loop and used after it."""
        result: list[Instruction] = []
        seen: set[int] = set()
        for inst in self.loop.instructions():
            for user in inst.users():
                if isinstance(user, Instruction) and not self.loop.contains(user):
                    if id(inst) not in seen:
                        seen.add(id(inst))
                        result.append(inst)
                    break
        return result

    def loop_carried_edges(self) -> list[DGEdge[Instruction]]:
        return [e for e in self.edges() if e.is_loop_carried]

    def has_loop_carried_data_dependences(self) -> bool:
        return any(e.is_data() for e in self.loop_carried_edges())


def _reverse_memory_kind(src: Instruction, dst: Instruction) -> str | None:
    """Dependence kind for a reversed memory edge ``src -> dst``."""
    if src.may_write_memory() and dst.may_read_memory():
        return "RAW"
    if src.may_write_memory() and dst.may_write_memory():
        return "WAW"
    if src.may_read_memory() and dst.may_write_memory():
        return "WAR"
    return None


def _pointer_operand(inst: Instruction) -> Value | None:
    if isinstance(inst, Load):
        return inst.pointer
    if isinstance(inst, Store):
        return inst.pointer
    return None


def _calls_independent(aa: AliasAnalysis, a: Call, b: Call) -> bool:
    """True when two calls provably touch disjoint memory (or none)."""
    from ..analysis.pointsto import AndersenAliasAnalysis

    if not isinstance(aa, AndersenAliasAnalysis):
        return False
    effects = aa._effects()
    ea = _call_footprint(effects, aa, a)
    eb = _call_footprint(effects, aa, b)
    if ea is None or eb is None:
        return False
    reads_a, writes_a = ea
    reads_b, writes_b = eb
    return not (
        (writes_a & (reads_b | writes_b)) or (writes_b & (reads_a | writes_a))
    )


def _call_footprint(effects, aa, call: Call):
    targets = aa.pointsto.callees_of(call)
    if not targets:
        return None
    reads: set = set()
    writes: set = set()
    for callee in targets:
        summary = effects.effects.get(id(callee))
        if summary is None or summary.unknown:
            return None
        reads |= summary.reads
        writes |= summary.writes
    return reads, writes
