"""The Program Dependence Graph abstraction (Table 1, "PDG").

Instantiates the dependence-graph template with IR instructions.  Edges:

* **register data dependences** — SSA def-use chains (always RAW, must);
* **memory data dependences** — between memory-touching instruction pairs,
  classified RAW/WAW/WAR and must/may by the configured alias analysis
  (the strong Andersen AA by default — the SCAF/SVF stand-in);
* **control dependences** — from the Ferrante–Ottenstein–Warren relation.

The PDG is *function-sharded and demand-driven*: constructing one records
nothing but the module and the alias analysis, and each function's
dependence subgraph materializes the first time anything queries it
(``function_dependence_graph``, ``loop_dependence_graph``, a scheduler
walking ``dependences_of``, ...).  Whole-graph accessors (``edges()``,
``num_nodes()``, the Figure 3 counters) materialize every shard, so an
eagerly-consumed PDG is indistinguishable from the seed's eager build.
Since no dependence edge crosses a function boundary (calls are
summarized by mod/ref inside the caller), a shard can be dropped and
rebuilt in isolation — `Noelle.invalidate(fn)` uses exactly that to make
the transform→invalidate→re-query cycle pay for one function instead of
the whole module.

Within a shard, the all-pairs memory loop is pruned by partitioning the
memory instructions into points-to *regions* (connected components of
overlapping footprints): two instructions in different regions are
provably disjoint under the configured AA, so their pair is never
queried.  The Figure 3 counters keep paper-comparable semantics — every
pruned pair that would have been queried is counted as queried *and*
disproved, which is exactly what the alias analysis would have concluded.

From the program PDG a pass can request *function* and *loop* dependence
graphs.  Requesting a loop dependence graph triggers the loop-centric
refinements the paper describes: loop-carried classification of register
and memory dependences (using scalar evolution on the access addresses) and
live-in/live-out computation via internal/external nodes.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator

from ..analysis.aa import (
    AliasAnalysis,
    AliasResult,
    BasicAliasAnalysis,
    ModRefResult,
    is_identified_object,
    underlying_object,
)
from ..analysis.controldep import ControlDependence
from ..analysis.deptest import DependenceTester, FunctionDepTest, deptest_enabled
from ..analysis.loopinfo import NaturalLoop
from ..analysis.pointsto import AndersenAliasAnalysis
from ..analysis.scev import SCEVAddRec, SCEVConstant, SCEVUnknown, ScalarEvolution
from ..ir.instructions import Call, Instruction, Load, Phi, Store
from ..ir.module import Function, Module
from ..ir.values import Value
from ..perf import STATS
from .depgraph import DependenceGraph, DGEdge, DGNode


class _Shard:
    """One function's slice of the PDG: its nodes, edges, and counters."""

    __slots__ = ("fn", "node_ids", "edges", "queries", "disproved")

    def __init__(self, fn: Function):
        self.fn = fn
        self.node_ids: list[int] = []
        self.edges: list[DGEdge[Instruction]] = []
        self.queries = 0
        self.disproved = 0


class PDG(DependenceGraph[Instruction]):
    """Program dependence graph over all instructions of a module.

    A lazy container of per-function dependence shards; see the module
    docstring for the materialization and invalidation contract.
    ``partition=False`` disables the points-to pair pruning (the seed's
    exact all-pairs loop) — used by the equivalence tests and benchmarks.
    """

    def __init__(self, module: Module, aa: AliasAnalysis,
                 partition: bool = True, lazy: bool = True):
        super().__init__()
        self.module = module
        self.aa = aa
        self.partition = partition
        #: Statistics used by the Figure 3 experiment: how many memory
        #: instruction pairs were queried and how many were disproved.
        #: (Exposed as materializing properties below.)
        self._memory_queries = 0
        self._memory_disproved = 0
        self._shards: dict[int, _Shard] = {}
        self._materializing = False
        #: Per-shard symbolic dependence tester (NOELLE_DEPTEST=1 only);
        #: live only while its shard builds, so invalidation stays warm.
        self._deptest: FunctionDepTest | None = None
        if not lazy:
            self.materialize()

    # -- shard lifecycle ---------------------------------------------------------------
    def materialize(self) -> None:
        """Build every missing shard (the eager full-module build)."""
        if self._materializing:
            return
        current = {id(fn) for fn in self.module.defined_functions()}
        for stale_id in [fid for fid in self._shards if fid not in current]:
            self.invalidate_function(self._shards[stale_id].fn)
        for fn in self.module.defined_functions():
            self._ensure_function(fn)

    def _ensure_function(self, fn: Function | None) -> None:
        if fn is None or self._materializing:
            return
        if id(fn) in self._shards or fn.is_declaration():
            return
        self._materializing = True
        try:
            STATS.count("pdg.shard_builds")
            with STATS.timer("pdg.build_shard"):
                self._build_function(fn)
        finally:
            self._materializing = False

    def _ensure_value(self, value) -> None:
        if isinstance(value, Instruction):
            self._ensure_function(_function_of(value))

    def can_rebuild_shards(self) -> bool:
        """Whether a dropped shard can be recomputed in place.

        False for metadata-rehydrated graphs (no alias analysis
        attached).  Subclasses whose ``aa`` materializes lazily
        override this instead of forcing the build just to answer.
        """
        return self.aa is not None

    def invalidate_function(self, fn: Function) -> bool:
        """Drop ``fn``'s shard (rebuilt on next query); False if absent."""
        shard = self._shards.pop(id(fn), None)
        if shard is None:
            return False
        STATS.count("pdg.shard_invalidations")
        for node_id in shard.node_ids:
            self._nodes.pop(node_id, None)
        if shard.edges:
            dropped = {id(e) for e in shard.edges}
            self._edges = [e for e in self._edges if id(e) not in dropped]
        self._memory_queries -= shard.queries
        self._memory_disproved -= shard.disproved
        return True

    def built_functions(self) -> list[Function]:
        """Functions whose shard is currently materialized."""
        return [shard.fn for shard in self._shards.values()]

    # -- Figure 3 counters -------------------------------------------------------------
    @property
    def memory_queries(self) -> int:
        self.materialize()
        return self._memory_queries

    @memory_queries.setter
    def memory_queries(self, value: int) -> None:
        self._memory_queries = value

    @property
    def memory_disproved(self) -> int:
        self.materialize()
        return self._memory_disproved

    @memory_disproved.setter
    def memory_disproved(self, value: int) -> None:
        self._memory_disproved = value

    # -- materializing accessors ---------------------------------------------------------
    # Whole-graph views build every shard first; per-value views build only
    # the owning function's shard.
    def nodes(self) -> Iterator[DGNode[Instruction]]:
        self.materialize()
        return super().nodes()

    def internal_nodes(self) -> list[DGNode[Instruction]]:
        self.materialize()
        return super().internal_nodes()

    def external_nodes(self) -> list[DGNode[Instruction]]:
        self.materialize()
        return super().external_nodes()

    def num_nodes(self) -> int:
        self.materialize()
        return super().num_nodes()

    def edges(self) -> list[DGEdge[Instruction]]:
        self.materialize()
        return super().edges()

    def num_edges(self) -> int:
        self.materialize()
        return super().num_edges()

    def node_of(self, value) -> DGNode[Instruction] | None:
        self._ensure_value(value)
        return super().node_of(value)

    def has_node(self, value) -> bool:
        self._ensure_value(value)
        return super().has_node(value)

    def dependences_of(self, value) -> list[DGEdge[Instruction]]:
        self._ensure_value(value)
        return super().dependences_of(value)

    def dependents_of(self, value) -> list[DGEdge[Instruction]]:
        self._ensure_value(value)
        return super().dependents_of(value)

    def edges_between(self, src, dst) -> list[DGEdge[Instruction]]:
        self._ensure_value(src)
        self._ensure_value(dst)
        return super().edges_between(src, dst)

    def subgraph(self, internal_values: list[Instruction]) -> DependenceGraph[Instruction]:
        """Project onto ``internal_values``, touching only their shards.

        Dependence edges never cross functions, so the projection only
        needs the shards owning the internal values — untouched functions
        are neither built nor scanned.
        """
        fns: list[Function] = []
        for value in internal_values:
            fn = _function_of(value) if isinstance(value, Instruction) else None
            if fn is None:
                # A detached value: fall back to the full-graph projection.
                self.materialize()
                return super().subgraph(internal_values)
            if fn not in fns:
                fns.append(fn)
        edges: list[DGEdge[Instruction]] = []
        for fn in fns:
            self._ensure_function(fn)
            shard = self._shards.get(id(fn))
            if shard is not None:
                edges.extend(shard.edges)
        return self._project(internal_values, edges)

    # -- construction ------------------------------------------------------------
    def _build_function(self, fn: Function) -> None:
        shard = _Shard(fn)
        self._shards[id(fn)] = shard
        queries_before = self._memory_queries
        disproved_before = self._memory_disproved
        edges_before = len(self._edges)
        instructions = list(fn.instructions())
        for inst in instructions:
            self.add_node(inst, internal=True)
        shard.node_ids = [id(inst) for inst in instructions]
        self._deptest = FunctionDepTest(fn) if deptest_enabled() else None
        try:
            self._add_register_dependences(instructions)
            self._add_memory_dependences(instructions)
            self._add_control_dependences(fn)
        finally:
            self._deptest = None
        shard.edges = self._edges[edges_before:]
        shard.queries = self._memory_queries - queries_before
        shard.disproved = self._memory_disproved - disproved_before

    def _add_register_dependences(self, instructions: list[Instruction]) -> None:
        for inst in instructions:
            for operand in inst.operands:
                if isinstance(operand, Instruction) and self.has_node(operand):
                    self.add_edge(
                        operand, inst, "data", "RAW", is_memory=False, is_must=True
                    )

    def _add_memory_dependences(self, instructions: list[Instruction]) -> None:
        memory_insts = [i for i in instructions if i.touches_memory()]
        total = len(memory_insts)
        if total < 2:
            return
        # Classify each instruction once (read/write flags are reused for
        # every pair it participates in).
        reads = [i.may_read_memory() for i in memory_insts]
        writes = [i.may_write_memory() for i in memory_insts]
        regions = (
            self._partition_regions(memory_insts)
            if self.partition
            else [None] * total
        )
        groups: dict[int, list[int]] = {}
        wildcard: list[int] = []
        for index, region in enumerate(regions):
            if region is None:
                wildcard.append(index)
            else:
                groups.setdefault(region, []).append(index)
        self._count_pruned_pairs(groups, writes)
        # Enumerate the surviving pairs in the seed's program order: an
        # instruction pairs with later members of its own region and with
        # later wildcards (calls and untracked pointers overlap anything).
        for i in range(total):
            region = regions[i]
            if region is None:
                later: Iterator[int] = iter(range(i + 1, total))
            else:
                later = _merged_after(groups[region], wildcard, i)
            for j in later:
                self._memory_pair(
                    memory_insts[i], memory_insts[j],
                    reads[i], writes[i], reads[j], writes[j],
                )

    def _count_pruned_pairs(
        self, groups: dict[int, list[int]], writes: list[bool]
    ) -> None:
        """Account for cross-region pairs that are never enumerated.

        Each such pair is provably NO_ALIAS under the configured AA, so
        the seed's loop would have counted it as queried and disproved
        (when at least one side writes) — keep those semantics exactly.
        """
        if len(groups) < 2:
            return
        sum_n = sum_n2 = sum_ro = sum_ro2 = 0
        for members in groups.values():
            n = len(members)
            read_only = sum(1 for index in members if not writes[index])
            sum_n += n
            sum_n2 += n * n
            sum_ro += read_only
            sum_ro2 += read_only * read_only
        cross_pairs = (sum_n * sum_n - sum_n2) // 2
        cross_read_only = (sum_ro * sum_ro - sum_ro2) // 2
        pruned = cross_pairs - cross_read_only
        self._memory_queries += pruned
        self._memory_disproved += pruned
        STATS.count("pdg.pairs_pruned", cross_pairs)

    def _partition_regions(self, memory_insts: list[Instruction]) -> list[int | None]:
        """Union overlapping memory footprints into region labels.

        Returns one label per instruction; ``None`` marks a wildcard (a
        call, or a pointer the AA has no footprint for) that must be
        paired against everything.  Two instructions with different
        (non-None) labels have provably disjoint footprints under
        ``self.aa``.
        """
        footprints = [self._footprint(inst) for inst in memory_insts]
        parent: dict[int, int] = {}

        def find(x: int) -> int:
            root = x
            while parent.setdefault(root, root) != root:
                root = parent[root]
            while parent[x] != root:  # path compression
                parent[x], x = root, parent[x]
            return root

        for footprint in footprints:
            if footprint:
                first = footprint[0]
                for obj_id in footprint[1:]:
                    parent[find(obj_id)] = find(first)
        return [find(fp[0]) if fp else None for fp in footprints]

    def _footprint(self, inst: Instruction) -> list[int] | None:
        """Object ids the instruction may touch; None when unbounded.

        Only the two known AA implementations are partitioned — for any
        other ``AliasAnalysis`` everything stays wildcard so no pair is
        pruned that the analysis might not have disproved.
        """
        pointer = _pointer_operand(inst)
        if pointer is None:
            return None  # calls: mod/ref reasoning happens per pair
        aa = self.aa
        if type(aa) is AndersenAliasAnalysis:
            pts = aa.pointsto.points_to(pointer)
            if not pts or aa.pointsto.unknown in pts:
                return None
            return [id(obj) for obj in pts]
        if type(aa) is BasicAliasAnalysis:
            obj = underlying_object(pointer)
            if is_identified_object(obj):
                return [id(obj)]
            return None
        return None

    def _memory_pair(
        self,
        a: Instruction,
        b: Instruction,
        reads_a: bool,
        writes_a: bool,
        reads_b: bool,
        writes_b: bool,
    ) -> None:
        """Add memory dependence edges between an instruction pair.

        The pair is unordered in program terms (they may execute in either
        order across loop iterations), so both directions are considered.
        The read/write flags are classified once per instruction by the
        partitioning pass and passed in.
        """
        if not writes_a and not writes_b:
            return  # read-read pairs carry no dependence
        self._memory_queries += 1
        result = self._query(a, b)
        if result is None:
            self._memory_disproved += 1
            return
        if self._deptest is not None and self._deptest.proves_independent(a, b):
            # The symbolic dependence tests disproved the pair the alias
            # analysis could not: keep Figure 3 semantics (queried and
            # disproved) and add no edges.
            self._memory_disproved += 1
            STATS.count("deptest.pdg_pairs_pruned")
            STATS.count(
                "deptest.pdg_edges_pruned",
                int(writes_a and reads_b)
                + int(writes_a and writes_b)
                + int(reads_a and writes_b),
            )
            return
        is_must = result
        if writes_a and reads_b:
            self.add_edge(a, b, "data", "RAW", is_memory=True, is_must=is_must)
        if writes_a and writes_b:
            self.add_edge(a, b, "data", "WAW", is_memory=True, is_must=is_must)
        if reads_a and writes_b:
            self.add_edge(a, b, "data", "WAR", is_memory=True, is_must=is_must)

    def _query(self, a: Instruction, b: Instruction) -> bool | None:
        """May a and b touch the same memory?  None=no, True=must, False=may."""
        pointer_a = _pointer_operand(a)
        pointer_b = _pointer_operand(b)
        if pointer_a is not None and pointer_b is not None:
            result = self.aa.alias(pointer_a, pointer_b)
            if result is AliasResult.NO_ALIAS:
                return None
            return result is AliasResult.MUST_ALIAS
        # At least one side is a call: use mod/ref.
        if isinstance(a, Call) and pointer_b is not None:
            if self.aa.mod_ref(a, pointer_b) is ModRefResult.NO_MOD_REF:
                return None
            return False
        if isinstance(b, Call) and pointer_a is not None:
            if self.aa.mod_ref(b, pointer_a) is ModRefResult.NO_MOD_REF:
                return None
            return False
        if isinstance(a, Call) and isinstance(b, Call):
            if _calls_independent(self.aa, a, b):
                return None
            return False
        return False

    def _add_control_dependences(self, fn: Function) -> None:
        cd = ControlDependence(fn)
        for block in fn.blocks:
            controllers = cd.controlling_terminators(block)
            if not controllers:
                continue
            for term in controllers:
                for inst in block.instructions:
                    self.add_edge(term, inst, "control")

    # -- rehydration -------------------------------------------------------------------
    @classmethod
    def from_serialized(
        cls,
        module: Module,
        edges: list[tuple],
        instruction_by_id,
        stats: dict,
    ) -> "PDG":
        """Rebuild a PDG from ``noelle-meta-pdg-embed`` metadata.

        The result carries no alias analysis (``aa is None``): every shard
        is registered as already built, and `Noelle.invalidate` falls back
        to dropping the whole graph since a shard cannot be recomputed.
        """
        pdg = cls.__new__(cls)
        DependenceGraph.__init__(pdg)
        pdg.module = module
        pdg.aa = None
        pdg.partition = True
        pdg._materializing = False
        pdg._deptest = None
        pdg._memory_queries = stats.get("memory_queries", 0)
        pdg._memory_disproved = stats.get("memory_disproved", 0)
        pdg._shards = {}
        for fn in module.defined_functions():
            shard = _Shard(fn)
            pdg._shards[id(fn)] = shard
            for inst in fn.instructions():
                pdg.add_node(inst, internal=True)
                shard.node_ids.append(id(inst))
        for src_id, dst_id, kind, data_kind, is_memory, is_must in edges:
            src = instruction_by_id(src_id)
            dst = instruction_by_id(dst_id)
            edge = pdg.add_edge(src, dst, kind, data_kind, is_memory, is_must)
            owner = pdg._shards.get(id(_function_of(src)))
            if owner is not None:
                owner.edges.append(edge)
        return pdg

    # -- derived graphs --------------------------------------------------------------
    def function_dependence_graph(self, fn: Function) -> DependenceGraph[Instruction]:
        """Dependences restricted to ``fn``; externals are its boundary."""
        self._ensure_function(fn)
        return self.subgraph(list(fn.instructions()))

    def loop_dependence_graph(self, loop: NaturalLoop) -> "LoopDG":
        """The loop's dependence graph, refined with loop-carried analysis."""
        self._ensure_function(loop.header.parent)
        return LoopDG(self, loop)


def _function_of(inst: Instruction) -> Function | None:
    block = getattr(inst, "parent", None)
    return block.parent if block is not None else None


def _merged_after(a: list[int], b: list[int], threshold: int) -> Iterator[int]:
    """Yield the ascending merge of two sorted lists, keeping > threshold."""
    ia = bisect_right(a, threshold)
    ib = bisect_right(b, threshold)
    len_a, len_b = len(a), len(b)
    while ia < len_a and ib < len_b:
        if a[ia] <= b[ib]:
            yield a[ia]
            ia += 1
        else:
            yield b[ib]
            ib += 1
    while ia < len_a:
        yield a[ia]
        ia += 1
    while ib < len_b:
        yield b[ib]
        ib += 1


class LoopDG(DependenceGraph[Instruction]):
    """Dependence graph of one loop with loop-carried classification.

    Internal nodes are the loop's instructions; external nodes are the
    producers of live-ins and the consumers of live-outs.
    """

    def __init__(self, pdg: PDG, loop: NaturalLoop):
        super().__init__()
        self.pdg = pdg
        self.loop = loop
        self._scev = ScalarEvolution(loop)
        #: Lazy symbolic dependence tester (NOELLE_DEPTEST=1 only).
        self._deptester: DependenceTester | None = None
        #: Distance side-channel from _memory_dep_carried to the edge.
        self._carried_distance: int | None = None
        internal = list(loop.instructions())
        internal_ids = {id(i) for i in internal}
        base = pdg.subgraph(internal)
        for node in base.nodes():
            self.add_node(node.value, internal=node.is_internal)
        for edge in base.edges():
            carried = False
            self._carried_distance = None
            if edge.dst.is_internal and edge.src.is_internal:
                carried = self._is_loop_carried(edge)
            added = self.add_edge(
                edge.src.value,
                edge.dst.value,
                edge.kind,
                edge.data_kind,
                edge.is_memory,
                edge.is_must,
                is_loop_carried=carried,
            )
            added.distance = self._carried_distance if carried else edge.distance
            # A carried memory conflict is direction-free: the later
            # instruction of one iteration conflicts with the earlier one of
            # the next.  The program-order PDG only has the forward edge, so
            # materialize the reverse carried edge here (e.g. the store→load
            # RAW of ``b[i] = b[i-1]``).
            if carried and edge.is_memory and edge.is_data():
                src, dst = edge.src.value, edge.dst.value
                reverse_kind = _reverse_memory_kind(dst, src)
                if reverse_kind is not None:
                    reverse = self.add_edge(
                        dst,
                        src,
                        "data",
                        reverse_kind,
                        is_memory=True,
                        is_must=edge.is_must,
                        is_loop_carried=True,
                    )
                    if added.distance is not None:
                        reverse.distance = -added.distance

    # -- loop-carried classification ----------------------------------------------
    def _is_loop_carried(self, edge: DGEdge[Instruction]) -> bool:
        if edge.is_control():
            return False
        if not edge.is_memory:
            return self._register_dep_carried(edge.src.value, edge.dst.value)
        carried = self._memory_dep_carried(edge.src.value, edge.dst.value)
        if carried and deptest_enabled():
            return self._deptest_carried(edge.src.value, edge.dst.value)
        return carried

    def _register_dep_carried(self, src: Instruction, dst: Instruction) -> bool:
        """A register dependence is carried iff it flows around the back edge.

        In SSA that happens exactly when the consumer is a header phi and the
        producer reaches it via a latch edge.
        """
        if not isinstance(dst, Phi) or dst.parent is not self.loop.header:
            return False
        for value, pred in dst.incoming():
            if value is src and self.loop.contains_block(pred):
                return True
        return False

    def _memory_dep_carried(self, src: Instruction, dst: Instruction) -> bool:
        """Decide whether a memory dependence can cross iterations.

        Disproves the carried case when both accesses address
        ``base + iv*stride`` with the same base object, same non-zero
        stride, and same offset — then equal addresses imply equal
        iterations, so the dependence is intra-iteration only.
        """
        address_src = _pointer_operand(src)
        address_dst = _pointer_operand(dst)
        if address_src is None or address_dst is None:
            return True  # calls: stay conservative
        access_src = self._affine_access(address_src)
        access_dst = self._affine_access(address_dst)
        if access_src is None or access_dst is None:
            return True
        base_src, start_src, step_src = access_src
        base_dst, start_dst, step_dst = access_dst
        if base_src is not base_dst:
            return True  # different bases that still may-alias: conservative
        if step_src == step_dst and step_src != 0 and start_src == start_dst:
            return False
        return True

    def _deptest_carried(self, src: Instruction, dst: Instruction) -> bool:
        """Refine a still-carried verdict with the symbolic dependence tests.

        Only consulted under NOELLE_DEPTEST=1.  Returns the refined
        carried flag and stashes a proven iteration distance (if any) in
        ``self._carried_distance`` for the edge being built.
        """
        if self._deptester is None:
            self._deptester = DependenceTester(self.loop)
        carried, distance = self._deptester.carried(src, dst)
        if not carried:
            STATS.count("deptest.carried_disproved")
            return False
        self._carried_distance = distance
        return True

    def _affine_access(self, address: Value):
        """Decompose an address into (base object, start key, iv stride).

        The start key combines the constant part of the starting offset
        with the identities of its symbolic (loop-invariant) parts, so two
        accesses starting at e.g. ``width + 1`` compare equal even though
        the start is not a literal constant.
        """
        from ..analysis.aa import underlying_object
        from ..ir.instructions import ElemPtr
        from ..ir.values import ConstantInt

        if not isinstance(address, ElemPtr):
            return None
        base = underlying_object(address)
        const_start = 0
        symbolic_parts: list[int] = []
        stride = 0
        for index in address.indices:
            if isinstance(index, ConstantInt):
                const_start += index.value
                continue
            evolution = self._scev.evolution_of(index)
            if isinstance(evolution, SCEVAddRec):
                step = evolution.constant_step()
                if step is None:
                    return None
                stride += step
                start = evolution.start
                if isinstance(start, SCEVConstant):
                    const_start += start.value
                elif isinstance(start, SCEVUnknown):
                    symbolic_parts.append(id(start.value))
                else:
                    return None
            elif isinstance(evolution, SCEVUnknown):
                return None  # invariant but iteration-independent index
            else:
                return None
        start_key = (const_start, tuple(sorted(symbolic_parts)))
        return base, start_key, stride

    # -- region boundary -------------------------------------------------------------
    def live_in_values(self) -> list[Value]:
        """Values defined outside the loop but used inside (plus arguments)."""
        result: list[Value] = []
        seen: set[int] = set()
        from ..ir.values import Argument, Constant

        for inst in self.loop.instructions():
            for operand in inst.operands:
                if isinstance(operand, Constant):
                    continue
                if isinstance(operand, Instruction) and self.loop.contains(operand):
                    continue
                if operand.type.is_void() or str(operand.type) == "label":
                    continue
                if isinstance(operand, (Instruction, Argument)) and id(operand) not in seen:
                    seen.add(id(operand))
                    result.append(operand)
        return result

    def live_out_values(self) -> list[Instruction]:
        """Values defined inside the loop and used after it."""
        result: list[Instruction] = []
        seen: set[int] = set()
        for inst in self.loop.instructions():
            for user in inst.users():
                if isinstance(user, Instruction) and not self.loop.contains(user):
                    if id(inst) not in seen:
                        seen.add(id(inst))
                        result.append(inst)
                    break
        return result

    def loop_carried_edges(self) -> list[DGEdge[Instruction]]:
        return [e for e in self.edges() if e.is_loop_carried]

    def has_loop_carried_data_dependences(self) -> bool:
        return any(e.is_data() for e in self.loop_carried_edges())


def _reverse_memory_kind(src: Instruction, dst: Instruction) -> str | None:
    """Dependence kind for a reversed memory edge ``src -> dst``."""
    if src.may_write_memory() and dst.may_read_memory():
        return "RAW"
    if src.may_write_memory() and dst.may_write_memory():
        return "WAW"
    if src.may_read_memory() and dst.may_write_memory():
        return "WAR"
    return None


def _pointer_operand(inst: Instruction) -> Value | None:
    if isinstance(inst, Load):
        return inst.pointer
    if isinstance(inst, Store):
        return inst.pointer
    return None


def _calls_independent(aa: AliasAnalysis, a: Call, b: Call) -> bool:
    """True when two calls provably touch disjoint memory (or none)."""
    if not isinstance(aa, AndersenAliasAnalysis):
        return False
    effects = aa._effects()
    ea = _call_footprint(effects, aa, a)
    eb = _call_footprint(effects, aa, b)
    if ea is None or eb is None:
        return False
    reads_a, writes_a = ea
    reads_b, writes_b = eb
    return not (
        (writes_a & (reads_b | writes_b)) or (writes_b & (reads_a | writes_a))
    )


def _call_footprint(effects, aa, call: Call):
    targets = aa.pointsto.callees_of(call)
    if not targets:
        return None
    reads: set = set()
    writes: set = set()
    for callee in targets:
        summary = effects.effects.get(id(callee))
        if summary is None or summary.unknown:
            return None
        reads |= summary.reads
        writes |= summary.writes
    return reads, writes
