"""The profiler abstraction (Table 1, "PRO").

NOELLE ships several IR-level profilers (instruction, branch, loop), embeds
their results into the IR as metadata, and offers high-level queries on the
data: hotness of a code region (a loop, an SCC), loop iteration statistics,
and function invocation statistics.

Here profiling runs the program under the interpreter with observers
attached — the equivalent of ``noelle-prof-coverage`` running the
instrumented binary on training inputs — and the result object answers the
same queries the paper lists.
"""

from __future__ import annotations

from collections import defaultdict

from ..analysis.loopinfo import NaturalLoop
from ..interp.interp import INSTRUCTION_COSTS, Interpreter
from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, Function, Module

PROFILE_COUNT_KEY = "noelle.prof.count"


class ProfileData:
    """Raw execution counts collected by one profiled run."""

    def __init__(self, module: Module):
        self.module = module
        self.instruction_counts: dict[int, int] = defaultdict(int)
        self.block_counts: dict[int, int] = defaultdict(int)
        self.edge_counts: dict[tuple[int, int], int] = defaultdict(int)
        self.invocation_counts: dict[int, int] = defaultdict(int)
        self.total_weight = 0  # cost-weighted dynamic instructions
        self._inclusive_cache: dict[int, float] | None = None

    # -- recording ------------------------------------------------------------------
    def record_instruction(self, inst: Instruction) -> None:
        self.instruction_counts[id(inst)] += 1
        self.total_weight += INSTRUCTION_COSTS.get(inst.opcode, 1)
        # Block entries are counted on the block's first instruction.
        if inst.parent is not None and inst.parent.instructions[0] is inst:
            self.block_counts[id(inst.parent)] += 1

    def record_edge(self, src: BasicBlock, dst: BasicBlock) -> None:
        self.edge_counts[(id(src), id(dst))] += 1

    def record_call(self, fn: Function) -> None:
        self.invocation_counts[id(fn)] += 1

    # -- instruction/block queries -------------------------------------------------
    def count_of(self, inst: Instruction) -> int:
        return self.instruction_counts.get(id(inst), 0)

    def block_count(self, block: BasicBlock) -> int:
        return self.block_counts.get(id(block), 0)

    def edge_count(self, src: BasicBlock, dst: BasicBlock) -> int:
        return self.edge_counts.get((id(src), id(dst)), 0)

    def branch_probability(self, src: BasicBlock, dst: BasicBlock) -> float:
        """Fraction of ``src`` executions leaving through the edge to ``dst``."""
        total = sum(
            self.edge_counts.get((id(src), id(s)), 0) for s in src.successors()
        )
        if total == 0:
            return 0.0
        return self.edge_counts.get((id(src), id(dst)), 0) / total

    # -- hotness ----------------------------------------------------------------------
    def weight_of_instructions(self, instructions) -> int:
        return sum(
            self.instruction_counts.get(id(i), 0) * INSTRUCTION_COSTS.get(i.opcode, 1)
            for i in instructions
        )

    def inclusive_weight_of_instructions(self, instructions) -> float:
        """Weighted work of the region *including* its callees' time."""
        from ..ir.instructions import Call

        weight = float(self.weight_of_instructions(instructions))
        for inst in instructions:
            if isinstance(inst, Call):
                callee = inst.called_function()
                if callee is not None and not callee.is_declaration():
                    weight += self.count_of(inst) * self._inclusive_per_invocation(
                        callee
                    )
        return weight

    def _inclusive_per_invocation(self, fn: Function) -> float:
        """Average inclusive cycles of one invocation of ``fn``.

        Fixpoint over the call graph; recursion converges because every
        round distributes the same finite total weight.
        """
        if self._inclusive_cache is None:
            from ..ir.instructions import Call

            own: dict[int, float] = {}
            for candidate in self.module.defined_functions():
                invocations = max(self.function_invocations(candidate), 1)
                own[id(candidate)] = (
                    self.weight_of_instructions(list(candidate.instructions()))
                    / invocations
                )
            inclusive = dict(own)
            for _ in range(12):
                updated: dict[int, float] = {}
                for candidate in self.module.defined_functions():
                    invocations = max(self.function_invocations(candidate), 1)
                    total = own[id(candidate)]
                    for inst in candidate.instructions():
                        if isinstance(inst, Call):
                            callee = inst.called_function()
                            if callee is not None and id(callee) in inclusive:
                                if callee is candidate:
                                    continue  # self-recursion: own cost covers it
                                total += (
                                    self.count_of(inst)
                                    * inclusive[id(callee)]
                                    / invocations
                                )
                    updated[id(candidate)] = min(total, float(self.total_weight))
                if updated == inclusive:
                    break
                inclusive = updated
            self._inclusive_cache = inclusive
        return self._inclusive_cache.get(id(fn), 0.0)

    def hotness(self, instructions) -> float:
        """Fraction of the run's work spent in ``instructions`` (inclusive
        of callees, as the paper's hotness queries are)."""
        if self.total_weight == 0:
            return 0.0
        fraction = self.inclusive_weight_of_instructions(instructions) / (
            self.total_weight
        )
        return min(fraction, 1.0)

    def loop_hotness(self, loop: NaturalLoop) -> float:
        return self.hotness(list(loop.instructions()))

    def function_hotness(self, fn: Function) -> float:
        return self.hotness(list(fn.instructions()))

    # -- loop statistics ---------------------------------------------------------------
    def loop_invocations(self, loop: NaturalLoop) -> int:
        """How many times the loop was entered from outside."""
        return sum(
            self.edge_counts.get((id(entry), id(loop.header)), 0)
            for entry in loop.entries()
        )

    def loop_total_iterations(self, loop: NaturalLoop) -> int:
        """Total header-reaching back-edge traversals plus entries."""
        back = sum(
            self.edge_counts.get((id(latch), id(loop.header)), 0)
            for latch in loop.latches()
        )
        entries = self.loop_invocations(loop)
        # A while-shaped loop runs `back + entries` header evaluations but
        # `back` complete iterations only when it exits from the header.
        return back + entries if self._runs_body_per_header(loop) else back

    @staticmethod
    def _runs_body_per_header(loop: NaturalLoop) -> bool:
        # Do-while loops execute the body once per header execution.
        exiting = loop.exiting_blocks()
        return bool(exiting) and loop.header not in exiting

    def average_iterations_per_invocation(self, loop: NaturalLoop) -> float:
        invocations = self.loop_invocations(loop)
        if invocations == 0:
            return 0.0
        return self.loop_total_iterations(loop) / invocations

    # -- function statistics --------------------------------------------------------------
    def function_invocations(self, fn: Function) -> int:
        return self.invocation_counts.get(id(fn), 0)

    def average_callee_invocations(self, caller: Function, callee: Function) -> float:
        """Average number of times one invocation of ``caller`` calls ``callee``."""
        from ..ir.instructions import Call

        caller_count = self.function_invocations(caller)
        if caller_count == 0:
            return 0.0
        call_count = 0
        for inst in caller.instructions():
            if isinstance(inst, Call) and inst.called_function() is callee:
                call_count += self.count_of(inst)
        return call_count / caller_count


class Profiler:
    """Runs programs under observation (``noelle-prof-coverage``)."""

    def __init__(self, module: Module):
        self.module = module

    def profile(
        self,
        function_name: str = "main",
        args: list[object] | None = None,
        step_limit: int = 50_000_000,
    ) -> ProfileData:
        data = ProfileData(self.module)
        interp = Interpreter(self.module, step_limit=step_limit)
        interp.observer = data.record_instruction
        interp.edge_observer = data.record_edge
        interp.call_observer = data.record_call
        interp.run(function_name, args)
        return data


def embed_profile(module: Module, data: ProfileData) -> None:
    """Attach counts as IR metadata (``noelle-meta-prof-embed``)."""
    for fn in module.defined_functions():
        for inst in fn.instructions():
            inst.metadata[PROFILE_COUNT_KEY] = data.count_of(inst)
    module.metadata["noelle.prof.total_weight"] = data.total_weight


def read_embedded_counts(module: Module) -> dict[int, int]:
    """Recover per-instruction counts from embedded metadata."""
    counts: dict[int, int] = {}
    for fn in module.defined_functions():
        for inst in fn.instructions():
            if PROFILE_COUNT_KEY in inst.metadata:
                counts[id(inst)] = int(inst.metadata[PROFILE_COUNT_KEY])
    return counts
