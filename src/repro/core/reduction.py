"""The reduction abstraction (Table 1, "RD").

Identifies loop variables whose loop-carried dependence is *reducible*:
an accumulation ``s = s <op> work(...)`` through a commutative-associative
operator.  Such an SCC can be parallelized by cloning the accumulator per
core and combining the partial results after the loop — which is what the
DOALL/HELIX task generators do with this descriptor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..analysis.loopinfo import NaturalLoop
from ..ir.instructions import BinaryOp, Instruction, Phi
from ..ir.values import ConstantFloat, ConstantInt, Value

if TYPE_CHECKING:  # pragma: no cover
    from .sccdag import SCC

#: Commutative-associative opcodes and their identity element.
REDUCIBLE_OPS: dict[str, int | float] = {
    "add": 0,
    "mul": 1,
    "and": -1,  # all-ones identity for bitwise and
    "or": 0,
    "xor": 0,
    "fadd": 0.0,
    "fmul": 1.0,
}


class ReductionDescriptor:
    """Everything needed to materialize a parallel reduction."""

    def __init__(
        self,
        phi: Phi,
        operator: str,
        accumulators: list[BinaryOp],
        loop: NaturalLoop,
    ):
        self.phi = phi
        self.operator = operator
        self.accumulators = accumulators
        self.loop = loop

    @property
    def identity(self) -> int | float:
        return REDUCIBLE_OPS[self.operator]

    def identity_constant(self) -> Value:
        ty = self.phi.type
        if ty.is_float():
            return ConstantFloat(ty, float(self.identity))
        return ConstantInt(ty, int(self.identity))

    def initial_value(self) -> Value:
        """The accumulator's value entering the loop."""
        for value, pred in self.phi.incoming():
            if not self.loop.contains_block(pred):
                return value
        raise ValueError("reduction phi has no entry edge")

    def exit_value(self) -> Instruction:
        """The value holding the accumulated result at loop exits."""
        for value, pred in self.phi.incoming():
            if self.loop.contains_block(pred) and isinstance(value, Instruction):
                return value
        raise ValueError("reduction phi has no latch edge")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<reduction {self.operator} over {self.phi.ref()}>"


def match_reduction(scc: "SCC", loop: NaturalLoop) -> ReductionDescriptor | None:
    """Try to describe ``scc`` as a reduction; None if it is not one.

    The pattern is a header phi whose loop-carried cycle consists only of
    commutative-associative binary operations over the same operator, where
    no intermediate value of the cycle is observed elsewhere inside the
    loop (the running value must not be *used*, only accumulated).
    """
    if scc.has_memory_dependences():
        return None
    phis = [i for i in scc.instructions if isinstance(i, Phi)]
    header_phis = [p for p in phis if p.parent is loop.header]
    if len(header_phis) != 1 or len(phis) != 1:
        return None
    phi = header_phis[0]
    chain = [i for i in scc.instructions if i is not phi]
    if not chain:
        return None
    operator = None
    for inst in chain:
        if not isinstance(inst, BinaryOp) or inst.opcode not in REDUCIBLE_OPS:
            return None
        if operator is None:
            operator = inst.opcode
        elif inst.opcode != operator:
            return None
    assert operator is not None
    scc_ids = {id(i) for i in scc.instructions}
    # Intermediate values must stay inside the cycle within the loop; uses
    # outside the loop (live-outs) are fine — the combiner rewires them.
    for inst in scc.instructions:
        for user in inst.users():
            if not isinstance(user, Instruction):
                continue
            if id(user) in scc_ids:
                continue
            if loop.contains(user):
                return None
    # Each chain operation must take the running value on exactly one side.
    running = {id(phi)}
    for inst in chain:
        running.add(id(inst))
    for inst in chain:
        lhs_in = id(inst.lhs) in running
        rhs_in = id(inst.rhs) in running
        if lhs_in == rhs_in:  # both or neither: not a simple accumulation
            return None
    return ReductionDescriptor(phi, operator, list(chain), loop)
