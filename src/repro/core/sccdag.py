"""The augmented SCCDAG abstraction (Table 1, "aSCCDAG").

Condenses a loop's dependence graph into strongly connected components
(Tarjan) and classifies every SCC by the relation between the dynamic
instances of its instructions across iterations of one loop invocation:

* **Independent** — no instance depends on another instance (no
  loop-carried edge touches the SCC internally): HELIX/DOALL can run its
  instances fully in parallel.
* **Reducible** — instances depend on each other, but only through a
  reduction (e.g. ``s += work(d)``): cloning the accumulator removes the
  dependence; the reduction descriptor is attached to the node.
* **Sequential** — instances must execute in iteration order.
"""

from __future__ import annotations

from typing import Iterator

from ..analysis.loopinfo import NaturalLoop
from ..ir.instructions import Instruction
from ..perf import STATS
from .depgraph import DependenceGraph, DGEdge
from .pdg import LoopDG
from .reduction import ReductionDescriptor, match_reduction


class SCC:
    """One strongly connected component of a loop dependence graph."""

    INDEPENDENT = "independent"
    REDUCIBLE = "reducible"
    SEQUENTIAL = "sequential"

    def __init__(self, instructions: list[Instruction]):
        self.instructions = instructions
        self._ids = {id(i) for i in instructions}
        self.category = SCC.INDEPENDENT
        self.reduction: ReductionDescriptor | None = None
        #: True when this SCC embodies an affine induction variable: its
        #: instances are computable from the iteration number alone, so it
        #: is Independent even though it has a carried register dependence.
        self.is_induction = False
        #: Loop-carried edges internal to this SCC.
        self.carried_edges: list[DGEdge[Instruction]] = []

    def contains(self, inst: Instruction) -> bool:
        return id(inst) in self._ids

    def is_independent(self) -> bool:
        return self.category == SCC.INDEPENDENT

    def is_reducible(self) -> bool:
        return self.category == SCC.REDUCIBLE

    def is_sequential(self) -> bool:
        return self.category == SCC.SEQUENTIAL

    def has_memory_dependences(self) -> bool:
        return any(e.is_memory for e in self.carried_edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SCC {self.category} ({len(self.instructions)} insts)>"


class SCCDAG(DependenceGraph[SCC]):
    """The DAG of SCCs of one loop, with per-node classification."""

    def __init__(self, loop_dg: LoopDG, loop: NaturalLoop | None = None):
        super().__init__()
        self.loop_dg = loop_dg
        self.loop = loop or loop_dg.loop
        self.sccs: list[SCC] = []
        self._scc_of: dict[int, SCC] = {}
        with STATS.timer("sccdag.build"):
            self._condense()
            self._classify()

    # -- condensation ---------------------------------------------------------------
    def _condense(self) -> None:
        internal = [n.value for n in self.loop_dg.internal_nodes()]
        internal_ids = {id(v) for v in internal}
        successors: dict[int, list[Instruction]] = {id(v): [] for v in internal}
        for edge in self.loop_dg.edges():
            if id(edge.src.value) in internal_ids and id(edge.dst.value) in internal_ids:
                successors[id(edge.src.value)].append(edge.dst.value)
        components = _tarjan(internal, successors)
        for component in components:
            scc = SCC(component)
            self.sccs.append(scc)
            self.add_node(scc, internal=True)
            for inst in component:
                self._scc_of[id(inst)] = scc
        # DAG edges between distinct SCCs; carried edges recorded per SCC.
        seen_pairs: set[tuple[int, int]] = set()
        for edge in self.loop_dg.edges():
            src_scc = self._scc_of.get(id(edge.src.value))
            dst_scc = self._scc_of.get(id(edge.dst.value))
            if src_scc is None or dst_scc is None:
                continue
            if src_scc is dst_scc:
                if edge.is_loop_carried:
                    src_scc.carried_edges.append(edge)
                continue
            if edge.is_loop_carried:
                # A carried edge between two SCCs still orders their
                # instances; record it on the consumer side.
                dst_scc.carried_edges.append(edge)
            pair = (id(src_scc), id(dst_scc))
            if pair not in seen_pairs:
                seen_pairs.add(pair)
                self.add_edge(src_scc, dst_scc, edge.kind, edge.data_kind,
                              edge.is_memory, edge.is_must, edge.is_loop_carried)

    # -- classification ----------------------------------------------------------------
    def _classify(self) -> None:
        from ..analysis.scev import SCEVAddRec, ScalarEvolution

        scev = ScalarEvolution(self.loop)
        for scc in self.sccs:
            if not scc.carried_edges:
                scc.category = SCC.INDEPENDENT
                continue
            if self._is_induction_scc(scc, scev):
                # Affine IVs are re-computable per iteration: Independent.
                scc.category = SCC.INDEPENDENT
                scc.is_induction = True
                continue
            reduction = match_reduction(scc, self.loop)
            if reduction is not None:
                scc.category = SCC.REDUCIBLE
                scc.reduction = reduction
            else:
                scc.category = SCC.SEQUENTIAL

    def _is_induction_scc(self, scc: SCC, scev) -> bool:
        """Is this SCC a governing/plain affine IV cycle?

        The canonical governing-IV SCC contains the header phi, its update
        arithmetic, the exit compare against a loop-invariant bound, and
        the exiting branch (pulled in by the control-dependence back edge).
        Every instance is computable from the iteration number alone.
        """
        from ..analysis.scev import SCEVAddRec
        from ..ir.instructions import BinaryOp, Cast, CmpInst, Phi, TerminatorInst

        if scc.has_memory_dependences():
            return False
        saw_addrec = False
        for inst in scc.instructions:
            if isinstance(inst, Phi):
                if not isinstance(scev.evolution_of(inst), SCEVAddRec):
                    return False
                saw_addrec = True
            elif isinstance(inst, BinaryOp):
                from ..analysis.scev import evolution_is_invariant

                evolution = scev.evolution_of(inst)
                if evolution is None:
                    return False
                if not isinstance(evolution, SCEVAddRec) and not (
                    evolution_is_invariant(evolution)
                ):
                    return False
            elif isinstance(inst, CmpInst):
                if not self._compares_iv_to_invariant(inst, scev):
                    return False
            elif isinstance(inst, (Cast, TerminatorInst)):
                continue
            else:
                return False
        return saw_addrec

    def _compares_iv_to_invariant(self, compare, scev) -> bool:
        from ..analysis.scev import SCEVAddRec, evolution_is_invariant
        from ..ir.values import ConstantInt

        for operand in (compare.lhs, compare.rhs):
            if isinstance(operand, ConstantInt):
                continue
            if isinstance(operand, Instruction) and self.loop.contains(operand):
                evolution = scev.evolution_of(operand)
                if not isinstance(evolution, SCEVAddRec) and not (
                    evolution_is_invariant(evolution)
                ):
                    return False
            # Values from outside the loop are invariant by construction.
        return True

    # -- queries --------------------------------------------------------------------
    def scc_of(self, inst: Instruction) -> SCC | None:
        return self._scc_of.get(id(inst))

    def sequential_sccs(self) -> list[SCC]:
        return [s for s in self.sccs if s.is_sequential()]

    def reducible_sccs(self) -> list[SCC]:
        return [s for s in self.sccs if s.is_reducible()]

    def independent_sccs(self) -> list[SCC]:
        return [s for s in self.sccs if s.is_independent()]

    def topological_order(self) -> list[SCC]:
        """SCCs ordered so every DAG edge goes forward — DSWP's stage order."""
        in_degree: dict[int, int] = {id(s): 0 for s in self.sccs}
        adjacency: dict[int, list[SCC]] = {id(s): [] for s in self.sccs}
        for edge in self.edges():
            adjacency[id(edge.src.value)].append(edge.dst.value)
            in_degree[id(edge.dst.value)] += 1
        ready = [s for s in self.sccs if in_degree[id(s)] == 0]
        order: list[SCC] = []
        while ready:
            scc = ready.pop(0)
            order.append(scc)
            for succ in adjacency[id(scc)]:
                in_degree[id(succ)] -= 1
                if in_degree[id(succ)] == 0:
                    ready.append(succ)
        assert len(order) == len(self.sccs), "SCCDAG has a cycle"
        return order


def _tarjan(
    values: list[Instruction], successors: dict[int, list[Instruction]]
) -> list[list[Instruction]]:
    """Iterative Tarjan SCC; components returned in reverse topological order."""
    index_counter = 0
    indices: dict[int, int] = {}
    lowlinks: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[Instruction] = []
    components: list[list[Instruction]] = []

    for root in values:
        if id(root) in indices:
            continue
        work: list[tuple[Instruction, int]] = [(root, 0)]
        while work:
            value, child_index = work[-1]
            if child_index == 0:
                indices[id(value)] = index_counter
                lowlinks[id(value)] = index_counter
                index_counter += 1
                stack.append(value)
                on_stack.add(id(value))
            advanced = False
            children = successors.get(id(value), [])
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if id(child) not in indices:
                    work[-1] = (value, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if id(child) in on_stack:
                    lowlinks[id(value)] = min(lowlinks[id(value)], indices[id(child)])
            if advanced:
                continue
            work.pop()
            if lowlinks[id(value)] == indices[id(value)]:
                component: list[Instruction] = []
                while True:
                    node = stack.pop()
                    on_stack.discard(id(node))
                    component.append(node)
                    if node is value:
                        break
                components.append(component)
            if work:
                parent, _ = work[-1]
                lowlinks[id(parent)] = min(lowlinks[id(parent)], lowlinks[id(value)])
    return components
