"""The scheduler abstraction (Table 1, "SCD").

Moves instructions within and between basic blocks while preserving the
original semantics, with legality decided by the PDG: an instruction may
move only where all its dependences (register, memory, and control) remain
satisfied.  The abstraction is a hierarchy:

* :class:`Scheduler` — the generic mover with PDG-checked legality;
* :class:`BasicBlockScheduler` — reorders within one block (dependence-
  respecting list scheduling);
* :class:`LoopScheduler` — loop-aware specializations, e.g. shrinking a
  loop header by sinking instructions the header does not need (HELIX uses
  this to shorten sequential segments).
"""

from __future__ import annotations

from ..analysis.dominators import DominatorTree
from ..analysis.loopinfo import NaturalLoop
from ..ir.instructions import Instruction, Phi, TerminatorInst
from ..ir.module import BasicBlock, Function
from .pdg import PDG


class Scheduler:
    """Generic PDG-backed instruction mover."""

    def __init__(self, fn: Function, pdg: PDG):
        self.fn = fn
        self.pdg = pdg

    # -- legality -----------------------------------------------------------------
    def can_move_to_end(self, inst: Instruction, target: BasicBlock) -> bool:
        """May ``inst`` move to the end of ``target`` (before its terminator)?"""
        if isinstance(inst, (Phi, TerminatorInst)):
            return False
        dom = DominatorTree(self.fn)
        # Every producer must dominate the new position.
        for edge in self.pdg.dependences_of(inst):
            producer = edge.src.value
            if not isinstance(producer, Instruction):
                continue
            if producer is inst:
                continue
            if edge.is_control():
                # Control producers must still control the target equally;
                # conservatively require the producer to dominate the target.
                if not dom.dominates_block(producer.parent, target):
                    return False
                continue
            if producer.parent is target:
                continue  # stays before the end position
            if not dom.dominates_block(producer.parent, target):
                return False
        # Every consumer must still be dominated by the new position.
        for edge in self.pdg.dependents_of(inst):
            consumer = edge.dst.value
            if not isinstance(consumer, Instruction) or consumer is inst:
                continue
            if consumer.parent is target:
                # Moving to the end of the consumer's block would put the
                # producer after it.
                if not isinstance(consumer, TerminatorInst):
                    return False
                continue
            if not dom.dominates_block(target, consumer.parent):
                return False
        return True

    def move_to_end(self, inst: Instruction, target: BasicBlock) -> bool:
        """Move when legal; returns whether the move happened."""
        if not self.can_move_to_end(inst, target):
            return False
        inst.move_to_end(target)
        return True


class BasicBlockScheduler(Scheduler):
    """Reorders the instructions of one block respecting dependences."""

    def schedule_block(
        self, block: BasicBlock, priority=None
    ) -> bool:
        """Topologically re-sort the block's body.

        ``priority(inst) -> int`` breaks ties; lower runs earlier.  Returns
        True when the order changed.  Phis stay at the top and the
        terminator at the bottom; memory operations keep their relative
        order unless the PDG proves independence.
        """
        body = [
            i
            for i in block.instructions
            if not isinstance(i, (Phi, TerminatorInst))
        ]
        if len(body) < 2:
            return False
        position = {id(inst): index for index, inst in enumerate(body)}
        successors: dict[int, list[Instruction]] = {id(i): [] for i in body}
        in_degree: dict[int, int] = {id(i): 0 for i in body}
        for inst in body:
            for edge in self.pdg.dependents_of(inst):
                consumer = edge.dst.value
                if id(consumer) in position and consumer is not inst:
                    successors[id(inst)].append(consumer)
                    in_degree[id(consumer)] += 1
        if priority is None:
            priority = lambda inst: position[id(inst)]
        ready = sorted(
            (i for i in body if in_degree[id(i)] == 0),
            key=lambda i: (priority(i), position[id(i)]),
        )
        order: list[Instruction] = []
        while ready:
            inst = ready.pop(0)
            order.append(inst)
            for succ in successors[id(inst)]:
                in_degree[id(succ)] -= 1
                if in_degree[id(succ)] == 0:
                    ready.append(succ)
            ready.sort(key=lambda i: (priority(i), position[id(i)]))
        assert len(order) == len(body), "dependence cycle inside one block"
        if order == body:
            return False
        phis = [i for i in block.instructions if isinstance(i, Phi)]
        terminator = [i for i in block.instructions if isinstance(i, TerminatorInst)]
        block.instructions = phis + order + terminator
        return True


class LoopScheduler(Scheduler):
    """Loop-aware scheduling: shrink headers, sink work into the body."""

    def shrink_header(self, loop: NaturalLoop) -> int:
        """Sink header instructions the header itself does not need.

        An instruction can leave the header when the header's phis and
        terminator do not (transitively) depend on it and its consumers all
        sit in blocks dominated by the sink target.  HELIX uses this to
        minimize the code that must run in the iteration-ordering critical
        path.  Returns the number of instructions moved.
        """
        header = loop.header
        body_successors = [
            s for s in header.successors() if loop.contains_block(s)
        ]
        if len(body_successors) != 1:
            return 0
        target = body_successors[0]
        if len(target.predecessors()) != 1:
            return 0  # the target must be reached only from the header
        moved = 0
        needed = self._needed_by_header(header)
        # Sink consumers before producers: iterate bottom-up to a fixpoint.
        progress = True
        while progress:
            progress = False
            for inst in reversed(list(header.instructions)):
                if isinstance(inst, (Phi, TerminatorInst)):
                    continue
                if id(inst) in needed:
                    continue
                if self._sink(inst, target):
                    moved += 1
                    progress = True
        return moved

    def _needed_by_header(self, header: BasicBlock) -> set[int]:
        """ids of instructions the header's control decision depends on."""
        needed: set[int] = set()
        worklist: list[Instruction] = []
        terminator = header.terminator
        if terminator is not None:
            worklist.append(terminator)
        for phi in header.phis():
            worklist.append(phi)
        while worklist:
            inst = worklist.pop()
            for operand in inst.operands:
                if (
                    isinstance(operand, Instruction)
                    and operand.parent is header
                    and id(operand) not in needed
                ):
                    needed.add(id(operand))
                    worklist.append(operand)
        return needed

    def _sink(self, inst: Instruction, target: BasicBlock) -> bool:
        # Sinking moves the instruction *down*; memory writes may not jump
        # over other memory operations, which the PDG edges encode.
        for edge in self.pdg.dependents_of(inst):
            consumer = edge.dst.value
            if isinstance(consumer, Instruction) and consumer.parent is inst.parent:
                if not isinstance(consumer, TerminatorInst):
                    return False  # a same-block consumer would be orphaned
        if not self.can_move_to_end(inst, target):
            return False
        # Position at the top of the target instead of the end so the
        # original intra-body order is preserved.
        inst.parent.instructions.remove(inst)
        first = target.first_non_phi()
        index = target.instructions.index(first) if first is not None else 0
        target.instructions.insert(index, inst)
        inst.parent = target
        return True
