"""The task abstraction (Table 1, "T").

A task is a code region that runs sequentially on one thread: an IR
function taking an environment pointer (plus scheduling parameters such as
the core id), created by partitioning an aSCCDAG's nodes.  At runtime
tasks are submitted to the simulated thread pool
(:mod:`repro.runtime.threadpool`), which runs them on virtual cores; value
forwarding between tasks happens through their environments.
"""

from __future__ import annotations

from .. import ir
from .environment import Environment


class Task:
    """One schedulable sequential code region."""

    def __init__(self, function: ir.Function, environment: Environment):
        #: The generated task body: signature ``(env*, core_id, num_cores)``.
        self.function = function
        self.environment = environment
        #: Map from original instructions to their clones inside the task.
        self.clones: dict[int, ir.Instruction] = {}
        #: Free-form attributes set by the parallelization technique
        #: (e.g. the sequential segments for HELIX, queues for DSWP).
        self.attributes: dict[str, object] = {}

    def clone_of(self, inst: ir.Instruction) -> ir.Instruction | None:
        return self.clones.get(id(inst))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task @{self.function.name}>"


def make_task_function(
    module: ir.Module, env: Environment, name_hint: str
) -> ir.Function:
    """Declare an empty task function with the canonical task signature."""
    fnty = ir.FunctionType(
        ir.VOID, [env.pointer_type(), ir.I64, ir.I64]
    )
    index = 0
    name = name_hint
    while name in module.functions:
        index += 1
        name = f"{name_hint}{index}"
    return module.add_function(name, fnty, ["env", "core_id", "num_cores"])
