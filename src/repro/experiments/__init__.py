"""repro.experiments — data producers for every table and figure.

Each function regenerates one piece of the paper's evaluation; the
``benchmarks/`` harness prints them in the paper's format and asserts the
qualitative claims, and EXPERIMENTS.md records paper-vs-measured.
"""

from .figures import fig3_dependences, fig4_invariants, governing_iv_counts
from .loc import count_loc, count_loc_many
from .speedups import fig5_speedups, sec45_binary_size, spec_speedups
from .tables import (
    ALL_ABSTRACTIONS,
    USAGE_MATRIX,
    abstraction_usage_counts,
    table1,
    table2,
    table3,
    table4,
)

__all__ = [
    "fig3_dependences",
    "fig4_invariants",
    "governing_iv_counts",
    "count_loc",
    "count_loc_many",
    "fig5_speedups",
    "sec45_binary_size",
    "spec_speedups",
    "ALL_ABSTRACTIONS",
    "USAGE_MATRIX",
    "abstraction_usage_counts",
    "table1",
    "table2",
    "table3",
    "table4",
]
