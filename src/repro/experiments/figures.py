"""Figure 3 / Figure 4 / governing-IV-count reproductions."""

from __future__ import annotations

from ..analysis.aa import BasicAliasAnalysis
from ..analysis.dominators import DominatorTree
from ..analysis.loopinfo import LoopInfo
from ..analysis.pointsto import AndersenAliasAnalysis
from ..baselines.induction_llvm import find_governing_iv_llvm
from ..baselines.invariants_llvm import invariants_llvm
from ..core.noelle import Noelle
from ..core.pdg import PDG
from ..workloads import Workload, all_workloads, suite


def fig3_dependences(workloads: list[Workload] | None = None) -> list[dict]:
    """Figure 3: fraction of potential memory dependences disproved.

    Per suite: the same PDG construction with LLVM-grade AA vs NOELLE's
    (Andersen/SCAF-grade) AA.  The paper's claim: LLVM disproves a
    significant fraction; NOELLE disproves dramatically more.
    """
    workloads = workloads if workloads is not None else all_workloads()
    per_suite: dict[str, dict[str, int]] = {}
    for workload in workloads:
        module = workload.compile()
        llvm_pdg = PDG(module, BasicAliasAnalysis())
        noelle_pdg = PDG(module, AndersenAliasAnalysis(module))
        bucket = per_suite.setdefault(
            workload.suite, {"queries": 0, "llvm": 0, "noelle": 0}
        )
        bucket["queries"] += llvm_pdg.memory_queries
        bucket["llvm"] += llvm_pdg.memory_disproved
        bucket["noelle"] += noelle_pdg.memory_disproved
    rows = []
    for suite_name, bucket in sorted(per_suite.items()):
        queries = bucket["queries"] or 1
        rows.append({
            "suite": suite_name,
            "queries": bucket["queries"],
            "llvm_disproved": bucket["llvm"],
            "noelle_disproved": bucket["noelle"],
            "llvm_pct": 100.0 * bucket["llvm"] / queries,
            "noelle_pct": 100.0 * bucket["noelle"] / queries,
        })
    return rows


def fig4_invariants(workloads: list[Workload] | None = None) -> list[dict]:
    """Figure 4: loop invariants found, LLVM (Algorithm 1) vs NOELLE
    (Algorithm 2), per benchmark."""
    workloads = workloads if workloads is not None else all_workloads()
    rows = []
    for workload in workloads:
        module = workload.compile()
        noelle = Noelle(module)
        llvm_count = 0
        noelle_count = 0
        basic_aa = BasicAliasAnalysis()
        for fn in module.defined_functions():
            dom = DominatorTree(fn)
            info = LoopInfo(fn, dom)
            for natural in info.loops():
                llvm_count += len(invariants_llvm(natural, dom, basic_aa))
                loop = noelle.loop_of(natural)
                noelle_count += len(loop.invariants.invariants())
        rows.append({
            "benchmark": workload.name,
            "suite": workload.suite,
            "llvm_invariants": llvm_count,
            "noelle_invariants": noelle_count,
        })
    return rows


def governing_iv_counts(workloads: list[Workload] | None = None) -> dict:
    """Section 4.3's governing-IV experiment: LLVM 11 vs NOELLE 385.

    Counts loops whose governing IV each side detects.  LLVM's count is
    tiny because it requires the do-while shape; NOELLE's is large because
    the aSCCDAG-based detector is shape-independent.
    """
    workloads = workloads if workloads is not None else all_workloads()
    llvm_total = 0
    noelle_total = 0
    loops_total = 0
    per_benchmark = []
    for workload in workloads:
        module = workload.compile()
        noelle = Noelle(module)
        llvm_count = 0
        noelle_count = 0
        for fn in module.defined_functions():
            for natural in LoopInfo(fn).loops():
                loops_total += 1
                if find_governing_iv_llvm(natural) is not None:
                    llvm_count += 1
                loop = noelle.loop_of(natural)
                if loop.governing_iv() is not None:
                    noelle_count += 1
        llvm_total += llvm_count
        noelle_total += noelle_count
        per_benchmark.append({
            "benchmark": workload.name,
            "llvm": llvm_count,
            "noelle": noelle_count,
        })
    return {
        "llvm_total": llvm_total,
        "noelle_total": noelle_total,
        "loops_total": loops_total,
        "per_benchmark": per_benchmark,
        "paper_llvm_total": 11,
        "paper_noelle_total": 385,
    }
