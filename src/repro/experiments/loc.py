"""Lines-of-code accounting for the Table 1/2/3 reproductions.

Counts non-blank, non-comment source lines of this repository's modules,
mirroring how the paper reports LoC for NOELLE's abstractions (Table 1),
its tools (Table 2), and the custom tools with and without NOELLE
(Table 3).
"""

from __future__ import annotations

import os

import repro

_PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))


def count_loc(relative_path: str) -> int:
    """Non-blank, non-comment lines of one module (docstrings excluded)."""
    path = os.path.join(_PACKAGE_ROOT, relative_path)
    with open(path) as handle:
        text = handle.read()
    lines = 0
    in_docstring = False
    docstring_delim = ""
    for raw in text.splitlines():
        line = raw.strip()
        if in_docstring:
            if docstring_delim in line:
                in_docstring = False
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith('"""') or line.startswith("'''"):
            docstring_delim = line[:3]
            rest = line[3:]
            if docstring_delim not in rest:
                in_docstring = True
            continue
        lines += 1
    return lines


def count_loc_many(relative_paths: list[str]) -> int:
    return sum(count_loc(p) for p in relative_paths)


#: Table 1 — NOELLE abstractions and the modules implementing them here.
ABSTRACTION_MODULES: dict[str, list[str]] = {
    "PDG": ["core/depgraph.py", "core/pdg.py"],
    "aSCCDAG": ["core/sccdag.py"],
    "Call graph (CG)": ["core/callgraph.py"],
    "Environment (ENV)": ["core/environment.py"],
    "Task (T)": ["core/task.py"],
    "Data-flow engine (DFE)": ["core/dataflow.py"],
    "Loop structure (LS)": ["core/loopstructure.py"],
    "Profiler (PRO)": ["core/profiler.py"],
    "Scheduler (SCD)": ["core/scheduler.py"],
    "Invariant (INV)": ["core/invariants.py"],
    "Induction variable (IV)": ["core/induction.py"],
    "IV stepper (IVS)": ["core/ivstepper.py"],
    "Reduction (RD)": ["core/reduction.py"],
    "Loop (L)": ["core/loop.py"],
    "Forest (FR)": ["core/forest.py"],
    "Loop builder (LB)": ["core/loopbuilder.py"],
    "Islands (ISL)": ["core/islands.py"],
    "Architecture (AR)": ["core/architecture.py"],
    "Others (IDs, facade, partitioner)": ["core/metadata.py", "core/noelle.py",
                                          "core/partitioner.py"],
}

#: Table 1 — the paper's LoC per abstraction, for side-by-side printing.
ABSTRACTION_PAPER_LOC: dict[str, int] = {
    "PDG": 6775,
    "aSCCDAG": 4517,
    "Call graph (CG)": 620,
    "Environment (ENV)": 991,
    "Task (T)": 297,
    "Data-flow engine (DFE)": 332,
    "Loop structure (LS)": 301,
    "Profiler (PRO)": 1625,
    "Scheduler (SCD)": 1523,
    "Invariant (INV)": 137,
    "Induction variable (IV)": 352,
    "IV stepper (IVS)": 425,
    "Reduction (RD)": 868,
    "Loop (L)": 1508,
    "Forest (FR)": 202,
    "Loop builder (LB)": 4535,
    "Islands (ISL)": 56,
    "Architecture (AR)": 381,
    "Others (IDs, facade, partitioner)": 691,
}

#: Table 2 — noelle-* tools and their modules here.
TOOL_MODULES: dict[str, list[str]] = {
    "noelle-whole-IR": ["tools/whole_ir.py"],
    "noelle-rm-lc-dependences": ["tools/rm_lc_dependences.py"],
    "noelle-prof-coverage + meta-prof-embed": ["core/profiler.py"],
    "noelle-meta-pdg-embed": ["tools/meta_pdg_embed.py"],
    "noelle-load/arch/linker/bin": ["tools/pipeline.py"],
}

#: Table 2 — the paper's LoC per tool.
TOOL_PAPER_LOC: dict[str, int] = {
    "noelle-whole-IR": 1522,
    "noelle-rm-lc-dependences": 964,
    "noelle-prof-coverage + meta-prof-embed": 1761 + 152,
    "noelle-meta-pdg-embed": 451,
    "noelle-load/arch/linker/bin": 12 + 259 + 59 + 15,
}

#: Table 3 — the ten custom tools: our NOELLE-based module(s), plus a
#: standalone counterpart module when we implemented one directly.
CUSTOM_TOOL_MODULES: dict[str, dict] = {
    "TIME": {
        "noelle": ["xforms/timesqueezer.py"],
        "paper_llvm": 510, "paper_noelle": 92,
    },
    "COOS": {
        "noelle": ["xforms/coos.py"],
        "paper_llvm": 1641, "paper_noelle": 495,
    },
    "LICM": {
        "noelle": ["xforms/licm.py"],
        "standalone": ["baselines/licm_llvm.py", "baselines/invariants_llvm.py"],
        "paper_llvm": 2317, "paper_noelle": 170,
    },
    "DOALL": {
        "noelle": ["xforms/doall.py"],
        "paper_llvm": 5512, "paper_noelle": 321,
    },
    "DEAD": {
        "noelle": ["xforms/dead.py"],
        "paper_llvm": 7512, "paper_noelle": 61,
    },
    "DSWP": {
        "noelle": ["xforms/dswp.py"],
        "paper_llvm": 8525, "paper_noelle": 775,
    },
    "HELIX": {
        "noelle": ["xforms/helix.py"],
        "paper_llvm": 15453, "paper_noelle": 958,
    },
    "PRVJ": {
        "noelle": ["xforms/prvjeeves.py"],
        "paper_llvm": 17863, "paper_noelle": 456,
    },
    "CARAT": {
        "noelle": ["xforms/carat.py"],
        "paper_llvm": 21899, "paper_noelle": 595,
    },
    "PERS": {
        "noelle": ["xforms/perspective.py"],
        "paper_llvm": 33998, "paper_noelle": 22706,
    },
}

#: Shared parallelizer machinery charged to each parallelizing tool when
#: estimating what a standalone implementation would additionally inline.
PARALLELIZER_SHARED = ["xforms/parallelizer_common.py"]

#: The NOELLE-layer modules a standalone (LLVM-only) build of each custom
#: tool would have to re-implement privately — the basis of the modeled
#: "LLVM" LoC for tools without a hand-written standalone counterpart.
STANDALONE_DEPENDENCIES: dict[str, list[str]] = {
    "TIME": ["core/islands.py", "core/dataflow.py", "core/scheduler.py",
             "core/depgraph.py", "core/pdg.py"],
    "COOS": ["core/dataflow.py", "core/callgraph.py", "core/forest.py",
             "core/loopstructure.py"],
    "DOALL": ["core/depgraph.py", "core/pdg.py", "core/sccdag.py",
              "core/environment.py", "core/task.py", "core/induction.py",
              "core/ivstepper.py", "core/reduction.py", "core/loop.py",
              "core/loopbuilder.py", "core/loopstructure.py"],
    "DEAD": ["core/callgraph.py", "core/islands.py", "analysis/pointsto.py"],
    "DSWP": ["core/depgraph.py", "core/pdg.py", "core/sccdag.py",
             "core/environment.py", "core/task.py", "core/induction.py",
             "core/reduction.py", "core/loop.py", "core/loopbuilder.py",
             "core/loopstructure.py", "core/partitioner.py"],
    "HELIX": ["core/depgraph.py", "core/pdg.py", "core/sccdag.py",
              "core/environment.py", "core/task.py", "core/induction.py",
              "core/ivstepper.py", "core/reduction.py", "core/loop.py",
              "core/loopbuilder.py", "core/loopstructure.py",
              "core/scheduler.py", "core/dataflow.py", "core/profiler.py",
              "core/architecture.py", "core/forest.py"],
    "PRVJ": ["core/depgraph.py", "core/pdg.py", "core/callgraph.py",
             "core/dataflow.py", "core/profiler.py", "core/loop.py",
             "core/loopbuilder.py", "core/invariants.py",
             "core/induction.py", "core/scheduler.py",
             "analysis/pointsto.py"],
    "CARAT": ["core/depgraph.py", "core/pdg.py", "core/sccdag.py",
              "core/invariants.py", "core/dataflow.py", "core/profiler.py",
              "core/loop.py", "core/loopbuilder.py", "core/induction.py",
              "core/scheduler.py", "analysis/pointsto.py",
              "analysis/modref.py"],
    "PERS": ["core/depgraph.py", "core/pdg.py", "core/sccdag.py"],
}
