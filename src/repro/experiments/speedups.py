"""Figure 5 / Section 4.4 / Section 4.5 reproductions."""

from __future__ import annotations

from ..baselines.conservative_parallelizer import ConservativeParallelizer
from ..core.noelle import Noelle
from ..core.profiler import Profiler
from ..interp.interp import Interpreter
from ..runtime.machine import ParallelMachine
from ..tools.rm_lc_dependences import remove_loop_carried_dependences
from ..workloads import Workload, all_workloads, suite
from ..xforms.dead import DeadFunctionEliminator
from ..xforms.doall import DOALL
from ..xforms.dswp import DSWP
from ..xforms.helix import HELIX


def _floats_close(a, b, rel: float = 1e-9) -> bool:
    if not isinstance(a, float) or not isinstance(b, float):
        return False
    scale = max(abs(a), abs(b), 1.0)
    return abs(a - b) <= rel * scale


def outputs_equivalent(a: list, b: list) -> bool:
    """Exact for integers; tolerant for floats (parallel reductions
    re-associate floating-point additions, as the paper's runtimes do)."""
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if isinstance(x, float) or isinstance(y, float):
            if not _floats_close(float(x), float(y), rel=1e-6):
                return False
        elif x != y:
            return False
    return True


def _sequential_baseline(workload: Workload):
    module = workload.compile()
    result = Interpreter(module, step_limit=workload.step_limit).run()
    assert result.trapped is None, f"{workload.name}: {result.trapped}"
    return result


def _parallelize_and_run(workload: Workload, technique: str, num_cores: int):
    """Apply one technique and run on the simulated machine.

    Returns (speedup, loops parallelized, output-match) against the
    sequential baseline.
    """
    baseline = _sequential_baseline(workload)
    module = workload.compile()
    if technique in ("gcc", "icc"):
        parallelizer = ConservativeParallelizer(module, num_cores)
        count = parallelizer.run()
    else:
        noelle = Noelle(module)
        profile = Profiler(module).profile()
        noelle.attach_profile(profile)
        remove_loop_carried_dependences(noelle)
        if technique == "doall":
            count = DOALL(noelle, num_cores).run(minimum_hotness=0.02)
        elif technique == "helix":
            count = HELIX(noelle, num_cores).run(minimum_hotness=0.02)
        elif technique == "dswp":
            count = DSWP(noelle, num_stages=4).run(minimum_hotness=0.02)
        else:
            raise ValueError(f"unknown technique {technique}")
    machine = ParallelMachine(module, num_cores=num_cores,
                              step_limit=workload.step_limit * 4)
    result = machine.run()
    assert result.trapped is None, f"{workload.name}/{technique}: {result.trapped}"
    matches = outputs_equivalent(result.output, baseline.output) and (
        result.return_value == baseline.return_value
        or _floats_close(result.return_value, baseline.return_value)
    )
    speedup = baseline.cycles / result.cycles if result.cycles else 0.0
    return speedup, count, matches


FIG5_TECHNIQUES = ("gcc", "icc", "doall", "helix", "dswp")


def _fig5_row(
    task: tuple[Workload, int, tuple[str, ...]]
) -> dict:
    """One benchmark's row (module-level so process pools can pickle it)."""
    workload, num_cores, techniques = task
    row: dict = {"benchmark": workload.name, "suite": workload.suite,
                 "parallel_friendly": workload.parallel_friendly}
    for technique in techniques:
        speedup, count, matches = _parallelize_and_run(
            workload, technique, num_cores
        )
        row[technique] = speedup
        row[f"{technique}_loops"] = count
        row[f"{technique}_correct"] = matches
    return row


def fig5_speedups(
    workloads: list[Workload] | None = None,
    num_cores: int = 12,
    techniques: tuple[str, ...] = FIG5_TECHNIQUES,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 5: speedups over clang (the plain sequential binary) for
    gcc/icc-style auto-parallelization vs the NOELLE-based tools, on the
    PARSEC and MiBench suites.

    Each benchmark is independent (fresh modules, a deterministic
    machine model), so ``jobs=N`` fans the rows out over a supervised
    worker pool (:func:`repro.serve.pool.supervised_map`): order is
    preserved, making the result identical to the sequential run — and
    a worker that dies abruptly costs only its own row, which comes
    back with an ``"error"`` key carrying the structured record while
    every other row's numbers still return.
    """
    if workloads is None:
        workloads = suite("parsec") + suite("mibench")
    tasks = [(workload, num_cores, techniques) for workload in workloads]
    if jobs is not None and jobs > 1 and len(tasks) > 1:
        from ..serve.pool import supervised_map

        rows = []
        for task, outcome in zip(tasks, supervised_map(_fig5_row, tasks, jobs)):
            if outcome.ok:
                rows.append(outcome.value)
            else:
                workload = task[0]
                rows.append({
                    "benchmark": workload.name,
                    "suite": workload.suite,
                    "parallel_friendly": workload.parallel_friendly,
                    "error": outcome.error,
                })
        return rows
    return [_fig5_row(task) for task in tasks]


def spec_speedups(num_cores: int = 12) -> list[dict]:
    """Section 4.4: modest (1–5%) speedups on the SPEC-shaped suite."""
    return fig5_speedups(suite("spec"), num_cores, ("doall", "helix"))


def sec45_binary_size() -> list[dict]:
    """Section 4.5: DEAD shrinks binaries ~6.3% on average beyond -Oz.

    Binary size is proxied by the whole-module IR instruction count (the
    quantity DEAD is specified to reduce).  Each workload is augmented
    with the library functions a real link would drag in, of which only a
    few are reachable — the situation DEAD exploits.
    """
    library_tail = """
int repro_lib_gcd(int a, int b) {
  while (b != 0) { int t = a % b; a = b; b = t; }
  return a;
}
int repro_lib_lcm(int a, int b) { return a / repro_lib_gcd(a, b) * b; }
int repro_lib_parity(int x) {
  int p = 0;
  while (x != 0) { p = p ^ (x & 1); x = (x >> 1) & 2147483647; }
  return p;
}
double repro_lib_norm(double x, double y) { return sqrt(x * x + y * y); }
double repro_lib_clamp(double v, double lo, double hi) {
  if (v < lo) { return lo; }
  if (v > hi) { return hi; }
  return v;
}
int repro_lib_hash(int x) { return (x * 2654435761) % 2147483647; }
"""
    from ..frontend.codegen import compile_source
    from ..interp.interp import run_module

    rows = []
    for workload in all_workloads():
        source = workload.source + library_tail
        module = compile_source(source, workload.name)
        before_result = run_module(module, step_limit=workload.step_limit)
        before = module.num_instructions()
        removed = DeadFunctionEliminator(Noelle(module)).run()
        after = module.num_instructions()
        after_result = run_module(module, step_limit=workload.step_limit)
        assert after_result.output == before_result.output
        rows.append({
            "benchmark": workload.name,
            "size_before": before,
            "size_after": after,
            "removed_functions": len(removed),
            "reduction_pct": 100.0 * (before - after) / before if before else 0.0,
        })
    return rows
