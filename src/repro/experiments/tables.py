"""Table 1/2/3/4 reproductions."""

from __future__ import annotations

from .loc import (
    ABSTRACTION_MODULES,
    ABSTRACTION_PAPER_LOC,
    CUSTOM_TOOL_MODULES,
    PARALLELIZER_SHARED,
    STANDALONE_DEPENDENCIES,
    TOOL_MODULES,
    TOOL_PAPER_LOC,
    count_loc_many,
)


def table1() -> list[dict]:
    """Table 1: LoC per NOELLE abstraction (ours vs the paper's)."""
    rows = []
    for name, modules in ABSTRACTION_MODULES.items():
        rows.append({
            "abstraction": name,
            "loc": count_loc_many(modules),
            "paper_loc": ABSTRACTION_PAPER_LOC[name],
        })
    rows.append({
        "abstraction": "TOTAL",
        "loc": sum(r["loc"] for r in rows),
        "paper_loc": 26142,
    })
    return rows


def table2() -> list[dict]:
    """Table 2: LoC per noelle-* tool (ours vs the paper's)."""
    rows = []
    for name, modules in TOOL_MODULES.items():
        rows.append({
            "tool": name,
            "loc": count_loc_many(modules),
            "paper_loc": TOOL_PAPER_LOC[name],
        })
    rows.append({
        "tool": "TOTAL",
        "loc": sum(r["loc"] for r in rows),
        "paper_loc": 5143,
    })
    return rows


#: Tools whose dispatch machinery is shared (charged when standalone).
_PARALLELIZERS = ("DOALL", "HELIX", "DSWP", "PERS")


def table3() -> list[dict]:
    """Table 3: custom tool LoC with NOELLE vs without.

    The "without NOELLE" side is *measured* for tools we implemented
    standalone (LICM) and *modeled* for the rest: the tool's own LoC plus
    the NOELLE-layer modules it would have to inline
    (``STANDALONE_DEPENDENCIES``) — the code a from-scratch LLVM
    implementation re-derives.  Paper numbers are printed alongside.
    """
    rows = []
    for name, spec in CUSTOM_TOOL_MODULES.items():
        noelle_modules = list(spec["noelle"])
        if name in _PARALLELIZERS:
            noelle_loc = count_loc_many(noelle_modules)
            shared = count_loc_many(PARALLELIZER_SHARED)
            # The shared dispatcher machinery is amortized over the four
            # parallelizers; charge each a quarter.
            noelle_loc += shared // 4
        else:
            noelle_loc = count_loc_many(noelle_modules)
        if "standalone" in spec:
            llvm_loc = count_loc_many(spec["standalone"])
            llvm_kind = "measured"
        else:
            deps = STANDALONE_DEPENDENCIES.get(name, [])
            llvm_loc = noelle_loc + count_loc_many(deps)
            if name in _PARALLELIZERS:
                llvm_loc += count_loc_many(PARALLELIZER_SHARED)
            llvm_kind = "modeled"
        reduction = 100.0 * (1.0 - noelle_loc / llvm_loc) if llvm_loc else 0.0
        paper_reduction = 100.0 * (
            1.0 - spec["paper_noelle"] / spec["paper_llvm"]
        )
        rows.append({
            "tool": name,
            "noelle_loc": noelle_loc,
            "llvm_loc": llvm_loc,
            "llvm_kind": llvm_kind,
            "reduction_pct": reduction,
            "paper_noelle_loc": spec["paper_noelle"],
            "paper_llvm_loc": spec["paper_llvm"],
            "paper_reduction_pct": paper_reduction,
        })
    return rows


#: Table 4 — which abstraction each custom tool uses, derived from our
#: implementations (the table4 test verifies every claim against the
#: module sources).  The paper's matrix is reproduced in spirit — every
#: abstraction serves several heterogeneous tools — with small per-tool
#: differences where our implementation factored work differently
#: (documented in EXPERIMENTS.md).
USAGE_MATRIX: dict[str, set[str]] = {
    "HELIX": {"PDG", "aSCCDAG", "ENV", "T", "DFE", "PRO", "SCD", "L", "LB",
              "IV", "IVS", "RD", "AR", "LS"},
    "DSWP": {"PDG", "aSCCDAG", "ENV", "T", "PRO", "L", "LB", "IV", "RD",
             "AR", "LS"},
    "CARAT": {"DFE", "L", "LB", "IV", "INV", "LS"},
    "COOS": {"CG", "DFE", "L", "LB", "LS"},
    "PRVJ": {"PDG", "PRO"},
    "DOALL": {"PDG", "aSCCDAG", "ENV", "T", "PRO", "L", "LB", "IV", "IVS",
              "RD", "LS"},
    "LICM": {"L", "LB", "INV", "FR", "LS"},
    "TIME": {"PDG", "SCD", "L", "FR", "ISL"},
    "DEAD": {"CG", "ISL"},
    "PERS": {"PDG", "aSCCDAG", "IV", "PRO", "LS"},
}

#: The paper's own Table 4, for side-by-side printing in the bench.
PAPER_USAGE_MATRIX: dict[str, set[str]] = {
    "HELIX": {"PDG", "aSCCDAG", "ENV", "T", "DFE", "PRO", "SCD", "L", "LB",
              "IV", "IVS", "INV", "FR", "RD", "AR", "LS"},
    "DSWP": {"PDG", "aSCCDAG", "ENV", "T", "PRO", "SCD", "L", "LB", "IV",
             "IVS", "INV", "FR", "RD", "AR", "LS"},
    "CARAT": {"PDG", "aSCCDAG", "DFE", "PRO", "SCD", "L", "LB", "IV", "INV",
              "LS"},
    "COOS": {"CG", "DFE", "PRO", "L", "LB", "FR", "LS"},
    "PRVJ": {"PDG", "CG", "DFE", "PRO", "SCD", "L", "LB", "IV", "INV", "LS"},
    "DOALL": {"PDG", "aSCCDAG", "ENV", "T", "PRO", "L", "LB", "IV", "IVS",
              "INV", "FR", "RD", "AR", "LS"},
    "LICM": {"L", "LB", "INV", "FR", "LS"},
    "TIME": {"PDG", "DFE", "SCD", "L", "LB", "FR", "ISL", "LS"},
    "DEAD": {"CG", "ISL"},
    "PERS": {"PDG", "aSCCDAG"},
}

ALL_ABSTRACTIONS = (
    "PDG", "aSCCDAG", "CG", "ENV", "T", "DFE", "PRO", "SCD", "L", "LB",
    "IV", "IVS", "INV", "FR", "ISL", "RD", "AR", "LS",
)


def table4() -> dict[str, dict[str, bool]]:
    """Table 4: the abstraction-usage matrix, tool -> {abstraction: used}."""
    return {
        tool: {a: (a in used) for a in ALL_ABSTRACTIONS}
        for tool, used in USAGE_MATRIX.items()
    }


def abstraction_usage_counts() -> dict[str, int]:
    """How many custom tools use each abstraction (the Table 4 claim:
    'each abstraction is used by several custom tools')."""
    counts = {a: 0 for a in ALL_ABSTRACTIONS}
    for used in USAGE_MATRIX.values():
        for abstraction in used:
            counts[abstraction] += 1
    return counts
