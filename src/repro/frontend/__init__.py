"""repro.frontend — MiniC, the workload language (the clang stand-in)."""

from .codegen import CodegenError, compile_source
from .lexer import LexError, tokenize
from .parser import SyntaxErrorMiniC, parse_program

__all__ = [
    "CodegenError",
    "compile_source",
    "LexError",
    "tokenize",
    "SyntaxErrorMiniC",
    "parse_program",
]
