"""Abstract syntax tree for MiniC.

Plain dataclass-style nodes; semantic checks happen during code generation
(:mod:`repro.frontend.codegen`), which is where types are resolved.
"""

from __future__ import annotations


class Node:
    """Base class; carries the source line for diagnostics."""

    def __init__(self, line: int):
        self.line = line


# --------------------------------------------------------------------------- types
class TypeRef(Node):
    """A syntactic type: base name plus pointer depth, e.g. ``int**``."""

    def __init__(self, line: int, base: str, pointer_depth: int = 0,
                 struct_name: str | None = None):
        super().__init__(line)
        self.base = base  # "int" | "double" | "void" | "char" | "struct"
        self.struct_name = struct_name
        self.pointer_depth = pointer_depth

    def __repr__(self) -> str:  # pragma: no cover
        name = f"struct {self.struct_name}" if self.base == "struct" else self.base
        return name + "*" * self.pointer_depth


class FuncPtrTypeRef(Node):
    """A function-pointer type: ``ret (*)(params...)``."""

    def __init__(self, line: int, ret: TypeRef, params: list[TypeRef]):
        super().__init__(line)
        self.ret = ret
        self.params = params


# --------------------------------------------------------------------------- top level
class Program(Node):
    def __init__(self, line: int):
        super().__init__(line)
        self.structs: list[StructDef] = []
        self.globals: list[GlobalDecl] = []
        self.functions: list[FunctionDef] = []


class StructDef(Node):
    def __init__(self, line: int, name: str, fields: list[tuple[TypeRef, str, list[int]]]):
        super().__init__(line)
        self.name = name
        #: (type, field name, array dims — empty for scalars)
        self.fields = fields


class GlobalDecl(Node):
    def __init__(self, line: int, type_ref, name: str, dims: list[int],
                 initializer: "Expr | None"):
        super().__init__(line)
        self.type_ref = type_ref
        self.name = name
        self.dims = dims
        self.initializer = initializer


class Param(Node):
    def __init__(self, line: int, type_ref, name: str):
        super().__init__(line)
        self.type_ref = type_ref
        self.name = name


class FunctionDef(Node):
    def __init__(self, line: int, ret: TypeRef, name: str, params: list[Param],
                 body: "Block | None"):
        super().__init__(line)
        self.ret = ret
        self.name = name
        self.params = params
        self.body = body  # None for forward declarations


# --------------------------------------------------------------------------- statements
class Stmt(Node):
    pass


class Block(Stmt):
    def __init__(self, line: int, statements: list[Stmt]):
        super().__init__(line)
        self.statements = statements


class Declaration(Stmt):
    def __init__(self, line: int, type_ref, name: str, dims: list[int],
                 initializer: "Expr | None"):
        super().__init__(line)
        self.type_ref = type_ref
        self.name = name
        self.dims = dims
        self.initializer = initializer


class Assign(Stmt):
    def __init__(self, line: int, target: "Expr", value: "Expr"):
        super().__init__(line)
        self.target = target
        self.value = value


class ExprStmt(Stmt):
    def __init__(self, line: int, expr: "Expr"):
        super().__init__(line)
        self.expr = expr


class If(Stmt):
    def __init__(self, line: int, cond: "Expr", then: Stmt, otherwise: Stmt | None):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Stmt):
    def __init__(self, line: int, cond: "Expr", body: Stmt):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    def __init__(self, line: int, body: Stmt, cond: "Expr"):
        super().__init__(line)
        self.body = body
        self.cond = cond


class For(Stmt):
    def __init__(self, line: int, init: Stmt | None, cond: "Expr | None",
                 step: Stmt | None, body: Stmt):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    def __init__(self, line: int, value: "Expr | None"):
        super().__init__(line)
        self.value = value


class Break(Stmt):
    pass


class Continue(Stmt):
    pass


class SwitchCase:
    def __init__(self, value: int | None, statements: list[Stmt]):
        self.value = value  # None for default
        self.statements = statements


class SwitchStmt(Stmt):
    def __init__(self, line: int, selector: "Expr", cases: list[SwitchCase]):
        super().__init__(line)
        self.selector = selector
        self.cases = cases


# --------------------------------------------------------------------------- expressions
class Expr(Node):
    pass


class IntLiteral(Expr):
    def __init__(self, line: int, value: int):
        super().__init__(line)
        self.value = value


class FloatLiteral(Expr):
    def __init__(self, line: int, value: float):
        super().__init__(line)
        self.value = value


class NameRef(Expr):
    def __init__(self, line: int, name: str):
        super().__init__(line)
        self.name = name


class BinaryExpr(Expr):
    def __init__(self, line: int, op: str, lhs: Expr, rhs: Expr):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class UnaryExpr(Expr):
    def __init__(self, line: int, op: str, operand: Expr):
        super().__init__(line)
        self.op = op  # "-" | "!" | "*" | "&"
        self.operand = operand


class CallExpr(Expr):
    def __init__(self, line: int, callee: Expr, args: list[Expr]):
        super().__init__(line)
        self.callee = callee
        self.args = args


class IndexExpr(Expr):
    def __init__(self, line: int, base: Expr, index: Expr):
        super().__init__(line)
        self.base = base
        self.index = index


class FieldExpr(Expr):
    def __init__(self, line: int, base: Expr, field: str, arrow: bool):
        super().__init__(line)
        self.base = base
        self.field = field
        self.arrow = arrow  # True for ``->``, False for ``.``


class CastExpr(Expr):
    def __init__(self, line: int, type_ref: TypeRef, operand: Expr):
        super().__init__(line)
        self.type_ref = type_ref
        self.operand = operand


class SizeofExpr(Expr):
    def __init__(self, line: int, type_ref):
        super().__init__(line)
        self.type_ref = type_ref
