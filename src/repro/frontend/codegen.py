"""MiniC → repro IR code generation.

Classic two-pass lowering: declare structs, globals, and function
signatures first, then emit bodies.  Local variables are lowered to
``alloca`` + ``load``/``store``; the :mod:`repro.opt.mem2reg` pass then
promotes them to SSA registers (exactly the clang + ``-mem2reg`` shape the
paper's analyses expect).

Loop shapes are preserved faithfully: ``while``/``for`` produce while-shaped
loops (condition in the header), ``do``/``while`` produces do-while-shaped
loops (condition in the latch).  This distinction is load-bearing for the
governing-induction-variable experiment in Section 4.3.
"""

from __future__ import annotations

from .. import ir
from ..ir.intrinsics import INTRINSICS, declare_intrinsic
from . import ast
from .parser import parse_program


class CodegenError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")


class _LValue:
    """An addressable location (the result of lvalue expressions)."""

    __slots__ = ("pointer",)

    def __init__(self, pointer: ir.Value):
        self.pointer = pointer


class _LoopContext:
    __slots__ = ("break_block", "continue_block")

    def __init__(self, break_block: ir.BasicBlock, continue_block: ir.BasicBlock | None):
        self.break_block = break_block
        self.continue_block = continue_block


def compile_source(source: str, module_name: str = "minic") -> ir.Module:
    """Compile MiniC source text to a verified, SSA-form IR module."""
    from ..opt.mem2reg import promote_allocas_module
    from ..opt.simplify import simplify_module

    program = parse_program(source)
    module = CodeGenerator(module_name).generate(program)
    ir.verify_module(module)
    promote_allocas_module(module)
    simplify_module(module)
    ir.verify_module(module)
    return module


class CodeGenerator:
    def __init__(self, module_name: str = "minic"):
        self.module = ir.Module(module_name)
        self.builder = ir.IRBuilder()
        self.fn: ir.Function | None = None
        self.locals: dict[str, _LValue] = {}
        self.local_types: dict[str, ir.Type] = {}
        self.loop_stack: list[_LoopContext] = []

    # -- entry point --------------------------------------------------------------
    def generate(self, program: ast.Program) -> ir.Module:
        for struct in program.structs:
            self.module.add_struct(struct.name)
        for struct in program.structs:
            fields = []
            for field_type, _, dims in struct.fields:
                fields.append(self._wrap_dims(self._resolve(field_type), dims))
            self.module.structs[struct.name].set_body(fields)
            self._struct_fields[struct.name] = [name for _, name, _ in struct.fields]
        # Declare functions before globals: a global's initializer may
        # reference a function (function-pointer tables).
        for fn_def in program.functions:
            self._declare_function(fn_def)
        for decl in program.globals:
            self._emit_global(decl)
        for fn_def in program.functions:
            if fn_def.body is not None:
                self._emit_function(fn_def)
        return self.module

    # -- types ---------------------------------------------------------------------
    def _resolve(self, ref) -> ir.Type:
        if isinstance(ref, ast.FuncPtrTypeRef):
            ret = self._resolve(ref.ret)
            params = [self._resolve(p) for p in ref.params]
            return ir.PointerType(ir.FunctionType(ret, params))
        base: ir.Type
        if ref.base == "int":
            base = ir.I64
        elif ref.base == "double":
            base = ir.DOUBLE
        elif ref.base == "char":
            base = ir.I8
        elif ref.base == "void":
            base = ir.VOID
        elif ref.base == "struct":
            struct = self.module.structs.get(ref.struct_name)
            if struct is None:
                raise CodegenError(f"unknown struct {ref.struct_name}", ref.line)
            base = struct
        else:  # pragma: no cover - the parser only produces the above
            raise CodegenError(f"unknown type {ref.base}", ref.line)
        for _ in range(ref.pointer_depth):
            if base.is_void():
                base = ir.I8  # void* becomes i8*
            base = ir.PointerType(base)
        return base

    @staticmethod
    def _wrap_dims(base: ir.Type, dims: list[int]) -> ir.Type:
        for dim in reversed(dims):
            base = ir.ArrayType(base, dim)
        return base

    # -- globals -------------------------------------------------------------------
    def _emit_global(self, decl: ast.GlobalDecl) -> None:
        ty = self._wrap_dims(self._resolve(decl.type_ref), decl.dims)
        initializer = None
        if decl.initializer is not None:
            initializer = self._constant_expr(decl.initializer, ty)
        self.module.add_global(decl.name, ty, initializer)

    def _constant_expr(self, expr: ast.Expr, ty: ir.Type) -> ir.Constant:
        if isinstance(expr, ast.IntLiteral):
            if ty.is_float():
                return ir.ConstantFloat(ty, float(expr.value))
            return ir.ConstantInt(ty, expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return ir.ConstantFloat(ty, expr.value)
        if isinstance(expr, ast.UnaryExpr) and expr.op == "-":
            inner = self._constant_expr(expr.operand, ty)
            if isinstance(inner, ir.ConstantInt):
                return ir.ConstantInt(ty, -inner.value)
            return ir.ConstantFloat(ty, -inner.value)
        if isinstance(expr, ast.NameRef) and expr.name in self.module.functions:
            return self.module.functions[expr.name]
        raise CodegenError("global initializer must be a constant", expr.line)

    # -- functions ----------------------------------------------------------------
    def _declare_function(self, fn_def: ast.FunctionDef) -> None:
        if fn_def.name in self.module.functions:
            return  # forward declaration already seen
        ret = self._resolve(fn_def.ret)
        params = [self._resolve(p.type_ref) for p in fn_def.params]
        names = [p.name for p in fn_def.params]
        self.module.add_function(fn_def.name, ir.FunctionType(ret, params), names)

    def _emit_function(self, fn_def: ast.FunctionDef) -> None:
        self.fn = self.module.get_function(fn_def.name)
        self.locals = {}
        self.loop_stack = []
        entry = self.fn.add_block("entry")
        self.builder.position_at_end(entry)
        # Spill parameters so they are ordinary mutable variables.
        for arg in self.fn.args:
            slot = self.builder.alloca(arg.type, f"{arg.name}.addr")
            self.builder.store(arg, slot)
            self.locals[arg.name] = _LValue(slot)
        self._emit_stmt(fn_def.body)
        self._terminate_open_block()
        self.fn = None

    def _terminate_open_block(self) -> None:
        block = self.builder.block
        if block is not None and block.terminator is None:
            ret_ty = self.fn.return_type
            if ret_ty.is_void():
                self.builder.ret()
            elif ret_ty.is_float():
                self.builder.ret(ir.const_float(0.0))
            elif ret_ty.is_pointer():
                self.builder.ret(ir.ConstantNull(ret_ty))
            else:
                self.builder.ret(ir.ConstantInt(ret_ty, 0))

    # -- statements ----------------------------------------------------------------
    def _emit_stmt(self, stmt: ast.Stmt) -> None:
        if self.builder.block is not None and self.builder.block.terminator is not None:
            # Dead code after return/break: drop it (like clang's CFG cleanup).
            return
        if isinstance(stmt, ast.Block):
            outer = dict(self.locals)
            for inner in stmt.statements:
                self._emit_stmt(inner)
            self.locals = outer
        elif isinstance(stmt, ast.Declaration):
            self._emit_declaration(stmt)
        elif isinstance(stmt, ast.Assign):
            self._emit_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._rvalue(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._emit_if(stmt)
        elif isinstance(stmt, ast.While):
            self._emit_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._emit_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._emit_for(stmt)
        elif isinstance(stmt, ast.SwitchStmt):
            self._emit_switch(stmt)
        elif isinstance(stmt, ast.Return):
            self._emit_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise CodegenError("break outside a loop or switch", stmt.line)
            self.builder.br(self.loop_stack[-1].break_block)
        elif isinstance(stmt, ast.Continue):
            context = next(
                (c for c in reversed(self.loop_stack) if c.continue_block is not None),
                None,
            )
            if context is None:
                raise CodegenError("continue outside a loop", stmt.line)
            self.builder.br(context.continue_block)
        else:  # pragma: no cover
            raise CodegenError(f"cannot lower statement {stmt!r}", stmt.line)

    def _emit_declaration(self, decl: ast.Declaration) -> None:
        ty = self._wrap_dims(self._resolve(decl.type_ref), decl.dims)
        slot = self.builder.alloca(ty, decl.name)
        self.locals[decl.name] = _LValue(slot)
        if decl.initializer is not None:
            value = self._rvalue(decl.initializer)
            value = self._convert(value, ty, decl.line)
            self.builder.store(value, slot)

    def _emit_assign(self, stmt: ast.Assign) -> None:
        target = self._lvalue(stmt.target)
        value = self._rvalue(stmt.value)
        expected = target.pointer.type.pointee
        value = self._convert(value, expected, stmt.line)
        self.builder.store(value, target.pointer)

    def _emit_if(self, stmt: ast.If) -> None:
        cond = self._condition(stmt.cond)
        then_block = self.fn.add_block("if.then")
        merge_block = self.fn.add_block("if.end")
        else_block = self.fn.add_block("if.else") if stmt.otherwise else merge_block
        self.builder.cond_br(cond, then_block, else_block)
        self.builder.position_at_end(then_block)
        self._emit_stmt(stmt.then)
        if self.builder.block.terminator is None:
            self.builder.br(merge_block)
        if stmt.otherwise is not None:
            self.builder.position_at_end(else_block)
            self._emit_stmt(stmt.otherwise)
            if self.builder.block.terminator is None:
                self.builder.br(merge_block)
        self.builder.position_at_end(merge_block)

    def _emit_while(self, stmt: ast.While) -> None:
        header = self.fn.add_block("while.cond")
        body = self.fn.add_block("while.body")
        exit_block = self.fn.add_block("while.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        cond = self._condition(stmt.cond)
        self.builder.cond_br(cond, body, exit_block)
        self.builder.position_at_end(body)
        self.loop_stack.append(_LoopContext(exit_block, header))
        self._emit_stmt(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(header)
        self.builder.position_at_end(exit_block)

    def _emit_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.fn.add_block("do.body")
        latch = self.fn.add_block("do.cond")
        exit_block = self.fn.add_block("do.end")
        self.builder.br(body)
        self.builder.position_at_end(body)
        self.loop_stack.append(_LoopContext(exit_block, latch))
        self._emit_stmt(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(latch)
        self.builder.position_at_end(latch)
        cond = self._condition(stmt.cond)
        self.builder.cond_br(cond, body, exit_block)
        self.builder.position_at_end(exit_block)

    def _emit_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._emit_stmt(stmt.init)
        header = self.fn.add_block("for.cond")
        body = self.fn.add_block("for.body")
        step_block = self.fn.add_block("for.step")
        exit_block = self.fn.add_block("for.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        if stmt.cond is not None:
            cond = self._condition(stmt.cond)
            self.builder.cond_br(cond, body, exit_block)
        else:
            self.builder.br(body)
        self.builder.position_at_end(body)
        self.loop_stack.append(_LoopContext(exit_block, step_block))
        self._emit_stmt(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(step_block)
        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self._emit_stmt(stmt.step)
        self.builder.br(header)
        self.builder.position_at_end(exit_block)

    def _emit_switch(self, stmt: ast.SwitchStmt) -> None:
        selector = self._rvalue(stmt.selector)
        if not selector.type.is_integer():
            raise CodegenError("switch selector must be an integer", stmt.line)
        end_block = self.fn.add_block("switch.end")
        case_blocks = [
            self.fn.add_block(f"switch.case{i}") for i in range(len(stmt.cases))
        ]
        default_block = end_block
        cases: list[tuple[ir.ConstantInt, ir.BasicBlock]] = []
        for case, block in zip(stmt.cases, case_blocks):
            if case.value is None:
                default_block = block
            else:
                cases.append((ir.ConstantInt(selector.type, case.value), block))
        self.builder.switch(selector, default_block, cases)
        self.loop_stack.append(_LoopContext(end_block, None))
        for index, (case, block) in enumerate(zip(stmt.cases, case_blocks)):
            self.builder.position_at_end(block)
            for inner in case.statements:
                self._emit_stmt(inner)
            if self.builder.block.terminator is None:
                # Fallthrough to the next case, or to the end.
                target = (
                    case_blocks[index + 1] if index + 1 < len(case_blocks) else end_block
                )
                self.builder.br(target)
        self.loop_stack.pop()
        self.builder.position_at_end(end_block)

    def _emit_return(self, stmt: ast.Return) -> None:
        ret_ty = self.fn.return_type
        if stmt.value is None:
            if not ret_ty.is_void():
                raise CodegenError("return without a value", stmt.line)
            self.builder.ret()
            return
        value = self._rvalue(stmt.value)
        value = self._convert(value, ret_ty, stmt.line)
        self.builder.ret(value)

    # -- expressions ---------------------------------------------------------------
    def _condition(self, expr: ast.Expr) -> ir.Value:
        """Evaluate ``expr`` as an i1 condition."""
        if isinstance(expr, ast.BinaryExpr) and expr.op in ("&&", "||"):
            return self._short_circuit(expr)
        if isinstance(expr, ast.UnaryExpr) and expr.op == "!":
            inner = self._condition(expr.operand)
            return self.builder.xor(inner, ir.const_bool(True), "not")
        value = self._rvalue(expr)
        return self._to_bool(value)

    def _to_bool(self, value: ir.Value) -> ir.Value:
        ty = value.type
        if ty.is_integer() and ty.width == 1:
            return value
        if ty.is_integer():
            return self.builder.icmp("ne", value, ir.ConstantInt(ty, 0), "tobool")
        if ty.is_float():
            return self.builder.fcmp("one", value, ir.const_float(0.0), "tobool")
        if ty.is_pointer():
            return self.builder.icmp(
                "ne",
                self.builder.cast("ptrtoint", value, ir.I64, "ptoi"),
                ir.const_int(0),
                "tobool",
            )
        raise CodegenError(f"cannot convert {ty} to a condition", 0)

    def _short_circuit(self, expr: ast.BinaryExpr) -> ir.Value:
        lhs = self._condition(expr.lhs)
        lhs_block = self.builder.block
        rhs_block = self.fn.add_block("sc.rhs")
        merge_block = self.fn.add_block("sc.end")
        if expr.op == "&&":
            self.builder.cond_br(lhs, rhs_block, merge_block)
        else:
            self.builder.cond_br(lhs, merge_block, rhs_block)
        self.builder.position_at_end(rhs_block)
        rhs = self._condition(expr.rhs)
        rhs_exit = self.builder.block
        self.builder.br(merge_block)
        self.builder.position_at_end(merge_block)
        phi = self.builder.phi(ir.I1, "sc")
        phi.add_incoming(ir.const_bool(expr.op == "||"), lhs_block)
        phi.add_incoming(rhs, rhs_exit)
        return phi

    def _rvalue(self, expr: ast.Expr) -> ir.Value:
        if isinstance(expr, ast.IntLiteral):
            return ir.const_int(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return ir.const_float(expr.value)
        if isinstance(expr, ast.NameRef):
            return self._name_rvalue(expr)
        if isinstance(expr, ast.BinaryExpr):
            if expr.op in ("&&", "||"):
                cond = self._short_circuit(expr)
                return self.builder.cast("zext", cond, ir.I64, "sc.int")
            return self._binary_rvalue(expr)
        if isinstance(expr, ast.UnaryExpr):
            return self._unary_rvalue(expr)
        if isinstance(expr, ast.CallExpr):
            return self._call_rvalue(expr)
        if isinstance(expr, (ast.IndexExpr, ast.FieldExpr)):
            lvalue = self._lvalue(expr)
            pointee = lvalue.pointer.type.pointee
            if pointee.is_array():
                return self._decay(lvalue)
            return self.builder.load(lvalue.pointer, "ld")
        if isinstance(expr, ast.CastExpr):
            value = self._rvalue(expr.operand)
            return self._convert(value, self._resolve(expr.type_ref), expr.line,
                                 explicit=True)
        if isinstance(expr, ast.SizeofExpr):
            return ir.const_int(self._resolve(expr.type_ref).size_in_slots())
        raise CodegenError(f"cannot evaluate expression {expr!r}", expr.line)

    def _name_rvalue(self, expr: ast.NameRef) -> ir.Value:
        if expr.name in self.locals:
            slot = self.locals[expr.name]
            pointee = slot.pointer.type.pointee
            if pointee.is_array():
                return self._decay(slot)
            return self.builder.load(slot.pointer, expr.name)
        if expr.name in self.module.globals:
            gv = self.module.get_global(expr.name)
            if gv.allocated_type.is_array():
                return self._decay(_LValue(gv))
            return self.builder.load(gv, expr.name)
        if expr.name in self.module.functions:
            return self.module.functions[expr.name]
        if expr.name in INTRINSICS:
            return declare_intrinsic(self.module, expr.name)
        raise CodegenError(f"undefined name {expr.name!r}", expr.line)

    def _decay(self, lvalue: _LValue) -> ir.Value:
        """Array-to-pointer decay: ``T[N]*`` becomes ``T*``."""
        zero = ir.const_int(0)
        return self.builder.elem_ptr(lvalue.pointer, [zero, zero], "decay")

    def _binary_rvalue(self, expr: ast.BinaryExpr) -> ir.Value:
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            return self._comparison(expr)
        lhs = self._rvalue(expr.lhs)
        rhs = self._rvalue(expr.rhs)
        # Pointer arithmetic: ptr + int / ptr - int.
        if lhs.type.is_pointer() and rhs.type.is_integer() and expr.op in ("+", "-"):
            offset = self._to_i64(rhs)
            if expr.op == "-":
                offset = self.builder.sub(ir.const_int(0), offset, "neg")
            return self.builder.elem_ptr(lhs, [offset], "ptradd")
        lhs, rhs, is_float = self._arith_promote(lhs, rhs, expr.line)
        op_map_int = {
            "+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
            "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr",
        }
        op_map_float = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
        if is_float:
            opcode = op_map_float.get(expr.op)
            if opcode is None:
                raise CodegenError(f"operator {expr.op} not valid on double", expr.line)
        else:
            opcode = op_map_int[expr.op]
        return self.builder.binary(opcode, lhs, rhs, "t")

    def _comparison(self, expr: ast.BinaryExpr) -> ir.Value:
        lhs = self._rvalue(expr.lhs)
        rhs = self._rvalue(expr.rhs)
        if lhs.type.is_pointer() or rhs.type.is_pointer():
            lhs = self._to_i64(lhs) if not lhs.type.is_pointer() else self.builder.cast(
                "ptrtoint", lhs, ir.I64, "p"
            )
            rhs = self._to_i64(rhs) if not rhs.type.is_pointer() else self.builder.cast(
                "ptrtoint", rhs, ir.I64, "p"
            )
        lhs, rhs, is_float = self._arith_promote(lhs, rhs, expr.line)
        if is_float:
            predicate = {"==": "oeq", "!=": "one", "<": "olt",
                         "<=": "ole", ">": "ogt", ">=": "oge"}[expr.op]
            result = self.builder.fcmp(predicate, lhs, rhs, "cmp")
        else:
            predicate = {"==": "eq", "!=": "ne", "<": "slt",
                         "<=": "sle", ">": "sgt", ">=": "sge"}[expr.op]
            result = self.builder.icmp(predicate, lhs, rhs, "cmp")
        return self.builder.cast("zext", result, ir.I64, "cmp.int")

    def _arith_promote(self, lhs: ir.Value, rhs: ir.Value, line: int):
        """Apply C-like usual arithmetic conversions; returns (lhs, rhs, is_float)."""
        if lhs.type.is_float() or rhs.type.is_float():
            if not lhs.type.is_float():
                lhs = self.builder.cast("sitofp", self._to_i64(lhs), ir.DOUBLE, "fp")
            if not rhs.type.is_float():
                rhs = self.builder.cast("sitofp", self._to_i64(rhs), ir.DOUBLE, "fp")
            return lhs, rhs, True
        if lhs.type.is_integer() and rhs.type.is_integer():
            if lhs.type.width != rhs.type.width:
                target = lhs.type if lhs.type.width > rhs.type.width else rhs.type
                if lhs.type != target:
                    lhs = self.builder.cast("sext", lhs, target, "ext")
                if rhs.type != target:
                    rhs = self.builder.cast("sext", rhs, target, "ext")
            return lhs, rhs, False
        raise CodegenError(
            f"invalid operand types {lhs.type} and {rhs.type}", line
        )

    def _to_i64(self, value: ir.Value) -> ir.Value:
        if value.type == ir.I64:
            return value
        if value.type.is_integer():
            if value.type.width < 64:
                return self.builder.cast("sext", value, ir.I64, "ext")
            return self.builder.cast("trunc", value, ir.I64, "trunc")
        raise CodegenError(f"expected an integer, got {value.type}", 0)

    def _unary_rvalue(self, expr: ast.UnaryExpr) -> ir.Value:
        if expr.op == "-":
            operand = self._rvalue(expr.operand)
            if operand.type.is_float():
                return self.builder.fsub(ir.const_float(0.0), operand, "neg")
            return self.builder.sub(ir.ConstantInt(operand.type, 0), operand, "neg")
        if expr.op == "!":
            cond = self._condition(expr.operand)
            inverted = self.builder.xor(cond, ir.const_bool(True), "not")
            return self.builder.cast("zext", inverted, ir.I64, "not.int")
        if expr.op == "*":
            pointer = self._rvalue(expr.operand)
            if not pointer.type.is_pointer():
                raise CodegenError("cannot dereference a non-pointer", expr.line)
            return self.builder.load(pointer, "deref")
        if expr.op == "&":
            lvalue = self._lvalue(expr.operand)
            return lvalue.pointer
        raise CodegenError(f"unknown unary operator {expr.op}", expr.line)

    def _call_rvalue(self, expr: ast.CallExpr) -> ir.Value:
        callee = self._callee_value(expr.callee)
        fnty = callee.type.pointee
        args = []
        for index, arg_expr in enumerate(expr.args):
            value = self._rvalue(arg_expr)
            if index < len(fnty.params):
                value = self._convert(value, fnty.params[index], expr.line)
            args.append(value)
        name = "" if fnty.ret.is_void() else "call"
        return self.builder.call(callee, args, name)

    def _callee_value(self, expr: ast.Expr) -> ir.Value:
        if isinstance(expr, ast.NameRef):
            name = expr.name
            if name in self.locals:
                slot = self.locals[name]
                if slot.pointer.type.pointee.is_pointer():
                    return self.builder.load(slot.pointer, f"{name}.fn")
            if name in self.module.globals:
                gv = self.module.get_global(name)
                if gv.allocated_type.is_pointer():
                    return self.builder.load(gv, f"{name}.fn")
            if name in self.module.functions:
                return self.module.functions[name]
            if name in INTRINSICS:
                return declare_intrinsic(self.module, name)
            raise CodegenError(f"call to undefined function {name!r}", expr.line)
        value = self._rvalue(expr)
        if not (value.type.is_pointer() and value.type.pointee.is_function()):
            raise CodegenError("called value is not a function", expr.line)
        return value

    # -- lvalues -------------------------------------------------------------------
    def _lvalue(self, expr: ast.Expr) -> _LValue:
        if isinstance(expr, ast.NameRef):
            if expr.name in self.locals:
                return self.locals[expr.name]
            if expr.name in self.module.globals:
                return _LValue(self.module.get_global(expr.name))
            raise CodegenError(f"undefined variable {expr.name!r}", expr.line)
        if isinstance(expr, ast.UnaryExpr) and expr.op == "*":
            pointer = self._rvalue(expr.operand)
            if not pointer.type.is_pointer():
                raise CodegenError("cannot dereference a non-pointer", expr.line)
            return _LValue(pointer)
        if isinstance(expr, ast.IndexExpr):
            return self._index_lvalue(expr)
        if isinstance(expr, ast.FieldExpr):
            return self._field_lvalue(expr)
        raise CodegenError("expression is not assignable", expr.line)

    def _index_lvalue(self, expr: ast.IndexExpr) -> _LValue:
        index = self._to_i64(self._rvalue(expr.index))
        # Indexing an array lvalue: stay inside the aggregate (GEP 0, i).
        base_lvalue = self._try_array_lvalue(expr.base)
        if base_lvalue is not None:
            zero = ir.const_int(0)
            ep = self.builder.elem_ptr(base_lvalue.pointer, [zero, index], "arrayidx")
            return _LValue(ep)
        base = self._rvalue(expr.base)
        if not base.type.is_pointer():
            raise CodegenError("cannot index a non-pointer", expr.line)
        ep = self.builder.elem_ptr(base, [index], "ptridx")
        return _LValue(ep)

    def _try_array_lvalue(self, expr: ast.Expr) -> _LValue | None:
        """If ``expr`` denotes an array in place, return its lvalue."""
        if isinstance(expr, ast.NameRef):
            slot = None
            if expr.name in self.locals:
                slot = self.locals[expr.name]
            elif expr.name in self.module.globals:
                slot = _LValue(self.module.get_global(expr.name))
            if slot is not None and slot.pointer.type.pointee.is_array():
                return slot
            return None
        if isinstance(expr, (ast.IndexExpr, ast.FieldExpr)):
            # e.g. matrix[i] of a 2-D array, or s.buffer
            saved = self.builder.block, self.builder.insert_before
            lvalue = self._lvalue(expr)
            if lvalue.pointer.type.pointee.is_array():
                return lvalue
            del saved
            return None
        return None

    def _field_lvalue(self, expr: ast.FieldExpr) -> _LValue:
        if expr.arrow:
            base = self._rvalue(expr.base)
            if not (base.type.is_pointer() and base.type.pointee.is_struct()):
                raise CodegenError("-> on a non-struct-pointer", expr.line)
            struct = base.type.pointee
            pointer = base
        else:
            lvalue = self._lvalue(expr.base)
            struct = lvalue.pointer.type.pointee
            if not struct.is_struct():
                raise CodegenError(". on a non-struct", expr.line)
            pointer = lvalue.pointer
        field_names = self._field_names(struct)
        if expr.field not in field_names:
            raise CodegenError(
                f"struct {struct.name} has no field {expr.field!r}", expr.line
            )
        index = field_names.index(expr.field)
        zero = ir.const_int(0)
        ep = self.builder.elem_ptr(
            pointer, [zero, ir.const_int(index)], f"{expr.field}.addr"
        )
        return _LValue(ep)

    def _field_names(self, struct: ir.StructType) -> list[str]:
        # Field names are only known at the AST level; cache per struct.
        cached = self._struct_fields.get(struct.name)
        if cached is None:
            raise CodegenError(f"unknown struct {struct.name}", 0)
        return cached

    @property
    def _struct_fields(self) -> dict[str, list[str]]:
        if not hasattr(self, "_struct_fields_map"):
            self._struct_fields_map: dict[str, list[str]] = {}
        return self._struct_fields_map

    # -- conversions --------------------------------------------------------------
    def _convert(
        self, value: ir.Value, target: ir.Type, line: int, explicit: bool = False
    ) -> ir.Value:
        ty = value.type
        if ty == target:
            return value
        if ty.is_integer() and target.is_integer():
            if ty.width < target.width:
                return self.builder.cast("sext", value, target, "conv")
            return self.builder.cast("trunc", value, target, "conv")
        if ty.is_integer() and target.is_float():
            return self.builder.cast("sitofp", self._to_i64(value), target, "conv")
        if ty.is_float() and target.is_integer():
            return self.builder.cast("fptosi", value, target, "conv")
        if ty.is_pointer() and target.is_pointer():
            return self.builder.cast("bitcast", value, target, "conv")
        if ty.is_pointer() and target.is_integer():
            if explicit:
                return self.builder.cast("ptrtoint", value, target, "conv")
        if ty.is_integer() and target.is_pointer():
            if explicit:
                return self.builder.cast("inttoptr", value, target, "conv")
        raise CodegenError(f"cannot convert {ty} to {target}", line)
