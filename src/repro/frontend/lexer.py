"""Lexer for MiniC, the repository's C-like workload language."""

from __future__ import annotations

KEYWORDS = {
    "int",
    "double",
    "void",
    "char",
    "struct",
    "if",
    "else",
    "while",
    "do",
    "for",
    "return",
    "break",
    "continue",
    "switch",
    "case",
    "default",
    "sizeof",
}

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "->",
    "<<",
    ">>",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
    ":",
]


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind  # "int" | "float" | "ident" | "keyword" | "op" | "eof"
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.text!r} @{self.line}>"


class LexError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC source into a token list ending with an EOF token."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch.isspace():
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end == -1 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length and source[pos + 1].isdigit()):
            start = pos
            while pos < length and (source[pos].isdigit() or source[pos] == "."):
                pos += 1
            if pos < length and source[pos] in "eE":
                pos += 1
                if pos < length and source[pos] in "+-":
                    pos += 1
                while pos < length and source[pos].isdigit():
                    pos += 1
            text = source[start:pos]
            kind = "float" if ("." in text or "e" in text or "E" in text) else "int"
            tokens.append(Token(kind, text, line))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue
        for op in OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, line))
                pos += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
