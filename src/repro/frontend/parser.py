"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from . import ast
from .lexer import Token, tokenize


class SyntaxErrorMiniC(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")


#: Binary operator precedence (higher binds tighter).
PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_TYPE_KEYWORDS = ("int", "double", "void", "char", "struct")


def parse_program(source: str) -> ast.Program:
    """Parse MiniC source into an AST."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self.struct_names: set[str] = set()

    # -- token helpers ----------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        self.pos += 1
        return token

    def accept(self, text: str) -> bool:
        if self.peek().text == text and self.peek().kind in ("op", "keyword"):
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.next()
        if token.text != text:
            raise SyntaxErrorMiniC(f"expected {text!r}, got {token.text!r}", token.line)
        return token

    def expect_ident(self) -> Token:
        token = self.next()
        if token.kind != "ident":
            raise SyntaxErrorMiniC(f"expected identifier, got {token.text!r}", token.line)
        return token

    def at_type(self) -> bool:
        return self.peek().kind == "keyword" and self.peek().text in _TYPE_KEYWORDS

    # -- program ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program(1)
        while self.peek().kind != "eof":
            if self.peek().text == "struct" and self.peek(2).text == "{":
                program.structs.append(self._parse_struct_def())
                continue
            type_ref = self._parse_type()
            # Function-pointer global?  ``ret (*name)(params);``
            if self.peek().text == "(":
                fp_type, fp_name = self._parse_funcptr_declarator(type_ref)
                initializer = None
                if self.accept("="):
                    initializer = self._parse_expression()
                program.globals.append(
                    ast.GlobalDecl(type_ref.line, fp_type, fp_name, [], initializer)
                )
                self.expect(";")
                continue
            name = self.expect_ident()
            if self.peek().text == "(":
                program.functions.append(self._parse_function(type_ref, name))
            else:
                program.globals.append(self._parse_global(type_ref, name))
        return program

    def _parse_struct_def(self) -> ast.StructDef:
        start = self.expect("struct")
        name = self.expect_ident().text
        self.struct_names.add(name)
        self.expect("{")
        fields: list[tuple[ast.TypeRef, str, list[int]]] = []
        while not self.accept("}"):
            field_type = self._parse_type()
            field_name = self.expect_ident().text
            dims = self._parse_dims()
            self.expect(";")
            fields.append((field_type, field_name, dims))
        self.expect(";")
        return ast.StructDef(start.line, name, fields)

    def _parse_type(self) -> ast.TypeRef:
        token = self.next()
        if token.kind != "keyword" or token.text not in _TYPE_KEYWORDS:
            raise SyntaxErrorMiniC(f"expected a type, got {token.text!r}", token.line)
        struct_name = None
        base = token.text
        if base == "struct":
            struct_name = self.expect_ident().text
        depth = 0
        while self.accept("*"):
            depth += 1
        return ast.TypeRef(token.line, base, depth, struct_name)

    def _parse_funcptr_declarator(
        self, ret: ast.TypeRef
    ) -> tuple[ast.FuncPtrTypeRef, str]:
        """Parse ``(*name)(params)`` after the return type."""
        self.expect("(")
        self.expect("*")
        name = self.expect_ident().text
        self.expect(")")
        self.expect("(")
        params: list[ast.TypeRef] = []
        if not self.accept(")"):
            if self.peek().text == "void" and self.peek(1).text == ")":
                self.next()  # C-style empty parameter list: (void)
            else:
                while True:
                    params.append(self._parse_type())
                    if self.peek().kind == "ident":
                        self.next()  # optional parameter name
                    if not self.accept(","):
                        break
            self.expect(")")
        return ast.FuncPtrTypeRef(ret.line, ret, params), name

    def _parse_dims(self) -> list[int]:
        dims: list[int] = []
        while self.accept("["):
            token = self.next()
            if token.kind != "int":
                raise SyntaxErrorMiniC("array length must be an integer literal", token.line)
            dims.append(int(token.text))
            self.expect("]")
        return dims

    def _parse_global(self, type_ref: ast.TypeRef, name: Token) -> ast.GlobalDecl:
        dims = self._parse_dims()
        initializer = None
        if self.accept("="):
            initializer = self._parse_expression()
        self.expect(";")
        return ast.GlobalDecl(name.line, type_ref, name.text, dims, initializer)

    def _parse_function(self, ret: ast.TypeRef, name: Token) -> ast.FunctionDef:
        self.expect("(")
        params: list[ast.Param] = []
        if not self.accept(")"):
            while True:
                if self.peek().text == "void" and self.peek(1).text == ")":
                    self.next()
                    break
                param_type = self._parse_type()
                if self.peek().text == "(":
                    fp_type, fp_name = self._parse_funcptr_declarator(param_type)
                    params.append(ast.Param(param_type.line, fp_type, fp_name))
                else:
                    param_name = self.expect_ident()
                    params.append(ast.Param(param_name.line, param_type, param_name.text))
                if not self.accept(","):
                    break
            self.expect(")")
        if self.accept(";"):
            return ast.FunctionDef(name.line, ret, name.text, params, None)
        body = self._parse_block()
        return ast.FunctionDef(name.line, ret, name.text, params, body)

    # -- statements ---------------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        start = self.expect("{")
        statements: list[ast.Stmt] = []
        while not self.accept("}"):
            statements.append(self._parse_statement())
        return ast.Block(start.line, statements)

    def _parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.text == "{":
            return self._parse_block()
        if token.text == "if":
            return self._parse_if()
        if token.text == "while":
            return self._parse_while()
        if token.text == "do":
            return self._parse_do_while()
        if token.text == "for":
            return self._parse_for()
        if token.text == "switch":
            return self._parse_switch()
        if token.text == "return":
            self.next()
            value = None if self.peek().text == ";" else self._parse_expression()
            self.expect(";")
            return ast.Return(token.line, value)
        if token.text == "break":
            self.next()
            self.expect(";")
            return ast.Break(token.line)
        if token.text == "continue":
            self.next()
            self.expect(";")
            return ast.Continue(token.line)
        if self.at_type():
            stmt = self._parse_declaration()
            self.expect(";")
            return stmt
        stmt = self._parse_assignment_or_expression()
        self.expect(";")
        return stmt

    def _parse_declaration(self) -> ast.Declaration:
        type_ref = self._parse_type()
        if self.peek().text == "(":
            fp_type, fp_name = self._parse_funcptr_declarator(type_ref)
            initializer = None
            if self.accept("="):
                initializer = self._parse_expression()
            return ast.Declaration(type_ref.line, fp_type, fp_name, [], initializer)
        name = self.expect_ident()
        dims = self._parse_dims()
        initializer = None
        if self.accept("="):
            initializer = self._parse_expression()
        return ast.Declaration(name.line, type_ref, name.text, dims, initializer)

    def _parse_assignment_or_expression(self) -> ast.Stmt:
        start = self.peek()
        expr = self._parse_expression()
        if self.accept("="):
            value = self._parse_expression()
            return ast.Assign(start.line, expr, value)
        return ast.ExprStmt(start.line, expr)

    def _parse_if(self) -> ast.If:
        start = self.expect("if")
        self.expect("(")
        cond = self._parse_expression()
        self.expect(")")
        then = self._parse_statement()
        otherwise = self._parse_statement() if self.accept("else") else None
        return ast.If(start.line, cond, then, otherwise)

    def _parse_while(self) -> ast.While:
        start = self.expect("while")
        self.expect("(")
        cond = self._parse_expression()
        self.expect(")")
        body = self._parse_statement()
        return ast.While(start.line, cond, body)

    def _parse_do_while(self) -> ast.DoWhile:
        start = self.expect("do")
        body = self._parse_statement()
        self.expect("while")
        self.expect("(")
        cond = self._parse_expression()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(start.line, body, cond)

    def _parse_for(self) -> ast.For:
        start = self.expect("for")
        self.expect("(")
        init: ast.Stmt | None = None
        if not self.accept(";"):
            init = (
                self._parse_declaration()
                if self.at_type()
                else self._parse_assignment_or_expression()
            )
            self.expect(";")
        cond: ast.Expr | None = None
        if not self.accept(";"):
            cond = self._parse_expression()
            self.expect(";")
        step: ast.Stmt | None = None
        if self.peek().text != ")":
            step = self._parse_assignment_or_expression()
        self.expect(")")
        body = self._parse_statement()
        return ast.For(start.line, init, cond, step, body)

    def _parse_switch(self) -> ast.SwitchStmt:
        start = self.expect("switch")
        self.expect("(")
        selector = self._parse_expression()
        self.expect(")")
        self.expect("{")
        cases: list[ast.SwitchCase] = []
        current: ast.SwitchCase | None = None
        while not self.accept("}"):
            if self.accept("case"):
                token = self.next()
                sign = 1
                if token.text == "-":
                    sign = -1
                    token = self.next()
                if token.kind != "int":
                    raise SyntaxErrorMiniC("case label must be an integer", token.line)
                self.expect(":")
                current = ast.SwitchCase(sign * int(token.text), [])
                cases.append(current)
            elif self.accept("default"):
                self.expect(":")
                current = ast.SwitchCase(None, [])
                cases.append(current)
            else:
                if current is None:
                    raise SyntaxErrorMiniC(
                        "statement before first case label", self.peek().line
                    )
                current.statements.append(self._parse_statement())
        return ast.SwitchStmt(start.line, selector, cases)

    # -- expressions -------------------------------------------------------------
    def _parse_expression(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            token = self.peek()
            precedence = PRECEDENCE.get(token.text) if token.kind == "op" else None
            if precedence is None or precedence < min_precedence:
                return lhs
            self.next()
            rhs = self._parse_binary(precedence + 1)
            lhs = ast.BinaryExpr(token.line, token.text, lhs, rhs)

    def _parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!", "*", "&"):
            self.next()
            operand = self._parse_unary()
            return ast.UnaryExpr(token.line, token.text, operand)
        # C-style cast: "(" type ")" unary — only when a type keyword follows.
        if token.text == "(" and self.peek(1).kind == "keyword" and (
            self.peek(1).text in _TYPE_KEYWORDS
        ):
            self.next()
            type_ref = self._parse_type()
            self.expect(")")
            operand = self._parse_unary()
            return ast.CastExpr(token.line, type_ref, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self.peek()
            if token.text == "(":
                self.next()
                args: list[ast.Expr] = []
                if not self.accept(")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self.accept(","):
                            break
                    self.expect(")")
                expr = ast.CallExpr(token.line, expr, args)
            elif token.text == "[":
                self.next()
                index = self._parse_expression()
                self.expect("]")
                expr = ast.IndexExpr(token.line, expr, index)
            elif token.text == ".":
                self.next()
                field = self.expect_ident().text
                expr = ast.FieldExpr(token.line, expr, field, arrow=False)
            elif token.text == "->":
                self.next()
                field = self.expect_ident().text
                expr = ast.FieldExpr(token.line, expr, field, arrow=True)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.next()
        if token.kind == "int":
            return ast.IntLiteral(token.line, int(token.text))
        if token.kind == "float":
            return ast.FloatLiteral(token.line, float(token.text))
        if token.kind == "ident":
            return ast.NameRef(token.line, token.text)
        if token.text == "sizeof":
            self.expect("(")
            type_ref = self._parse_type()
            self.expect(")")
            return ast.SizeofExpr(token.line, type_ref)
        if token.text == "(":
            expr = self._parse_expression()
            self.expect(")")
            return expr
        raise SyntaxErrorMiniC(f"unexpected token {token.text!r}", token.line)
