"""repro.fuzz — coverage-guided differential fuzzing (ISSUE 9).

The paper's Table 4 claim — that NOELLE's abstractions compose safely
across many programs — is exercised here by *generated* programs rather
than the 21 hand-shaped registry workloads.  A seeded, deterministic
MiniC generator (:mod:`repro.fuzz.gen`) draws every structural choice
from a recordable *decision trace* (:mod:`repro.fuzz.trace`); four
differential oracles (:mod:`repro.fuzz.oracles`) cross-check each
program; any divergence delta-debugs its decision trace down to a
minimal reproducer (:mod:`repro.fuzz.minimize`) and lands as a crash
bundle plus a committed regression fixture.  The campaign driver
(:mod:`repro.fuzz.driver`) rides the supervised worker pool and the
artifact cache, exposed as ``repro-noelle fuzz --seed N --count M
--jobs J``.
"""

from .driver import CampaignReport, FuzzCaseResult, run_campaign, run_case
from .gen import GeneratedProgram, generate_program, program_from_choices
from .minimize import minimize_choices
from .oracles import ORACLES, Divergence, run_oracles
from .trace import DecisionTrace, TraceError

__all__ = [
    "CampaignReport",
    "DecisionTrace",
    "Divergence",
    "FuzzCaseResult",
    "GeneratedProgram",
    "ORACLES",
    "TraceError",
    "generate_program",
    "minimize_choices",
    "program_from_choices",
    "run_campaign",
    "run_case",
    "run_oracles",
]
