"""The fuzz campaign driver.

Generates ``count`` programs from a base seed, cross-checks each with
the four differential oracles, and for every divergence: minimizes the
decision trace, writes a crash bundle (the locked ``report.json``
schema from :mod:`repro.robust.diagnostics`, plus the MiniC source and
the decision trace alongside), and emits a regression-fixture JSON
ready to commit under ``tests/fuzz/regressions/``.

``jobs=N`` fans cases out over the supervised worker pool
(:func:`repro.serve.pool.supervised_map`): deterministic order, a
crashed worker costs one case.  With ``NOELLE_CACHE_DIR`` set, workers
share compiled artifacts through the content-addressed cache.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path

from ..robust.diagnostics import CrashBundle, TransformError
from .gen import GeneratedProgram, generate_program, program_from_choices
from .minimize import minimize_choices
from .oracles import ORACLES, run_oracles, technique_for

#: Spread per-case seeds so campaigns with different base seeds do not
#: re-explore the same programs.
SEED_STRIDE = 1_000_003


class FuzzCaseResult:
    """Outcome of one generated program under the oracles (picklable)."""

    def __init__(self, seed: int, name: str, family: str, technique: str):
        self.seed = seed
        self.name = name
        self.family = family
        self.technique = technique
        #: Divergence dicts (oracle, detail, seed, choices, ...).
        self.divergences: list[dict] = []

    @property
    def ok(self) -> bool:
        return not self.divergences


def _run_case_payload(payload: tuple) -> FuzzCaseResult:
    """Worker body (module-level so it pickles)."""
    seed, oracles, family = payload
    return run_case(seed, oracles=oracles, family=family)


def run_case(
    seed: int,
    oracles: tuple[str, ...] = ORACLES,
    family: str | None = None,
) -> FuzzCaseResult:
    """Generate one program and run the requested oracles over it."""
    program = generate_program(seed, family=family)
    technique = technique_for(program)
    case = FuzzCaseResult(seed, program.name, program.family, technique)
    for divergence in run_oracles(program, oracles=oracles, technique=technique):
        record = divergence.to_dict()
        record["technique"] = technique
        record["source"] = program.source
        case.divergences.append(record)
    return case


class CampaignReport:
    """Everything a campaign produced."""

    def __init__(self, base_seed: int, count: int):
        self.base_seed = base_seed
        self.count = count
        self.cases_run = 0
        self.worker_failures: list[str] = []
        #: Divergence records, minimized when minimization was on.
        self.divergences: list[dict] = []
        self.bundle_paths: list[str] = []
        self.fixture_paths: list[str] = []
        self.seconds = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.worker_failures

    def summary(self) -> str:
        status = "OK" if self.ok else "FAIL"
        return (
            f"fuzz campaign [{status}]: {self.cases_run}/{self.count} "
            f"cases, {len(self.divergences)} divergence(s), "
            f"{len(self.worker_failures)} worker failure(s), "
            f"{self.seconds:.1f}s"
        )


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_-]+", "-", text).strip("-") or "case"


def _minimize_record(record: dict) -> dict:
    """Shrink the decision trace behind one divergence record."""
    oracle = record["oracle"]
    technique = record.get("technique")
    family = None  # campaign programs draw their family from the trace

    def still_fails(choices) -> bool:
        program = program_from_choices(choices, family=family)
        program.seed = record.get("seed")
        found = run_oracles(
            program, oracles=(oracle,), technique=technique
        )
        return any(d.oracle == oracle for d in found)

    minimized = minimize_choices(
        record["choices"], still_fails, family=family
    )
    program = program_from_choices(minimized, family=family)
    program.seed = record.get("seed")
    record = dict(record)
    record["choices"] = list(minimized)
    record["source"] = program.source
    found = run_oracles(program, oracles=(oracle,), technique=technique)
    for div in found:
        if div.oracle == oracle:
            record["detail"] = div.detail
            break
    return record


def _write_bundle(record: dict, crash_dir, index: int) -> str:
    """Persist a divergence as a crash bundle (locked report schema)."""
    ir_text = ""
    try:
        from ..frontend.codegen import compile_source
        from ..ir import print_module

        module = compile_source(record["source"], record["name"])
        ir_text = print_module(module)
    except Exception:
        ir_text = "; module did not compile; see program.mc\n"
    error = TransformError(
        pass_name=f"fuzz-{record['oracle']}",
        phase="fuzz",
        kind="Divergence",
        message=record["detail"],
        fault=f"seed={record.get('seed')}",
    )
    bundle = CrashBundle(index, f"fuzz-{record['oracle']}", ir_text, error)
    path = bundle.write(crash_dir)
    (path / "program.mc").write_text(record["source"])
    (path / "trace.json").write_text(
        json.dumps(
            {
                "seed": record.get("seed"),
                "family": record.get("family"),
                "technique": record.get("technique"),
                "choices": record["choices"],
            },
            indent=2,
        )
        + "\n"
    )
    return str(path)


def _write_fixture(record: dict, fixtures_dir) -> str:
    directory = Path(fixtures_dir)
    directory.mkdir(parents=True, exist_ok=True)
    stem = _slug(
        f"{record['oracle']}-{record.get('technique', 'any')}-"
        f"seed{record.get('seed')}"
    )
    path = directory / f"{stem}.json"
    payload = {
        "name": record["name"],
        "oracle": record["oracle"],
        "technique": record.get("technique"),
        "seed": record.get("seed"),
        "family": record.get("family"),
        "choices": record["choices"],
        "source": record["source"],
        "detail": record["detail"],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return str(path)


def run_campaign(
    seed: int,
    count: int,
    jobs: int | None = None,
    oracles: tuple[str, ...] = ORACLES,
    crash_dir=None,
    fixtures_dir=None,
    minimize: bool = True,
    progress=None,
) -> CampaignReport:
    """Fuzz ``count`` programs derived from ``seed``.

    Case ``i`` uses program seed ``seed * SEED_STRIDE + i``, so distinct
    base seeds explore disjoint program spaces while staying perfectly
    reproducible.
    """
    report = CampaignReport(seed, count)
    started = time.monotonic()
    payloads = [
        (seed * SEED_STRIDE + index, tuple(oracles), None)
        for index in range(count)
    ]
    raw_records: list[dict] = []
    if jobs is not None and jobs > 1 and len(payloads) > 1:
        from ..serve.pool import supervised_map

        for payload, task in zip(
            payloads, supervised_map(_run_case_payload, payloads, jobs)
        ):
            report.cases_run += 1
            if task.ok:
                raw_records.extend(task.value.divergences)
            else:
                report.worker_failures.append(
                    f"seed {payload[0]}: "
                    f"{task.error.get('kind', 'unknown')}: "
                    f"{task.error.get('message', '')}"
                )
            if progress is not None:
                progress(report.cases_run, count, len(raw_records))
    else:
        for payload in payloads:
            case = _run_case_payload(payload)
            report.cases_run += 1
            raw_records.extend(case.divergences)
            if progress is not None:
                progress(report.cases_run, count, len(raw_records))
    for index, record in enumerate(raw_records):
        if minimize:
            record = _minimize_record(record)
        report.divergences.append(record)
        if crash_dir is not None:
            report.bundle_paths.append(_write_bundle(record, crash_dir, index))
        if fixtures_dir is not None:
            report.fixture_paths.append(_write_fixture(record, fixtures_dir))
    report.seconds = time.monotonic() - started
    return report
