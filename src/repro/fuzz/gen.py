"""Seeded, deterministic MiniC program generator.

Programs are built from a :class:`~repro.fuzz.trace.DecisionTrace`:
every structural choice — how many arrays, which dependence shape each
loop has, how deep an expression grows — is one ``draw``.  Replaying
the recorded choices reproduces the program byte-for-byte, and the
trace is what the minimizer shrinks.

Generated programs are *safe by construction* so that every divergence
an oracle reports is a bug in the system under test, never in the
input:

* every loop has a literal bound (2..16) and a positive literal step;
  ``while``/``do-while`` loops never contain ``continue`` (their
  increment is the last statement of the body);
* array subscripts are non-negative affine forms of loop variables
  reduced ``% size`` — accumulators and loaded values never index;
* ``/`` and ``%`` divide only by positive literal constants, and only
  index-shaped (small, non-negative) expressions — magnitudes stay far
  below 2**53 where the engines' float-based ``sdiv`` is exact;
* floating constants are dyadic rationals (0.5, 1.25, ...), so sums
  and bounded products are exact in binary and reduction reassociation
  by the parallel runtime cannot drift;
* helpers never recurse; function pointers are assigned before use.

Dependence shapes per loop (the knob the differential oracles care
about): ``independent`` (DOALL-able), ``reduction`` (loop-carried
accumulator), ``carried`` (loop-carried through memory), ``mayalias``
(stores through pointer args that may alias), ``indirect`` (call
through a function pointer), ``struct`` (field traffic through a
struct array), ``nested`` (doubly nested control flow).
"""

from __future__ import annotations

from .trace import DecisionTrace

#: Dependence shapes a loop can draw.  Order matters: index 0 is the
#: simplest (what exhausted/zeroed traces collapse to).
SHAPES = (
    "independent",
    "reduction",
    "carried",
    "mayalias",
    "indirect",
    "struct",
    "nested",
)

_SIZES = (4, 6, 8, 12, 16)
_BOUNDS = (2, 4, 6, 8, 12, 16)
_CONSTS = (0, 1, 2, 3, 5, 7, 9)
_DIVISORS = (1, 2, 3, 4, 7)
_DYADIC = ("0.5", "1.5", "2.0", "0.75", "1.25", "3.0")


class GeneratedProgram:
    """One generated MiniC program plus its provenance."""

    def __init__(
        self,
        name: str,
        source: str,
        family: str,
        choices: tuple[int, ...],
        seed: int | None = None,
    ):
        self.name = name
        self.source = source
        #: The dependence shape of the program's first loop.
        self.family = family
        #: Normalized (post-clamp) decision trace; replaying it through
        #: :func:`program_from_choices` reproduces ``source`` exactly.
        self.choices = choices
        self.seed = seed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GeneratedProgram {self.name} family={self.family}>"


class _Emitter:
    """Indentation-aware line buffer."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, line: str) -> None:
        self.lines.append("  " * self.depth + line)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Generator:
    def __init__(self, trace: DecisionTrace, family: str | None = None):
        self.t = trace
        self.family = family
        self.out = _Emitter()
        self.int_arrays: list[tuple[str, int]] = []
        self.double_arrays: list[tuple[str, int]] = []
        self.accs: list[str] = []
        self.double_accs: list[str] = []
        self.has_struct = False
        self.struct_size = 0
        self.has_indirect = False
        self.has_mayalias = False
        self.n_counter = 0

    # -- small vocabularies -------------------------------------------

    def _const(self) -> int:
        return self.t.pick(_CONSTS)

    def _index(self, var: str, size: int, depth: int = 1) -> str:
        """A non-negative affine subscript reduced mod the array size."""
        kind = self.t.draw(4 if depth > 0 else 3)
        if kind == 0:
            inner = var
        elif kind == 1:
            inner = f"{var} + {self._const()}"
        elif kind == 2:
            inner = f"{var} * {self.t.pick((1, 2, 3))} + {self._const()}"
        else:
            inner = f"({self._index(var, size, depth - 1)}) + {var}"
        return f"({inner}) % {size}"

    def _int_expr(self, var: str, depth: int = 2) -> str:
        """A small integer expression over the loop variable, constants,
        and (read-only) int array cells."""
        kind = self.t.draw(6 if depth > 0 else 3)
        if kind == 0:
            return var
        if kind == 1:
            return str(self._const())
        if kind == 2:
            if self.int_arrays:
                name, size = self.t.pick(self.int_arrays)
                return f"{name}[{self._index(var, size)}]"
            return f"{var} + {self._const()}"
        if kind == 5:
            # Division/remainder: index-shaped dividend, literal divisor.
            divisor = self.t.pick(_DIVISORS[1:])
            op2 = self.t.pick(("/", "%"))
            return (
                f"(({var} * {self.t.pick((1, 2, 3))} + {self._const()}) "
                f"{op2} {divisor})"
            )
        op = self.t.pick(("+", "-", "*"))
        lhs = self._int_expr(var, depth - 1)
        rhs = self._int_expr(var, depth - 1)
        return f"({lhs} {op} {rhs})"

    def _double_expr(self, var: str, depth: int = 1) -> str:
        kind = self.t.draw(4 if depth > 0 else 2)
        if kind == 0:
            return self.t.pick(_DYADIC)
        if kind == 1:
            if self.double_arrays:
                name, size = self.t.pick(self.double_arrays)
                return f"{name}[{self._index(var, size)}]"
            return self.t.pick(_DYADIC)
        op = self.t.pick(("+", "-", "*"))
        return (
            f"({self._double_expr(var, depth - 1)} {op} "
            f"{self._double_expr(var, depth - 1)})"
        )

    def _fresh_loop_var(self) -> str:
        self.n_counter += 1
        return f"i{self.n_counter}"

    # -- program layout -----------------------------------------------

    def generate(self, name: str) -> GeneratedProgram:
        shapes = self._plan_shapes()
        self._emit_globals(shapes)
        self._emit_helpers(shapes)
        self._emit_main(shapes)
        return GeneratedProgram(
            name=name,
            source=self.out.text(),
            family=shapes[0],
            choices=self.t.choices,
        )

    def _plan_shapes(self) -> list[str]:
        n_loops = 1 + self.t.draw(3)
        if self.family is not None:
            # Family mode (registry sweeps): every loop has the family's
            # dependence shape, so per-family speedup curves are clean.
            return [self.family] * n_loops
        return [self.t.pick(SHAPES) for _ in range(n_loops)]

    def _emit_globals(self, shapes: list[str]) -> None:
        n_int = 1 + self.t.draw(2)
        for k in range(n_int):
            size = self.t.pick(_SIZES)
            self.int_arrays.append((f"ga{k}", size))
            self.out.emit(f"int ga{k}[{size}];")
        if self.t.maybe():
            size = self.t.pick(_SIZES)
            self.double_arrays.append(("gd0", size))
            self.out.emit(f"double gd0[{size}];")
        if "struct" in shapes:
            self.has_struct = True
            self.struct_size = self.t.pick(_SIZES)
            self.out.emit("struct Cell { int lo; int hi; };")
            self.out.emit(f"struct Cell cells[{self.struct_size}];")

    def _emit_helpers(self, shapes: list[str]) -> None:
        if "indirect" in shapes:
            self.has_indirect = True
            c1, c2 = self._const(), self._const()
            self.out.emit(f"int pick_a(int x) {{ return x + {c1}; }}")
            self.out.emit(
                f"int pick_b(int x) {{ return x * {1 + self.t.draw(3)} + {c2}; }}"
            )
        if "mayalias" in shapes:
            self.has_mayalias = True
            off = self.t.pick((0, 1, 2, 3))
            op = self.t.pick(("+", "-", "*"))
            self.out.emit("void mix(int *dst, int *src, int n) {")
            self.out.emit("  int j;")
            self.out.emit("  for (j = 0; j < n; j = j + 1) {")
            self.out.emit(
                f"    dst[j] = dst[j] {op} src[(j + {off}) % n];"
            )
            self.out.emit("  }")
            self.out.emit("}")

    def _emit_main(self, shapes: list[str]) -> None:
        self.out.emit("int main() {")
        self.out.depth += 1
        for k in range(len(shapes)):
            self.out.emit(f"int acc{k} = {self._const()};")
            self.accs.append(f"acc{k}")
        if self.double_arrays or self.t.maybe():
            self.out.emit("double facc = 0.5;")
            self.double_accs.append("facc")
        self._emit_init_loops()
        for k, shape in enumerate(shapes):
            self._emit_loop(shape, f"acc{k}")
        self._emit_prints()
        self.out.emit("return 0;")
        self.out.depth -= 1
        self.out.emit("}")

    def _emit_init_loops(self) -> None:
        for name, size in self.int_arrays:
            var = self._fresh_loop_var()
            self.out.emit(f"int {var};")
            a, b = 1 + self.t.draw(9), self._const()
            self.out.emit(
                f"for ({var} = 0; {var} < {size}; {var} = {var} + 1) "
                f"{{ {name}[{var}] = {var} * {a} + {b}; }}"
            )
        for name, size in self.double_arrays:
            var = self._fresh_loop_var()
            self.out.emit(f"int {var};")
            self.out.emit(
                f"for ({var} = 0; {var} < {size}; {var} = {var} + 1) "
                f"{{ {name}[{var}] = {var} * {self.t.pick(_DYADIC)} + "
                f"{self.t.pick(_DYADIC)}; }}"
            )
        if self.has_struct:
            var = self._fresh_loop_var()
            self.out.emit(f"int {var};")
            self.out.emit(
                f"for ({var} = 0; {var} < {self.struct_size}; "
                f"{var} = {var} + 1) {{ cells[{var}].lo = {var} + "
                f"{self._const()}; cells[{var}].hi = {var} * "
                f"{1 + self.t.draw(4)}; }}"
            )

    # -- loop bodies per dependence shape -----------------------------

    def _loop_header(self, var: str) -> tuple[str, int, int]:
        bound = self.t.pick(_BOUNDS)
        step = self.t.pick((1, 2))
        kind = self.t.draw(3)  # 0 = for, 1 = while, 2 = do-while
        return ("for", "while", "dowhile")[kind], bound, step

    def _open_loop(self, var: str) -> tuple[str, int]:
        kind, bound, step = self._loop_header(var)
        self.out.emit(f"int {var};")
        if kind == "for":
            self.out.emit(
                f"for ({var} = 0; {var} < {bound}; {var} = {var} + {step}) {{"
            )
        elif kind == "while":
            self.out.emit(f"{var} = 0;")
            self.out.emit(f"while ({var} < {bound}) {{")
        else:
            self.out.emit(f"{var} = 0;")
            self.out.emit("do {")
        self.out.depth += 1
        return kind, bound

    def _close_loop(self, var: str, kind: str, bound: int, step_done: bool) -> None:
        if kind != "for" and not step_done:
            self.out.emit(f"{var} = {var} + 1;")
        self.out.depth -= 1
        if kind == "dowhile":
            self.out.emit(f"}} while ({var} < {bound});")
        else:
            self.out.emit("}")

    def _guarded(self, var: str, statements: list[str], allow_skip: bool) -> None:
        """Wrap the body statements in drawn control flow."""
        deco = self.t.draw(4 if allow_skip else 3)
        if deco == 0:
            for s in statements:
                self.out.emit(s)
        elif deco == 1:
            self.out.emit(f"if ({var} % 2 == {self.t.draw(2)}) {{")
            self.out.depth += 1
            for s in statements:
                self.out.emit(s)
            self.out.depth -= 1
            self.out.emit("} else {")
            self.out.depth += 1
            self.out.emit(f"{self.accs[0]} = {self.accs[0]} + {self._const()};")
            self.out.depth -= 1
            self.out.emit("}")
        elif deco == 2:
            arms = 2 + self.t.draw(2)
            self.out.emit(f"switch ({var} % {arms + 1}) {{")
            self.out.depth += 1
            for arm in range(arms):
                self.out.emit(f"case {arm}: {{")
                self.out.depth += 1
                if arm == 0:
                    for s in statements:
                        self.out.emit(s)
                else:
                    self.out.emit(
                        f"{self.accs[0]} = {self.accs[0]} + {arm};"
                    )
                self.out.emit("break;")
                self.out.depth -= 1
                self.out.emit("}")
            self.out.emit("default: {")
            self.out.depth += 1
            for s in statements:
                self.out.emit(s)
            self.out.emit("break;")
            self.out.depth -= 1
            self.out.emit("}")
            self.out.depth -= 1
            self.out.emit("}")
        else:
            # continue-guard: only emitted inside `for` loops.  The
            # modulus is odd so a step-2 induction never cancels it
            # into an always-skipped body.
            self.out.emit(f"if ({var} % {self.t.pick((3, 5))} == 0) {{ continue; }}")
            for s in statements:
                self.out.emit(s)

    def _emit_loop(self, shape: str, acc: str) -> None:
        var = self._fresh_loop_var()
        kind, bound = self._open_loop(var)
        allow_skip = kind == "for"
        if shape == "independent":
            name, size = self.t.pick(self.int_arrays)
            body = [f"{name}[{var} % {size}] = {self._int_expr(var)};"]
            if self.double_arrays and self.t.maybe():
                dname, dsize = self.t.pick(self.double_arrays)
                body.append(
                    f"{dname}[{var} % {dsize}] = {self._double_expr(var)};"
                )
            self._guarded(var, body, allow_skip)
        elif shape == "reduction":
            body = [f"{acc} = {acc} + {self._int_expr(var)};"]
            if self.double_accs and self.t.maybe():
                body.append(
                    f"{self.double_accs[0]} = {self.double_accs[0]} + "
                    f"{self._double_expr(var)};"
                )
            self._guarded(var, body, allow_skip)
        elif shape == "carried":
            name, size = self.t.pick(self.int_arrays)
            op = self.t.pick(("+", "-"))
            self._guarded(
                var,
                [
                    f"{name}[{var} % {size}] = "
                    f"{name}[({var} + {size} - 1) % {size}] {op} "
                    f"{self._int_expr(var, depth=1)};"
                ],
                allow_skip,
            )
        elif shape == "mayalias":
            a, asize = self.t.pick(self.int_arrays)
            b, _ = self.t.pick(self.int_arrays)
            self.out.emit(f"mix({a}, {b}, {min(asize, dict(self.int_arrays)[b])});")
            self.out.emit(f"{acc} = {acc} + {a}[{var} % {asize}];")
        elif shape == "indirect":
            self.out.emit("int (*fp)(int);")
            self.out.emit("fp = pick_a;")
            self.out.emit(
                f"if (({var} + {self.t.draw(2)}) % 2 == 0) {{ fp = pick_b; }}"
            )
            self.out.emit(f"{acc} = {acc} + fp({var} + {self._const()});")
        elif shape == "struct":
            idx = f"({var}) % {self.struct_size}"
            self._guarded(
                var,
                [
                    f"cells[{idx}].lo = cells[{idx}].lo + {self._int_expr(var, 1)};",
                    f"{acc} = {acc} + cells[{idx}].hi;",
                ],
                allow_skip,
            )
        elif shape == "nested":
            inner = self._fresh_loop_var()
            inner_bound = self.t.pick((2, 3, 4, 6))
            name, size = self.t.pick(self.int_arrays)
            self.out.emit(f"int {inner};")
            self.out.emit(
                f"for ({inner} = 0; {inner} < {inner_bound}; "
                f"{inner} = {inner} + 1) {{"
            )
            self.out.depth += 1
            if self.t.maybe():
                self.out.emit(
                    f"if ({inner} * {var} > {self.t.pick((6, 9, 12, 20))}) "
                    "{ break; }"
                )
            self.out.emit(
                f"{name}[({var} + {inner}) % {size}] = "
                f"{name}[({var} * {inner_bound} + {inner}) % {size}] + "
                f"{self._int_expr(inner, 1)};"
            )
            self.out.emit(f"{acc} = {acc} + {inner};")
            self.out.depth -= 1
            self.out.emit("}")
        else:  # pragma: no cover - SHAPES is closed
            raise ValueError(f"unknown shape {shape}")
        self._close_loop(var, kind, bound, step_done=False)

    def _emit_prints(self) -> None:
        for acc in self.accs:
            self.out.emit(f"print_int({acc});")
        for facc in self.double_accs:
            self.out.emit(f"print_float({facc});")
        for name, size in self.int_arrays:
            var = self._fresh_loop_var()
            self.out.emit(f"int {var};")
            self.out.emit(f"int sum_{name} = 0;")
            self.out.emit(
                f"for ({var} = 0; {var} < {size}; {var} = {var} + 1) "
                f"{{ sum_{name} = sum_{name} + {name}[{var}]; }}"
            )
            self.out.emit(f"print_int(sum_{name});")
        for name, size in self.double_arrays:
            var = self._fresh_loop_var()
            self.out.emit(f"int {var};")
            self.out.emit(f"double fsum_{name} = 0.0;")
            self.out.emit(
                f"for ({var} = 0; {var} < {size}; {var} = {var} + 1) "
                f"{{ fsum_{name} = fsum_{name} + {name}[{var}]; }}"
            )
            self.out.emit(f"print_float(fsum_{name});")
        if self.has_struct:
            var = self._fresh_loop_var()
            self.out.emit(f"int {var};")
            self.out.emit("int sum_cells = 0;")
            self.out.emit(
                f"for ({var} = 0; {var} < {self.struct_size}; "
                f"{var} = {var} + 1) {{ sum_cells = sum_cells + "
                f"cells[{var}].lo + cells[{var}].hi; }}"
            )
            self.out.emit("print_int(sum_cells);")


def generate_program(
    seed: int, family: str | None = None, name: str | None = None
) -> GeneratedProgram:
    """Generate one program from a PRNG seed (record mode)."""
    trace = DecisionTrace(seed=seed)
    program = _Generator(trace, family=family).generate(
        name or f"fuzz_{seed}"
    )
    program.seed = seed
    return program


def program_from_choices(
    choices, family: str | None = None, name: str | None = None
) -> GeneratedProgram:
    """Regenerate a program from a stored decision trace (replay mode).

    Total: any integer sequence produces a valid program (exhausted
    entries default to 0, oversized entries clamp), and the returned
    ``choices`` are the normalized effective decisions.
    """
    trace = DecisionTrace(choices=list(choices))
    return _Generator(trace, family=family).generate(name or "fuzz_replay")
