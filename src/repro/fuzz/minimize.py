"""Delta-debugging over the generator's decision trace.

A failing program is minimized by shrinking the *trace that generated
it*, not its text: every candidate trace maps (totally) to a valid
program, so the search space has no syntax errors, and "smaller trace"
means "structurally simpler program" because the generator treats
choice 0 as the simplest alternative everywhere.

Two reduction passes run to a joint fixpoint:

* **chunk deletion** (classic ddmin): remove contiguous chunks, halving
  the chunk size down to single entries;
* **pointwise lowering**: replace each entry by 0, then binary-search
  the smallest value that still fails.

Every accepted candidate is re-normalized (replayed through the
generator, which clamps oversized entries and trims unused ones), so
the result is a fixpoint of the whole procedure — minimizing a
minimized trace is a no-op — and the algorithm is deterministic: same
input trace + same predicate → same output trace.
"""

from __future__ import annotations

from collections.abc import Callable

from .gen import program_from_choices


def _normalize(choices, family) -> tuple[int, ...]:
    return program_from_choices(choices, family=family).choices


def minimize_choices(
    choices,
    still_fails: Callable[[tuple[int, ...]], bool],
    family: str | None = None,
    max_evaluations: int = 600,
) -> tuple[int, ...]:
    """Shrink ``choices`` while ``still_fails(candidate)`` holds.

    ``still_fails`` receives *normalized* candidate traces and must be
    deterministic.  Returns a normalized trace that still fails; if the
    original does not fail under normalization, it is returned as-is.
    """
    budget = [max_evaluations]

    def check(candidate: tuple[int, ...]) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return bool(still_fails(candidate))

    current = _normalize(choices, family)
    if not check(current):
        return current

    changed = True
    while changed and budget[0] > 0:
        changed = False
        # Pass 1: ddmin chunk deletion, coarse to fine.
        size = max(1, len(current) // 2)
        while size >= 1 and budget[0] > 0:
            start = 0
            while start < len(current) and budget[0] > 0:
                candidate = _normalize(
                    current[:start] + current[start + size:], family
                )
                if len(candidate) < len(current) and check(candidate):
                    current = candidate
                    changed = True
                    # Retry the same window: it now covers new entries.
                else:
                    start += size
            size //= 2
        # Pass 2: pointwise lowering toward 0.
        for index in range(len(current)):
            if budget[0] <= 0 or index >= len(current):
                break
            value = current[index]
            if value == 0:
                continue
            lowered = _try_lower(current, index, family, check)
            if lowered is not None and lowered != current:
                current = lowered
                changed = True
    return current


def _try_lower(current, index, family, check):
    """Smallest value at ``index`` that still fails, via binary search."""
    value = current[index]

    def with_value(v: int):
        return _normalize(
            current[:index] + (v,) + current[index + 1:], family
        )

    candidate = with_value(0)
    if check(candidate):
        return candidate
    low, high = 0, value  # low fails-not, high fails
    best = None
    while high - low > 1:
        mid = (low + high) // 2
        candidate = with_value(mid)
        if check(candidate):
            high = mid
            best = candidate
        else:
            low = mid
    return best
