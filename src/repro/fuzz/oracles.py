"""The five differential oracles the fuzzer cross-checks per program.

1. **engine** — the reference walker and the compiled engine must agree
   byte-for-byte: output, return value, trap state, *and* the
   steps/cycles counters, both for full runs and when a step budget
   cuts execution mid-program (the trap-site/boundary accounting the
   compiled engine corrects for).
2. **parallel** — a DOALL/HELIX/DSWP parallelization committed by the
   pass manager must preserve program output (floats compared with the
   harness's relative tolerance), and the dynamic race oracle must stay
   silent on it.
3. **binio** — ``print → parse → print`` must be a fixpoint and the
   binary ``.nir`` encoding must round-trip byte-identically, on a
   profile-metadata-rich module.
4. **checkers** — every race the dynamic oracle observes must be
   covered by a static ``races`` finding (the zero-false-negative
   contract of tests/checks/test_differential.py), on generated
   programs instead of registry workloads.
5. **deptest** — every symbolic dependence-test verdict
   (:mod:`repro.analysis.deptest`) is validated against the actual
   addresses the reference walker touches: a PROVEN_INDEPENDENT pair
   must never access a common address within one loop execution, and a
   PROVEN_DEPENDENT pair with a proven distance may only conflict at
   exactly that iteration gap.

Every oracle returns ``None`` (agreement) or a :class:`Divergence`;
unexpected exceptions inside an oracle are divergences too — a crash
while cross-checking is never "explained".
"""

from __future__ import annotations

import traceback

from ..analysis.deptest import DependenceTester
from ..analysis.loopinfo import LoopInfo
from ..checks import run_checkers
from ..checks.oracle import RaceOracle
from ..core.noelle import Noelle
from ..ir.instructions import Load, Store
from ..core.profiler import Profiler, embed_profile
from ..frontend.codegen import compile_source
from ..interp.interp import Interpreter, StepLimitExceeded
from ..ir import (
    parse_module,
    print_module,
    read_module,
    verify_module,
    write_module,
)
from ..robust.passmanager import PassManager
from ..runtime.machine import ParallelMachine
from .gen import GeneratedProgram

#: Parallelizing techniques the parallel/checker oracles rotate over.
TECHNIQUES = ("doall", "helix", "dswp")

#: Step budget for full fuzz runs; generated programs finish in a few
#: thousand steps, so hitting this means the input is invalid (the
#: case is skipped), not that an engine diverged.
FUZZ_STEP_LIMIT = 2_000_000


class Divergence:
    """One oracle disagreement, with everything needed to reproduce."""

    def __init__(self, oracle: str, detail: str, program: GeneratedProgram):
        self.oracle = oracle
        self.detail = detail
        self.program = program

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "detail": self.detail,
            "name": self.program.name,
            "family": self.program.family,
            "seed": self.program.seed,
            "choices": list(self.program.choices),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Divergence {self.oracle}: {self.detail[:60]}>"


class _EngineRun:
    """Outcome of one engine run, normalized for comparison."""

    def __init__(self, module, engine: str, step_limit: int):
        interp = Interpreter(module, step_limit=step_limit, engine=engine)
        self.exceeded = False
        self.error = ""
        try:
            result = interp.run()
        except StepLimitExceeded:
            self.exceeded = True
            result = interp.result
        except Exception as error:  # engine crash: compare the crash
            self.error = f"{type(error).__name__}: {error}"
            result = interp.result
        self.output = list(result.output)
        self.return_value = result.return_value
        self.steps = result.steps
        self.cycles = result.cycles
        self.trapped = result.trapped

    def signature(self) -> tuple:
        return (
            self.exceeded,
            self.error,
            self.output,
            self.return_value,
            self.steps,
            self.cycles,
            self.trapped,
        )

    def describe(self) -> str:
        return (
            f"exceeded={self.exceeded} error={self.error!r} "
            f"steps={self.steps} cycles={self.cycles} "
            f"trapped={self.trapped!r} ret={self.return_value!r} "
            f"output={self.output!r}"
        )


def _compare_engines(module_ref, module_eng, step_limit, program, label):
    ref = _EngineRun(module_ref, "reference", step_limit)
    eng = _EngineRun(module_eng, "compiled", step_limit)
    if ref.signature() != eng.signature():
        return (
            Divergence(
                "engine",
                f"{label}: reference[{ref.describe()}] vs "
                f"compiled[{eng.describe()}]",
                program,
            ),
            ref,
        )
    return None, ref


def engine_divergence(program: GeneratedProgram) -> Divergence | None:
    """Oracle 1: reference walker vs compiled engine."""
    module = compile_source(program.source, program.name)
    div, ref = _compare_engines(
        module, module, FUZZ_STEP_LIMIT, program, "full"
    )
    if div is not None:
        return div
    if ref.exceeded or ref.error:
        return None  # invalid input; both engines already agreed on it
    # Boundary probes: cut execution mid-program and right before the
    # end — the compiled engine's fused segments must charge steps at
    # exactly the same instruction the walker does.
    for limit in {max(1, ref.steps // 2), max(1, ref.steps - 1)}:
        div, _ = _compare_engines(
            module, module, limit, program, f"limit={limit}"
        )
        if div is not None:
            return div
    return None


def _outputs_match(a: list, b: list, rel: float = 1e-6) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if isinstance(x, float) or isinstance(y, float):
            scale = max(abs(float(x)), abs(float(y)), 1.0)
            if abs(float(x) - float(y)) > rel * scale:
                return False
        elif x != y:
            return False
    return True


def transform_divergences(
    program: GeneratedProgram, technique: str, num_cores: int = 4
) -> list[Divergence]:
    """Oracles 2 + 4: one parallelization, checked for output equality,
    dynamic race freedom, and static-checker coverage of every observed
    race."""
    divergences = []
    seq_module = compile_source(program.source, program.name)
    seq_interp = Interpreter(seq_module, step_limit=FUZZ_STEP_LIMIT)
    try:
        seq = seq_interp.run()
    except StepLimitExceeded:
        return []  # invalid input (engine oracle already vetted parity)
    par_module = compile_source(program.source, program.name)
    noelle = Noelle(par_module)
    noelle.attach_profile(Profiler(par_module).profile())
    manager = PassManager(noelle)
    manager.run_registered("rm-lc-dependences")
    options = (
        {"num_cores": num_cores} if technique in ("doall", "helix") else {}
    )
    manager.run_registered(technique, **options)
    rolled_back = [r.name for r in manager.rolled_back()]
    verify_module(par_module)
    par = ParallelMachine(par_module, num_cores=num_cores).run()
    if bool(par.trapped) != bool(seq.trapped):
        divergences.append(
            Divergence(
                "parallel",
                f"{technique}: trap mismatch {par.trapped!r} vs "
                f"{seq.trapped!r} (rolled_back={rolled_back})",
                program,
            )
        )
    elif not _outputs_match(par.output, seq.output):
        divergences.append(
            Divergence(
                "parallel",
                f"{technique}: outputs differ {par.output!r} vs "
                f"{seq.output!r} (rolled_back={rolled_back})",
                program,
            )
        )
    elif par.return_value != seq.return_value:
        divergences.append(
            Divergence(
                "parallel",
                f"{technique}: return {par.return_value!r} vs "
                f"{seq.return_value!r} (rolled_back={rolled_back})",
                program,
            )
        )
    # Oracle 4: static checkers vs the dynamic race oracle on the same
    # transformed module.
    diagnostics = run_checkers(par_module, noelle)
    static_races = [d for d in diagnostics if d.checker == "races"]
    oracle = RaceOracle(par_module, num_cores=num_cores)
    oracle.run()
    for race in oracle.races:
        covered = any(
            d.pass_name == race.kind and d.function == race.task
            for d in static_races
        )
        if not covered:
            divergences.append(
                Divergence(
                    "checkers",
                    f"{technique}: dynamic race [{race}] not covered by "
                    f"any static races finding "
                    f"(static={len(static_races)})",
                    program,
                )
            )
    if oracle.races and technique not in rolled_back:
        divergences.append(
            Divergence(
                "parallel",
                f"{technique}: committed parallelization races "
                f"dynamically: {oracle.races[0]}",
                program,
            )
        )
    return divergences


def binio_divergence(program: GeneratedProgram) -> Divergence | None:
    """Oracle 3: text print/parse fixpoint + binary round-trip identity
    on a metadata-rich module."""
    module = compile_source(program.source, program.name)
    # Embed profile counts so string/metadata encode paths are hot.
    embed_profile(module, Profiler(module).profile())
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    text2 = print_module(reparsed)
    if text2 != text:
        return Divergence(
            "binio", f"text round-trip not a fixpoint:\n{_diff(text, text2)}",
            program,
        )
    data = write_module(module)
    decoded = read_module(data)
    verify_module(decoded)
    text3 = print_module(decoded)
    if text3 != text:
        return Divergence(
            "binio", f"binary round-trip changed text:\n{_diff(text, text3)}",
            program,
        )
    data2 = write_module(decoded)
    if data2 != data:
        return Divergence(
            "binio",
            f"binary encoding not canonical: {len(data)} vs "
            f"{len(data2)} bytes",
            program,
        )
    return None


class _DepClaim:
    """One static dependence-test verdict awaiting dynamic validation."""

    __slots__ = ("fn_name", "loop", "a", "b", "verdict")

    def __init__(self, fn_name, loop, a, b, verdict):
        self.fn_name = fn_name
        self.loop = loop
        self.a = a
        self.b = b
        self.verdict = verdict

    def describe(self) -> str:
        return (
            f"{self.fn_name}/%{self.loop.header.name}: "
            f"{self.a.ref()} vs {self.b.ref()} claimed "
            f"{self.verdict.kind}"
            + (
                f"(distance={self.verdict.distance})"
                if self.verdict.distance is not None
                else ""
            )
            + f" [{self.verdict.reason}]"
        )


class _DepRecorder:
    """Per-loop (run, iteration, address) logs for claimed access pairs.

    Installed as the interpreter's ``edge_observer`` + ``memory_observer``
    pair: the edge observer counts loop executions (header entered from
    outside) and iterations (header entered from a latch), the memory
    observer stamps each claimed instruction's accesses with the current
    position of every claimed loop containing it.
    """

    def __init__(self, claims: "list[_DepClaim]"):
        self.loops: dict[int, object] = {}
        self.counters: dict[int, list[int]] = {}  # loop id -> [run, iter]
        self.inst_loops: dict[int, list[int]] = {}
        self.events: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
        for claim in claims:
            loop_id = id(claim.loop)
            self.loops[loop_id] = claim.loop
            self.counters.setdefault(loop_id, [0, -1])
            for inst in (claim.a, claim.b):
                loops = self.inst_loops.setdefault(id(inst), [])
                if loop_id not in loops:
                    loops.append(loop_id)

    def on_edge(self, from_block, to_block) -> None:
        for loop_id, loop in self.loops.items():
            if to_block is not loop.header:
                continue
            counter = self.counters[loop_id]
            if loop.contains_block(from_block):
                counter[1] += 1  # back edge: next iteration
            else:
                counter[0] += 1  # fresh execution of the loop
                counter[1] = 0

    def on_access(self, kind: str, address: int, inst) -> None:
        for loop_id in self.inst_loops.get(id(inst), ()):
            run, iteration = self.counters[loop_id]
            if iteration < 0:
                continue  # loop never entered through its header yet
            self.events.setdefault((id(inst), loop_id), []).append(
                (run, iteration, address)
            )

    def accesses_of(self, inst, loop) -> list[tuple[int, int, int]]:
        return self.events.get((id(inst), id(loop)), [])


def _check_dep_claim(claim: _DepClaim, recorder: _DepRecorder) -> str | None:
    """Violation description if the dynamic log contradicts the claim."""
    events_a = recorder.accesses_of(claim.a, claim.loop)
    events_b = recorder.accesses_of(claim.b, claim.loop)
    if not events_a or not events_b:
        return None
    by_run: dict[tuple[int, int], list[int]] = {}
    for run, iteration, address in events_b:
        by_run.setdefault((run, address), []).append(iteration)
    for run, iter_a, address in events_a:
        iters_b = by_run.get((run, address))
        if not iters_b:
            continue
        if claim.verdict.is_independent:
            return (
                f"{claim.describe()} but both touched address {address} "
                f"in run {run} (a@iter {iter_a}, b@iters {iters_b})"
            )
        distance = claim.verdict.distance
        for iter_b in iters_b:
            if claim.a is claim.b and iter_b == iter_a:
                continue  # an access trivially aliases itself
            if iter_b - iter_a != distance:
                return (
                    f"{claim.describe()} but address {address} in run "
                    f"{run} conflicts at gap {iter_b - iter_a} "
                    f"(a@iter {iter_a}, b@iter {iter_b})"
                )
    return None


def deptest_divergence(program: GeneratedProgram) -> Divergence | None:
    """Oracle 5: symbolic dependence-test verdicts vs observed addresses.

    Every PROVEN_INDEPENDENT pair must never touch a common address
    within one execution of its loop; every PROVEN_DEPENDENT pair with a
    proven distance ``d`` may only conflict at exactly that iteration
    gap.  Claims are enumerated statically (independently of the
    ``NOELLE_DEPTEST`` flag) and validated against the reference
    walker's memory trace.
    """
    module = compile_source(program.source, program.name)
    claims: list[_DepClaim] = []
    for fn in module.defined_functions():
        for loop in LoopInfo(fn).loops():
            tester = DependenceTester(loop)
            accesses = [
                inst
                for block in loop.blocks
                for inst in block.instructions
                if isinstance(inst, (Load, Store))
            ]
            for i, a in enumerate(accesses):
                for b in accesses[i:]:
                    if not isinstance(a, Store) and not isinstance(b, Store):
                        continue  # read/read pairs are not dependences
                    verdict = tester.test_pair(a, b)
                    if verdict.is_independent or (
                        verdict.is_dependent
                        and verdict.distance is not None
                    ):
                        claims.append(_DepClaim(fn.name, loop, a, b, verdict))
    if not claims:
        return None
    recorder = _DepRecorder(claims)
    interp = Interpreter(
        module, step_limit=FUZZ_STEP_LIMIT, engine="reference"
    )
    interp.edge_observer = recorder.on_edge
    interp.memory_observer = recorder.on_access
    try:
        interp.run()
    except StepLimitExceeded:
        return None  # invalid input; nothing to validate
    for claim in claims:
        violation = _check_dep_claim(claim, recorder)
        if violation is not None:
            return Divergence("deptest", violation, program)
    return None


def _diff(a: str, b: str, limit: int = 12) -> str:
    import difflib

    lines = list(
        difflib.unified_diff(
            a.splitlines(), b.splitlines(), lineterm="", n=1
        )
    )
    return "\n".join(lines[:limit])


def technique_for(program: GeneratedProgram) -> str:
    """Deterministic technique rotation so a campaign covers all three."""
    basis = program.seed if program.seed is not None else len(program.choices)
    return TECHNIQUES[basis % len(TECHNIQUES)]


def run_oracles(
    program: GeneratedProgram,
    oracles: tuple[str, ...] = (
        "engine", "parallel", "binio", "checkers", "deptest"
    ),
    technique: str | None = None,
) -> list[Divergence]:
    """All requested oracles over one program.

    An exception escaping an oracle is itself a divergence: the system
    under test crashed on a valid generated program.
    """
    divergences: list[Divergence] = []
    technique = technique or technique_for(program)

    def guarded(oracle_name, thunk):
        try:
            return thunk()
        except Exception:
            divergences.append(
                Divergence(
                    oracle_name,
                    f"oracle crashed:\n{traceback.format_exc(limit=8)}",
                    program,
                )
            )
            return None

    if "engine" in oracles:
        div = guarded("engine", lambda: engine_divergence(program))
        if div:
            divergences.append(div)
    if "parallel" in oracles or "checkers" in oracles:
        found = guarded(
            "parallel",
            lambda: transform_divergences(program, technique),
        )
        for div in found or []:
            if div.oracle in oracles:
                divergences.append(div)
    if "binio" in oracles:
        div = guarded("binio", lambda: binio_divergence(program))
        if div:
            divergences.append(div)
    if "deptest" in oracles:
        div = guarded("deptest", lambda: deptest_divergence(program))
        if div:
            divergences.append(div)
    return divergences


#: Names accepted by ``run_oracles`` / the CLI ``--oracles`` flag.
ORACLES = ("engine", "parallel", "binio", "checkers", "deptest")
