"""The decision trace: the generator's single source of randomness.

Every structural choice the program generator makes is a ``draw(n)``
from a :class:`DecisionTrace` — an integer in ``[0, n)``.  In *record*
mode the draws come from a seeded PRNG and are logged; in *replay* mode
they come from a stored sequence.  Two properties make the trace the
right substrate for delta-debugging:

* **replay is total** — an exhausted trace yields 0 and an oversized
  value clamps to ``n - 1``, so *any* integer sequence maps to *some*
  valid program.  Deleting or shrinking trace entries can never produce
  an unusable input, which is exactly what ddmin needs.
* **0 is the simplest alternative** — generators order their choices so
  that drawing 0 picks the structurally smallest option (fewest
  statements, no decoration, smallest constant).  Shrinking a trace
  toward zeros therefore shrinks the program.

The logged choices are always the *effective* (post-clamp) values, so
``replay(trace.choices)`` reproduces the program byte-for-byte — the
normalization that makes minimization idempotent.
"""

from __future__ import annotations

import random


class TraceError(Exception):
    """A malformed decision trace (negative or non-integer entries)."""


class DecisionTrace:
    """Record or replay a sequence of bounded integer choices."""

    def __init__(
        self,
        seed: int | None = None,
        choices: list[int] | tuple[int, ...] | None = None,
    ):
        if (seed is None) == (choices is None):
            raise TraceError("exactly one of seed/choices is required")
        self._rng = random.Random(seed) if seed is not None else None
        if choices is not None:
            for value in choices:
                if not isinstance(value, int) or isinstance(value, bool):
                    raise TraceError(f"non-integer trace entry {value!r}")
                if value < 0:
                    raise TraceError(f"negative trace entry {value}")
        self._replay = list(choices) if choices is not None else None
        self._cursor = 0
        self._log: list[int] = []

    def draw(self, n: int) -> int:
        """An integer in ``[0, n)``; logged so the trace can be replayed."""
        if n <= 0:
            raise TraceError(f"draw({n}) needs at least one alternative")
        if self._rng is not None:
            value = self._rng.randrange(n)
        elif self._cursor < len(self._replay):
            value = min(self._replay[self._cursor], n - 1)
            self._cursor += 1
        else:
            value = 0
        self._log.append(value)
        return value

    def maybe(self, weight_in: int = 1, weight_out: int = 1) -> bool:
        """A biased coin; 0 (the simplest choice) means "no"."""
        return self.draw(weight_in + weight_out) >= weight_out

    def pick(self, options):
        """One element of a non-empty sequence (0 -> first element)."""
        return options[self.draw(len(options))]

    @property
    def choices(self) -> tuple[int, ...]:
        """The effective (post-clamp) decisions made so far."""
        return tuple(self._log)

    def __len__(self) -> int:
        return len(self._log)
