"""repro.interp — the reference interpreter for the repro IR."""

from .interp import (
    INSTRUCTION_COSTS,
    INTRINSIC_COSTS,
    ExecutionResult,
    InterpError,
    Interpreter,
    MemoryTrap,
    StepLimitExceeded,
    run_module,
)

__all__ = [
    "INSTRUCTION_COSTS",
    "INTRINSIC_COSTS",
    "ExecutionResult",
    "InterpError",
    "Interpreter",
    "MemoryTrap",
    "StepLimitExceeded",
    "run_module",
]
