"""repro.interp — execution of the repro IR.

Two engines share one observable semantics: the tree-walking reference
interpreter (:mod:`repro.interp.interp`) and the compiled
closure-threaded engine (:mod:`repro.interp.engine`), selected via the
``NOELLE_ENGINE`` environment variable or the ``engine=`` argument.
"""

from .engine import (
    ENGINE_ENV,
    ExecutionEngine,
    engine_for,
    engine_mode,
    invalidate_module,
)
from .interp import (
    INSTRUCTION_COSTS,
    INTRINSIC_COSTS,
    ExecutionResult,
    InterpError,
    Interpreter,
    MemoryTrap,
    StepLimitExceeded,
    run_module,
)

__all__ = [
    "ENGINE_ENV",
    "ExecutionEngine",
    "INSTRUCTION_COSTS",
    "INTRINSIC_COSTS",
    "ExecutionResult",
    "InterpError",
    "Interpreter",
    "MemoryTrap",
    "StepLimitExceeded",
    "engine_for",
    "engine_mode",
    "invalidate_module",
    "run_module",
]
