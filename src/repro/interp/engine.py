"""Compiled execution engine: closure-threaded lowering of repro IR.

The reference interpreter (:mod:`repro.interp.interp`) re-resolves every
operand, re-dispatches on instruction class, and re-reads the cost table
on every step.  This module removes all of that from the hot path by
*compiling* each :class:`~repro.ir.module.Function` once:

* **slot frames** — SSA values get integer slot indices at compile time;
  at run time the frame is a plain Python list (``regs``), so an operand
  read is one indexed load instead of a dict probe keyed by ``id()``.
  Slot 0 holds the frame's allocation list, slot 1 the return value.
* **generated closures** — each instruction is rendered to Python source
  with its operand slots and constants folded in as literals, and the
  whole function body is ``exec``'d once; the resulting code objects are
  the "direct-threaded" ops.
* **straight-line segments** — each block is split into maximal runs of
  call-free instructions.  A segment's step count and cycle cost are
  pre-summed at compile time, so accounting is one addition per segment
  instead of one per instruction.  Calls are singleton segments because
  intrinsics observe ``result.cycles`` (``os_callback``, the HELIX
  sequential markers) and can change the clock period (``clock_set``).
* **exact trap accounting** — a fused segment charges its whole cost up
  front; every raise site inside the generated code first subtracts the
  not-yet-executed remainder (compile-time constants), so a trapping run
  reports byte-identical ``steps``/``cycles`` to the reference walker.
* **exact step budgets** — before running a segment the engine checks
  whether the whole segment fits under ``step_limit``; if not (or when a
  profiler observer is attached) it falls back to a per-instruction slow
  path over the same closures that reproduces the reference
  :class:`~repro.interp.interp.StepLimitExceeded` boundary exactly.
* **phi moves** — pre-scheduled per predecessor edge as one generated
  mover function (values are all read before any slot is written, so
  phi cycles stay atomic).

Compiled functions are cached in a module-versioned
:class:`ExecutionEngine`, keyed by ``id(fn)`` with a strong reference to
the Function — the same keying discipline as the PDG shards.  Engines
live in a per-module registry (:func:`engine_for`) held by weak module
references; invalidation is wired into ``Noelle.invalidate(fn)``,
``Noelle.adopt_pdg()`` and the transactional pass manager's rollback
path via :func:`invalidate_module`, so a rolled-back module never
executes stale code.

The switch between engines is ``NOELLE_ENGINE``:

* ``compiled`` (default) — interpreters route defined-function calls
  through the engine;
* ``reference`` — the tree-walking interpreter runs everything, serving
  as the differential-testing oracle.
"""

from __future__ import annotations

import os
import weakref

from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    ElemPtr,
    FCmp,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from ..ir.module import Function, Module
from ..ir.types import ArrayType, IntType, StructType
from ..ir.values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    GlobalVariable,
    UndefValue,
)
from ..perf import STATS
from .interp import (
    INSTRUCTION_COSTS,
    InterpError,
    MemoryTrap,
    StepLimitExceeded,
    _FunctionAddress,
)

#: Environment variable selecting the execution engine.
ENGINE_ENV = "NOELLE_ENGINE"

#: Version of the serializable compilation plan (see
#: :func:`hydrate_function`); bump on any change to plan structure,
#: bind specs, or the generated-source conventions they index into.
EPLAN_VERSION = 1


class EnginePlanError(Exception):
    """A serialized compilation plan does not match this function (stale
    cache entry, version skew, or corrupt data) — callers treat it as a
    cache miss and recompile."""

_MODES = ("compiled", "reference")

_TERMINATORS = (Branch, CondBranch, Switch, Ret, Unreachable)

_ICMP_SYMBOLS = {
    "eq": "==",
    "ne": "!=",
    "slt": "<",
    "sle": "<=",
    "sgt": ">",
    "sge": ">=",
}

_FCMP_SYMBOLS = {
    "oeq": "==",
    "one": "!=",
    "olt": "<",
    "ole": "<=",
    "ogt": ">",
    "oge": ">=",
}

_BINARY_EXPRS = {
    "add": "({a} + {b})",
    "sub": "({a} - {b})",
    "mul": "({a} * {b})",
    "and": "({a} & {b})",
    "or": "({a} | {b})",
    "xor": "({a} ^ {b})",
    "shl": "(({a}) << (({b}) % {w}))",
    "ashr": "(({a}) >> (({b}) % {w}))",
    "lshr": "((({a}) & {m}) >> (({b}) % {w}))",
}


def engine_mode(explicit: str | None = None) -> str:
    """Resolve the engine mode: an explicit request wins, then the
    ``NOELLE_ENGINE`` environment variable, then ``compiled``."""
    mode = explicit if explicit is not None else os.environ.get(ENGINE_ENV, "")
    mode = mode or "compiled"
    if mode not in _MODES:
        raise ValueError(
            f"unknown engine mode {mode!r} (expected one of {_MODES})"
        )
    return mode


class _Segment:
    """A straight-line, call-free run of instructions inside one block.

    ``fused`` executes the whole run in one generated function (used
    after the pre-summed ``steps``/``cycles`` are charged in a single
    addition); ``ops``/``insts``/``costs`` drive the per-instruction
    slow path near step-budget boundaries and under profiler observers.
    """

    __slots__ = ("steps", "cycles", "fused", "ops", "insts", "costs")

    def __init__(self, insts, costs):
        self.insts = insts
        self.costs = costs
        self.steps = len(insts)
        self.cycles = sum(costs)
        self.fused = None
        self.ops = ()


class CompiledBlock:
    """One basic block, lowered."""

    __slots__ = (
        "bb",
        "nphis",
        "phis",
        "movers",
        "move_pairs",
        "segments",
        "term_op",
        "term_cost",
        "term_inst",
    )

    def __init__(self, bb):
        self.bb = bb
        self.nphis = 0
        self.phis = ()
        #: id(pred BasicBlock) -> generated mover (or broken-edge raiser).
        self.movers = {}
        #: id(pred BasicBlock) -> tuple of (dst_slot, getter) for the
        #: slow path, or a raiser callable for broken edges.
        self.move_pairs = {}
        self.segments = ()
        self.term_op = None
        self.term_cost = 0
        self.term_inst = None


class CompiledFunction:
    """A function lowered to slot-frame closures."""

    __slots__ = (
        "fn", "nslots", "arg_slots", "entry", "blocks", "refs",
        "plan", "code",
    )

    def __init__(self, fn, nslots, arg_slots, entry, blocks, refs,
                 plan=None, code=None):
        self.fn = fn
        self.nslots = nslots
        self.arg_slots = arg_slots
        self.entry = entry
        self.blocks = blocks
        #: Keep-alive references for objects whose id() is baked into
        #: generated code (globals, callees) — id reuse would be fatal.
        self.refs = refs
        #: Process-independent wiring plan + generated code object; the
        #: pair is everything :func:`hydrate_function` needs to rebuild
        #: this CompiledFunction in another process without re-walking
        #: the IR or re-running CPython's compile().
        self.plan = plan
        self.code = code


def _fa_cmp(predicate: str, a, b) -> int:
    """Function-pointer comparison, mirroring ``Interpreter._icmp``.
    Returns -1 for ordered predicates so the generated caller can fix
    its accounting before raising."""
    a_key = a.fn.name if a.__class__ is _FunctionAddress else a
    b_key = b.fn.name if b.__class__ is _FunctionAddress else b
    if predicate == "eq":
        return 1 if a_key == b_key else 0
    if predicate == "ne":
        return 1 if a_key != b_key else 0
    return -1


def _slot_getter(i):
    return lambda st, regs: regs[i]


def _const_getter(c):
    return lambda st, regs: c


def _global_getter(g):
    return lambda st, regs: st.globals[g]


def _broken_edge_raiser(message):
    def raiser(st, regs):
        raise KeyError(message)

    return raiser


def _base_namespace() -> dict:
    """The namespace every generated code object executes against."""
    return {
        "InterpError": InterpError,
        "MemoryTrap": MemoryTrap,
        "_FunctionAddress": _FunctionAddress,
        "_fa_cmp": _fa_cmp,
        "_INF": float("inf"),
    }


def _split_segments(bb):
    """Deterministic block decomposition shared by compile and hydrate:
    leading phis, then maximal call-free runs (calls are singletons),
    stopping at the first terminator."""
    insts = bb.instructions
    index = 0
    phis = []
    while index < len(insts) and isinstance(insts[index], Phi):
        phis.append(insts[index])
        index += 1
    runs: list[list] = []
    run: list = []
    terminator = None
    for inst in insts[index:]:
        if isinstance(inst, _TERMINATORS):
            terminator = inst
            break
        if isinstance(inst, Call):
            if run:
                runs.append(run)
                run = []
            runs.append([inst])
        else:
            run.append(inst)
    if run:
        runs.append(run)
    return phis, runs, terminator


class _Compiler:
    """Lowers one Function to generated Python source, exec'd once."""

    def __init__(self, engine: "ExecutionEngine", fn: Function):
        self.engine = engine
        self.fn = fn
        self.slots: dict[int, int] = {}
        self.refs: list[object] = []
        self.ns: dict[str, object] = _base_namespace()
        self._unique = 0
        #: (ns name, spec) pairs for every process-specific object the
        #: generated code reads from its namespace; specs are
        #: process-independent and re-resolvable (see hydrate_function).
        self.binds: list[tuple[str, tuple]] = []
        self._global_names: dict[int, str] = {}
        self._block_index: dict[int, int] = {}
        self._inst_index: dict[int, tuple[int, int]] = {}

    # -- small helpers ---------------------------------------------------------

    def _name(self, prefix: str) -> str:
        self._unique += 1
        return f"{prefix}{self._unique}"

    def _bind(self, obj, prefix: str = "_C", spec: tuple | None = None) -> str:
        name = self._name(prefix)
        self.ns[name] = obj
        self.binds.append((name, spec if spec is not None else ("const", obj)))
        return name

    def _expr(self, v) -> str:
        """Render an operand: a slot read, or the constant folded in."""
        slot = self.slots.get(id(v))
        if slot is not None:
            return f"regs[{slot}]"
        if isinstance(v, ConstantInt):
            return repr(v.value)
        if isinstance(v, ConstantFloat):
            x = v.value
            if x != x or x in (float("inf"), float("-inf")):
                return self._bind(x)
            return repr(x)
        if isinstance(v, (ConstantNull, UndefValue)):
            return "0"
        if isinstance(v, GlobalVariable):
            self.refs.append(v)
            # The global's id() is process-specific, so it lives in the
            # namespace (rebound on hydrate) instead of the source text.
            name = self._global_names.get(id(v))
            if name is None:
                name = self._bind(id(v), "_G", ("globalid", v.name))
                self._global_names[id(v)] = name
            return f"st.globals[{name}]"
        if isinstance(v, Function):
            self.refs.append(v)
            return self._bind(
                self.engine.address_of(v), "_FA", ("fa", v.name)
            )
        raise InterpError(f"cannot evaluate {v!r}")

    def _getter(self, v):
        """Closure form of :meth:`_expr`, for the phi slow path."""
        slot = self.slots.get(id(v))
        if slot is not None:
            return _slot_getter(slot)
        if isinstance(v, (ConstantInt, ConstantFloat)):
            return _const_getter(v.value)
        if isinstance(v, (ConstantNull, UndefValue)):
            return _const_getter(0)
        if isinstance(v, GlobalVariable):
            self.refs.append(v)
            return _global_getter(id(v))
        if isinstance(v, Function):
            self.refs.append(v)
            return _const_getter(self.engine.address_of(v))
        raise InterpError(f"cannot evaluate {v!r}")

    def _getter_spec(self, v) -> tuple:
        """Serializable form of :meth:`_getter`."""
        slot = self.slots.get(id(v))
        if slot is not None:
            return ("slot", slot)
        if isinstance(v, (ConstantInt, ConstantFloat)):
            return ("const", v.value)
        if isinstance(v, (ConstantNull, UndefValue)):
            return ("const", 0)
        if isinstance(v, GlobalVariable):
            return ("global", v.name)
        if isinstance(v, Function):
            return ("fa", v.name)
        raise InterpError(f"cannot evaluate {v!r}")

    def _is_dynamic(self, v) -> bool:
        """True when the operand could hold a function pointer at run
        time (constants other than Functions never can)."""
        return id(v) in self.slots

    # -- instruction bodies ----------------------------------------------------
    #
    # Each emitter returns body lines (indented relative to the def's
    # body).  ``corr`` holds accounting-correction statements spliced in
    # before every raise: a fused segment pre-charges its whole cost, so
    # a trap at position k must give back the not-yet-executed tail to
    # stay byte-identical with the reference interpreter.  The slow path
    # passes an empty ``corr`` (it accounts per instruction already).

    def _raise(self, indent: str, corr: list[str], statement: str) -> list[str]:
        return [indent + line for line in corr] + [indent + statement]

    def _emit(self, inst, n: str, corr: list[str]) -> list[str]:
        if isinstance(inst, BinaryOp):
            return self._emit_binary(inst, n, corr)
        if isinstance(inst, ICmp):
            return self._emit_icmp(inst, n, corr)
        if isinstance(inst, FCmp):
            d = self.slots[id(inst)]
            sym = _FCMP_SYMBOLS[inst.predicate]
            a, b = self._expr(inst.lhs), self._expr(inst.rhs)
            return [f"regs[{d}] = 1 if ({a}) {sym} ({b}) else 0"]
        if isinstance(inst, Alloca):
            d = self.slots[id(inst)]
            size = inst.allocated_type.size_in_slots()
            return [
                f"a{n} = st.memory.allocate({size}, 'stack')",
                f"regs[0].append(a{n})",
                f"regs[{d}] = a{n}.base",
            ]
        if isinstance(inst, Load):
            return self._emit_load(inst, n, corr)
        if isinstance(inst, Store):
            return self._emit_store(inst, n, corr)
        if isinstance(inst, ElemPtr):
            return self._emit_elem_ptr(inst, n, corr)
        if isinstance(inst, Call):
            return self._emit_call(inst, n, corr)
        if isinstance(inst, Select):
            d = self.slots[id(inst)]
            c = self._expr(inst.condition)
            t = self._expr(inst.true_value)
            f = self._expr(inst.false_value)
            return [f"regs[{d}] = ({t}) if ({c}) else ({f})"]
        if isinstance(inst, Cast):
            return self._emit_cast(inst, n, corr)
        # Mirrors the reference walker's "cannot execute" arm (also hit
        # by a phi that is not in leading position).
        name = self._bind(inst, "_X", ("inst", *self._inst_index[id(inst)]))
        return self._raise(
            "", corr, f"raise InterpError('cannot execute %r' % ({name},))"
        )

    def _wrap(self, target: str, raw: str, width: int) -> list[str]:
        """Inline ``wrap_int``: mask to width, then signed adjustment."""
        full = 1 << width
        half = full >> 1
        mask = full - 1
        return [
            f"{target} = {raw} & {mask}",
            f"{target} = {target} - {full} if {target} >= {half} else {target}",
        ]

    def _emit_binary(self, inst, n, corr):
        op = inst.opcode
        d = self.slots[id(inst)]
        a, b = self._expr(inst.lhs), self._expr(inst.rhs)
        if op.startswith("f"):
            if op == "fdiv":
                return [
                    f"b{n} = {b}",
                    f"regs[{d}] = ({a}) / b{n} if b{n} != 0 else _INF",
                ]
            sym = {"fadd": "+", "fsub": "-", "fmul": "*"}[op]
            return [f"regs[{d}] = ({a}) {sym} ({b})"]
        ty = inst.type
        assert isinstance(ty, IntType)
        w = ty.width
        if op in ("sdiv", "srem"):
            noun = "division" if op == "sdiv" else "remainder"
            raw = (
                f"int(a{n} / b{n})"
                if op == "sdiv"
                else f"(a{n} - int(a{n} / b{n}) * b{n})"
            )
            lines = [
                f"a{n} = {a}",
                f"b{n} = {b}",
                f"if b{n} == 0:",
                *self._raise(
                    "    ", corr, f"raise InterpError('{noun} by zero')"
                ),
            ]
            lines += self._wrap(f"regs[{d}]", raw, w)
            return lines
        template = _BINARY_EXPRS.get(op)
        if template is None:
            return self._raise(
                "", corr, f"raise InterpError('unknown binary op {op}')"
            )
        raw = template.format(a=a, b=b, w=w, m=(1 << w) - 1)
        return self._wrap(f"regs[{d}]", raw, w)

    def _emit_icmp(self, inst, n, corr):
        d = self.slots[id(inst)]
        pred = inst.predicate
        a, b = self._expr(inst.lhs), self._expr(inst.rhs)
        if pred.startswith("u"):
            width = (
                inst.lhs.type.width
                if isinstance(inst.lhs.type, IntType)
                else 64
            )
            mask = (1 << width) - 1
            sym = _ICMP_SYMBOLS["s" + pred[1:]]

            def compare(x, y):
                return f"1 if ({x}) & {mask} {sym} ({y}) & {mask} else 0"

        else:
            sym = _ICMP_SYMBOLS[pred]

            def compare(x, y):
                return f"1 if ({x}) {sym} ({y}) else 0"

        checks = []
        if self._is_dynamic(inst.lhs) or isinstance(inst.lhs, Function):
            checks.append(f"a{n}.__class__ is _FunctionAddress")
        if self._is_dynamic(inst.rhs) or isinstance(inst.rhs, Function):
            checks.append(f"b{n}.__class__ is _FunctionAddress")
        if not checks:
            return [f"regs[{d}] = " + compare(a, b)]
        lines = [f"a{n} = {a}", f"b{n} = {b}"]
        lines.append("if " + " or ".join(checks) + ":")
        lines.append(f"    r{n} = _fa_cmp({pred!r}, a{n}, b{n})")
        lines.append(f"    if r{n} < 0:")
        lines += self._raise(
            "        ",
            corr,
            "raise InterpError('ordered comparison of function pointers')",
        )
        lines.append(f"    regs[{d}] = r{n}")
        lines.append("else:")
        lines.append(f"    regs[{d}] = " + compare(f"a{n}", f"b{n}"))
        return lines

    def _address_of(self, pointer, n, corr) -> list[str]:
        """Materialize ``a{n}`` as a validated address, mirroring
        ``Interpreter._as_address`` (checks elided for operands that are
        provably integers at compile time)."""
        lines = [f"a{n} = {self._expr(pointer)}"]
        if self._is_dynamic(pointer) or isinstance(pointer, Function):
            lines.append(f"if a{n}.__class__ is not int:")
            lines.append(f"    if a{n}.__class__ is _FunctionAddress:")
            lines += self._raise(
                "        ",
                corr,
                "raise MemoryTrap('dereference of a function pointer')",
            )
            lines += self._raise(
                "    ",
                corr,
                f"raise MemoryTrap('non-integer address %r' % (a{n},))",
            )
        return lines

    def _emit_load(self, inst, n, corr):
        d = self.slots[id(inst)]
        lines = self._address_of(inst.pointer, n, corr)
        lines.append("try:")
        lines.append(f"    regs[{d}] = st.memory.slots[a{n}]")
        lines.append("except KeyError:")
        lines += self._raise(
            "    ",
            corr,
            f"raise MemoryTrap('load from invalid address %d' % a{n}) "
            "from None",
        )
        return lines

    def _emit_store(self, inst, n, corr):
        lines = self._address_of(inst.pointer, n, corr)
        lines.append(f"m{n} = st.memory.slots")
        lines.append(f"if a{n} in m{n}:")
        lines.append(f"    m{n}[a{n}] = {self._expr(inst.value)}")
        lines.append("else:")
        lines += self._raise(
            "    ",
            corr,
            f"raise MemoryTrap('store to invalid address %d' % a{n})",
        )
        return lines

    def _emit_elem_ptr(self, inst, n, corr):
        d = self.slots[id(inst)]
        lines = self._address_of(inst.base, n, corr)
        terms: list[str] = []
        constant = 0

        def add(index_value, scale):
            nonlocal constant
            if isinstance(index_value, ConstantInt):
                constant += index_value.value * scale
            elif scale == 1:
                terms.append(f"({self._expr(index_value)})")
            elif scale:
                terms.append(f"({self._expr(index_value)}) * {scale}")

        indices = inst.indices
        current = inst.base.type.pointee
        add(indices[0], current.size_in_slots())
        for index_value in indices[1:]:
            if isinstance(current, ArrayType):
                add(index_value, current.element.size_in_slots())
                current = current.element
            elif isinstance(current, StructType):
                if not isinstance(index_value, ConstantInt):
                    raise InterpError(
                        f"dynamic struct index in {inst.ref()}"
                    )
                constant += current.field_offset(index_value.value)
                current = current.fields[index_value.value]
            else:
                return lines + self._raise(
                    "",
                    corr,
                    f"raise InterpError('bad elem_ptr into {current}')",
                )
        if constant or not terms:
            terms.append(str(constant))
        lines.append(f"regs[{d}] = a{n} + " + " + ".join(terms))
        return lines

    def _emit_call(self, inst, n, corr):
        args = "[" + ", ".join(self._expr(a) for a in inst.args) + "]"
        store = "" if inst.type.is_void() else f"regs[{self.slots[id(inst)]}] = "
        callee = inst.called_function()
        if callee is not None:
            self.refs.append(callee)
            name = self._bind(callee, "_F", ("callee", callee.name))
            return [f"{store}st.call_function({name}, {args})"]
        lines = [f"t{n} = {self._expr(inst.callee)}"]
        lines.append(f"if t{n}.__class__ is not _FunctionAddress:")
        lines += self._raise(
            "    ",
            corr,
            f"raise MemoryTrap('indirect call to non-function %r' % (t{n},))",
        )
        lines.append(f"{store}st.call_function(t{n}.fn, {args})")
        return lines

    def _emit_cast(self, inst, n, corr):
        d = self.slots[id(inst)]
        op = inst.opcode
        v = self._expr(inst.value)
        if op in ("bitcast", "ptrtoint", "inttoptr"):
            return [f"regs[{d}] = {v}"]
        if op in ("trunc", "sext"):
            return self._wrap(f"regs[{d}]", f"({v})", inst.type.width)
        if op == "zext":
            src_mask = (1 << inst.value.type.width) - 1
            return self._wrap(
                f"regs[{d}]", f"({v}) & {src_mask}", inst.type.width
            )
        if op == "sitofp":
            return [f"regs[{d}] = float({v})"]
        if op == "fptosi":
            return self._wrap(f"regs[{d}]", f"int({v})", inst.type.width)
        return self._raise(
            "", corr, f"raise InterpError('unknown cast {op}')"
        )

    def _emit_terminator(self, inst, block_names) -> list[str]:
        if isinstance(inst, Branch):
            return [f"return {block_names[id(inst.target)]}"]
        if isinstance(inst, CondBranch):
            c = self._expr(inst.condition)
            t = block_names[id(inst.true_block)]
            f = block_names[id(inst.false_block)]
            return [f"return {t} if ({c}) else {f}"]
        if isinstance(inst, Switch):
            table = {}
            cases = []
            for const, target in inst.cases():
                if const.value not in table:
                    table[const.value] = self.ns[block_names[id(target)]]
                    cases.append((const.value, self._block_index[id(target)]))
            name = self._bind(table, "_SW", ("switch", tuple(cases)))
            default = block_names[id(inst.default)]
            return [f"return {name}.get({self._expr(inst.value)}, {default})"]
        if isinstance(inst, Ret):
            if inst.value is None:
                return ["return None"]
            return [f"regs[1] = {self._expr(inst.value)}", "return None"]
        assert isinstance(inst, Unreachable)
        return ["raise InterpError('executed unreachable')"]

    # -- function assembly -----------------------------------------------------

    def compile(self) -> CompiledFunction:
        fn = self.fn
        nslots = 2
        arg_slots = []
        for arg in fn.args:
            self.slots[id(arg)] = nslots
            arg_slots.append(nslots)
            nslots += 1
        for block in fn.blocks:
            for inst in block.instructions:
                if not inst.type.is_void():
                    self.slots[id(inst)] = nslots
                    nslots += 1

        compiled = [CompiledBlock(bb) for bb in fn.blocks]
        block_names = {}
        for i, cb in enumerate(compiled):
            block_names[id(cb.bb)] = f"_B{i}"
            self.ns[f"_B{i}"] = cb
            self._block_index[id(cb.bb)] = i
        for bi, block in enumerate(fn.blocks):
            for ii, inst in enumerate(block.instructions):
                self._inst_index[id(inst)] = (bi, ii)

        defs: list[tuple[str, list[str]]] = []
        # (cb, [(segment, fused_name, [op_names...])...], term_name)
        fixups = []
        plan_blocks: list[dict] = []

        for cb in compiled:
            plan_block = {
                "nphis": 0, "movers": [], "pairs": [],
                "segments": [], "term": None,
            }
            phis, runs, terminator = _split_segments(cb.bb)
            if phis:
                self._schedule_phis(cb, phis, defs, plan_block)

            segments: list[tuple[_Segment, str, list[str]]] = []
            for run in runs:
                costs = [INSTRUCTION_COSTS.get(i.opcode, 1) for i in run]
                seg = _Segment(tuple(run), tuple(costs))
                fused_name = self._name("_s")
                fused_body: list[str] = []
                op_names: list[str] = []
                for k, seg_inst in enumerate(run):
                    n = self._name("")
                    remaining_steps = seg.steps - (k + 1)
                    remaining_cycles = seg.cycles - sum(costs[: k + 1])
                    corr = []
                    if remaining_steps:
                        corr.append(f"st.result.steps -= {remaining_steps}")
                    if remaining_cycles:
                        corr.append(f"st.result.cycles -= {remaining_cycles}")
                        corr.append(
                            "st.weighted_cycles -= "
                            f"{remaining_cycles} * st.clock_period"
                        )
                    fused_body += self._emit(seg_inst, n, corr)
                    op_name = f"_i{n}"
                    defs.append((op_name, self._emit(seg_inst, n, [])))
                    op_names.append(op_name)
                defs.append((fused_name, fused_body))
                segments.append((seg, fused_name, op_names))
                plan_block["segments"].append((fused_name, tuple(op_names)))

            term_name = None
            if terminator is not None:
                term_name = self._name("_t")
                defs.append(
                    (term_name, self._emit_terminator(terminator, block_names))
                )
                cb.term_inst = terminator
                cb.term_cost = INSTRUCTION_COSTS.get(terminator.opcode, 1)
                plan_block["term"] = term_name
            fixups.append((cb, segments, term_name))
            plan_blocks.append(plan_block)

        source_lines = []
        for name, body in defs:
            source_lines.append(f"def {name}(st, regs):")
            for line in body:
                source_lines.append("    " + line)
            source_lines.append("")
        code = compile(
            "\n".join(source_lines), f"<engine:{fn.name}>", "exec"
        )
        exec(code, self.ns)

        for cb, segments, term_name in fixups:
            wired = []
            for seg, fused_name, op_names in segments:
                seg.fused = self.ns[fused_name]
                seg.ops = tuple(self.ns[name] for name in op_names)
                wired.append(seg)
            cb.segments = tuple(wired)
            if term_name is not None:
                cb.term_op = self.ns[term_name]
            else:
                cb.term_op = _fell_through_raiser(cb.bb.name)
            for pkey, mover_name in cb.movers.items():
                if isinstance(mover_name, str):
                    cb.movers[pkey] = self.ns[mover_name]

        plan = {
            "version": EPLAN_VERSION,
            "nslots": nslots,
            "arg_slots": tuple(arg_slots),
            "nblocks": len(compiled),
            "binds": tuple(self.binds),
            "blocks": plan_blocks,
        }
        return CompiledFunction(
            fn, nslots, tuple(arg_slots), compiled[0], tuple(compiled),
            self.refs, plan, code,
        )

    def _schedule_phis(self, cb, phis, defs, plan_block) -> None:
        cb.nphis = len(phis)
        cb.phis = tuple(phis)
        plan_block["nphis"] = len(phis)
        preds = []
        seen = set()
        for phi in phis:
            for _value, pred in phi.incoming():
                if id(pred) not in seen:
                    seen.add(id(pred))
                    preds.append(pred)
        for pred in preds:
            pred_index = self._block_index[id(pred)]
            pairs = []
            broken = None
            for phi in phis:
                try:
                    value = phi.incoming_value_for(pred)
                except KeyError:
                    broken = phi
                    break
                pairs.append((self.slots[id(phi)], value))
            if broken is not None:
                message = (
                    f"phi {broken.ref()} has no incoming edge from "
                    f"{pred.name}"
                )
                raiser = _broken_edge_raiser(message)
                cb.movers[id(pred)] = raiser
                cb.move_pairs[id(pred)] = raiser
                plan_block["movers"].append((pred_index, None, message))
                plan_block["pairs"].append((pred_index, None, message))
                continue
            mover_name = self._name("_m")
            if len(pairs) == 1:
                dst, value = pairs[0]
                body = [f"regs[{dst}] = {self._expr(value)}"]
            else:
                # All sources are read before any destination is
                # written, keeping the parallel phi move atomic.
                body = [
                    f"t{i} = {self._expr(value)}"
                    for i, (_dst, value) in enumerate(pairs)
                ]
                body += [
                    f"regs[{dst}] = t{i}"
                    for i, (dst, _value) in enumerate(pairs)
                ]
            defs.append((mover_name, body))
            cb.movers[id(pred)] = mover_name
            cb.move_pairs[id(pred)] = tuple(
                (dst, self._getter(value)) for dst, value in pairs
            )
            plan_block["movers"].append((pred_index, mover_name, None))
            plan_block["pairs"].append((
                pred_index,
                tuple(
                    (dst, self._getter_spec(value)) for dst, value in pairs
                ),
                None,
            ))


def _fell_through_raiser(block_name):
    def raiser(st, regs):
        raise AssertionError(f"block %{block_name} fell through")

    return raiser


def _phis_slow(st, block, prev, regs):
    """Per-phi move with reference-exact accounting and observer calls."""
    if prev is None:
        raise AssertionError("phi in entry block")
    pairs = block.move_pairs.get(id(prev.bb))
    if pairs is None:
        phi = block.phis[0]
        raise KeyError(
            f"phi {phi.ref()} has no incoming edge from {prev.bb.name}"
        )
    if callable(pairs):
        pairs(st, regs)
    values = [getter(st, regs) for _dst, getter in pairs]
    result = st.result
    limit = st.step_limit
    observer = st.observer
    phis = block.phis
    for i, (dst, _getter) in enumerate(pairs):
        regs[dst] = values[i]
        result.steps += 1
        if result.steps > limit:
            raise StepLimitExceeded(f"exceeded {limit} steps")
        if observer is not None:
            observer(phis[i])


def _seg_slow(st, seg, regs):
    """Per-instruction execution of one segment: the exact reference
    accounting order (charge, check, observe, execute)."""
    result = st.result
    limit = st.step_limit
    observer = st.observer
    ops = seg.ops
    costs = seg.costs
    insts = seg.insts
    clock = st.clock_period
    for i in range(len(ops)):
        result.steps += 1
        if result.steps > limit:
            raise StepLimitExceeded(f"exceeded {limit} steps")
        cost = costs[i]
        result.cycles += cost
        st.weighted_cycles += cost * clock
        if observer is not None:
            observer(insts[i])
        ops[i](st, regs)


def _resolve_getter(spec, module, engine, refs):
    kind = spec[0]
    if kind == "slot":
        return _slot_getter(spec[1])
    if kind == "const":
        return _const_getter(spec[1])
    if kind == "global":
        gv = module.globals.get(spec[1])
        if gv is None:
            raise EnginePlanError(f"plan references unknown global @{spec[1]}")
        refs.append(gv)
        return _global_getter(id(gv))
    if kind == "fa":
        target = module.functions.get(spec[1])
        if target is None:
            raise EnginePlanError(
                f"plan references unknown function @{spec[1]}"
            )
        refs.append(target)
        return _const_getter(engine.address_of(target))
    raise EnginePlanError(f"unknown getter spec {spec!r}")


def hydrate_function(
    engine: "ExecutionEngine", fn: Function, plan: dict, code
) -> CompiledFunction:
    """Rebuild a :class:`CompiledFunction` from a serialized plan.

    The expensive parts of :meth:`_Compiler.compile` — walking the IR to
    emit source and running CPython's ``compile()`` — are skipped
    entirely: ``code`` is the already-compiled code object (marshal'd by
    the artifact cache) and ``plan`` carries the wiring (slots, segment
    boundaries, phi movers, namespace bind specs) as indices into the
    function's blocks/instructions.  Every process-specific value the
    generated code needs (global ids, function addresses, callees,
    switch tables) is re-resolved against ``fn``'s module here.

    Raises :class:`EnginePlanError` when the plan does not match ``fn``
    (stale or corrupt cache entry) — the caller recompiles.
    """
    module = fn.parent
    if module is None:
        raise EnginePlanError(f"function @{fn.name} has no parent module")
    if plan.get("version") != EPLAN_VERSION:
        raise EnginePlanError(
            f"plan version {plan.get('version')} != {EPLAN_VERSION}"
        )
    if plan.get("nblocks") != len(fn.blocks):
        raise EnginePlanError(
            f"plan has {plan.get('nblocks')} blocks, @{fn.name} has "
            f"{len(fn.blocks)}"
        )
    try:
        compiled = [CompiledBlock(bb) for bb in fn.blocks]
        ns = _base_namespace()
        for i, cb in enumerate(compiled):
            ns[f"_B{i}"] = cb
        refs: list[object] = []
        for name, spec in plan["binds"]:
            kind = spec[0]
            if kind == "const":
                ns[name] = spec[1]
            elif kind == "globalid":
                gv = module.globals.get(spec[1])
                if gv is None:
                    raise EnginePlanError(
                        f"plan references unknown global @{spec[1]}"
                    )
                refs.append(gv)
                ns[name] = id(gv)
            elif kind == "fa":
                target = module.functions.get(spec[1])
                if target is None:
                    raise EnginePlanError(
                        f"plan references unknown function @{spec[1]}"
                    )
                refs.append(target)
                ns[name] = engine.address_of(target)
            elif kind == "callee":
                target = module.functions.get(spec[1])
                if target is None:
                    raise EnginePlanError(
                        f"plan references unknown function @{spec[1]}"
                    )
                refs.append(target)
                ns[name] = target
            elif kind == "inst":
                ns[name] = fn.blocks[spec[1]].instructions[spec[2]]
            elif kind == "switch":
                ns[name] = {
                    value: compiled[bi] for value, bi in spec[1]
                }
            else:
                raise EnginePlanError(f"unknown bind spec {spec!r}")

        exec(code, ns)

        for cb, plan_block in zip(compiled, plan["blocks"]):
            phis, runs, terminator = _split_segments(cb.bb)
            seg_plans = plan_block["segments"]
            if (
                len(runs) != len(seg_plans)
                or len(phis) != plan_block["nphis"]
                or (terminator is None) != (plan_block["term"] is None)
            ):
                raise EnginePlanError(
                    f"plan does not match block %{cb.bb.name} of @{fn.name}"
                )
            cb.nphis = len(phis)
            cb.phis = tuple(phis)
            wired = []
            for (fused_name, op_names), run in zip(seg_plans, runs):
                costs = [INSTRUCTION_COSTS.get(i.opcode, 1) for i in run]
                seg = _Segment(tuple(run), tuple(costs))
                seg.fused = ns[fused_name]
                seg.ops = tuple(ns[name] for name in op_names)
                wired.append(seg)
            cb.segments = tuple(wired)
            if terminator is not None:
                cb.term_op = ns[plan_block["term"]]
                cb.term_inst = terminator
                cb.term_cost = INSTRUCTION_COSTS.get(terminator.opcode, 1)
            else:
                cb.term_op = _fell_through_raiser(cb.bb.name)
            for pred_index, mover_name, message in plan_block["movers"]:
                pred = fn.blocks[pred_index]
                cb.movers[id(pred)] = (
                    ns[mover_name]
                    if mover_name is not None
                    else _broken_edge_raiser(message)
                )
            for pred_index, pair_specs, message in plan_block["pairs"]:
                pred = fn.blocks[pred_index]
                if pair_specs is None:
                    cb.move_pairs[id(pred)] = _broken_edge_raiser(message)
                else:
                    cb.move_pairs[id(pred)] = tuple(
                        (dst, _resolve_getter(spec, module, engine, refs))
                        for dst, spec in pair_specs
                    )
    except EnginePlanError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise EnginePlanError(f"corrupt plan for @{fn.name}: {error}")
    return CompiledFunction(
        fn, plan["nslots"], tuple(plan["arg_slots"]), compiled[0],
        tuple(compiled), refs, plan, code,
    )


class ExecutionEngine:
    """Per-module cache of compiled functions.

    Keyed by ``id(fn)`` with a strong Function reference inside each
    :class:`CompiledFunction` (identical to the PDG shard discipline —
    the strong ref pins the id).  ``version`` counts full invalidations;
    the pass manager's rollback path bumps it so code compiled before a
    rollback can never run after one.
    """

    def __init__(self) -> None:
        self.functions: dict[int, CompiledFunction] = {}
        self.version = 0
        self._addresses: dict[int, _FunctionAddress] = {}

    def address_of(self, fn: Function) -> _FunctionAddress:
        """A canonical function-pointer value per Function (semantics
        only need name equality, but sharing avoids churn)."""
        address = self._addresses.get(id(fn))
        if address is None:
            address = _FunctionAddress(fn)
            self._addresses[id(fn)] = address
        return address

    def compiled(self, fn: Function) -> CompiledFunction:
        cf = self.functions.get(id(fn))
        if cf is None:
            with STATS.timer("engine.compile"):
                cf = _Compiler(self, fn).compile()
            self.functions[id(fn)] = cf
            STATS.count("engine.compiles")
            STATS.count("engine.blocks_lowered", len(cf.blocks))
        return cf

    def adopt(self, fn: Function, plan: dict, code) -> CompiledFunction:
        """Install a cached compilation plan instead of compiling.

        Raises :class:`EnginePlanError` when the plan is stale — the
        caller falls back to :meth:`compiled`.
        """
        with STATS.timer("engine.hydrate"):
            cf = hydrate_function(self, fn, plan, code)
        self.functions[id(fn)] = cf
        STATS.count("engine.hydrations")
        return cf

    def invalidate(self, fn: Function | None = None) -> None:
        """Drop one function's code (``fn``) or everything (None)."""
        if fn is not None:
            if self.functions.pop(id(fn), None) is not None:
                STATS.count("engine.invalidations")
            return
        if self.functions:
            STATS.count("engine.invalidations", len(self.functions))
        self.functions.clear()
        self._addresses.clear()
        self.version += 1

    # -- execution -------------------------------------------------------------

    def call(self, st, fn: Function, args: list[object]):
        """Execute one defined function on interpreter state ``st``."""
        cf = self.functions.get(id(fn))
        if cf is None:
            cf = self.compiled(fn)
        else:
            STATS.count("engine.cache_hits")
        regs = [None] * cf.nslots
        allocs: list = []
        regs[0] = allocs
        for slot, value in zip(cf.arg_slots, args):
            regs[slot] = value
        try:
            return self._run(st, cf, regs)
        finally:
            memory = st.memory
            for alloc in allocs:
                if alloc.alive:
                    memory.release(alloc.base)

    def _run(self, st, cf, regs):
        result = st.result
        limit = st.step_limit
        observer = st.observer
        edge_observer = st.edge_observer
        block = cf.entry
        prev = None
        executed = 0
        try:
            while True:
                executed += 1
                nphis = block.nphis
                if nphis:
                    mover = (
                        block.movers.get(id(prev.bb))
                        if prev is not None
                        else None
                    )
                    if (
                        mover is None
                        or observer is not None
                        or result.steps + nphis > limit
                    ):
                        _phis_slow(st, block, prev, regs)
                    else:
                        mover(st, regs)
                        result.steps += nphis
                for seg in block.segments:
                    if observer is None and result.steps + seg.steps <= limit:
                        result.steps += seg.steps
                        cycles = seg.cycles
                        result.cycles += cycles
                        st.weighted_cycles += cycles * st.clock_period
                        seg.fused(st, regs)
                    else:
                        _seg_slow(st, seg, regs)
                result.steps += 1
                if result.steps > limit:
                    raise StepLimitExceeded(f"exceeded {limit} steps")
                cost = block.term_cost
                result.cycles += cost
                st.weighted_cycles += cost * st.clock_period
                if observer is not None:
                    observer(block.term_inst)
                next_block = block.term_op(st, regs)
                if next_block is None:
                    return regs[1]
                if edge_observer is not None:
                    edge_observer(block.bb, next_block.bb)
                prev = block
                block = next_block
        finally:
            STATS.count("engine.blocks_compiled", executed)


#: Per-module engine registry.  Weak module keys: an engine holds no
#: reference to its module (only to the Functions it compiled), so
#: dropping the module drops the engine.
_ENGINES: "weakref.WeakKeyDictionary[Module, ExecutionEngine]" = (
    weakref.WeakKeyDictionary()
)


def engine_for(module: Module) -> ExecutionEngine:
    """The (lazily created) engine caching compiled code for ``module``."""
    engine = _ENGINES.get(module)
    if engine is None:
        engine = ExecutionEngine()
        _ENGINES[module] = engine
    return engine


def invalidate_module(module: Module, fn: Function | None = None) -> None:
    """Invalidate compiled code for ``module`` (one function or all)
    without instantiating an engine when none exists yet."""
    engine = _ENGINES.get(module)
    if engine is not None:
        engine.invalidate(fn)
