"""Reference interpreter for the repro IR.

Executes whole modules, playing the role of "running the binary" in the
paper's evaluation: the profilers (``noelle-prof-coverage``) run programs
under this interpreter, and the simulated multicore machine
(:mod:`repro.runtime.machine`) executes parallelized tasks with it while
accounting cycles.

Design points:

* **Memory** is slot-addressable: every scalar occupies one slot, matching
  ``Type.size_in_slots``.  Addresses are plain integers, so pointer
  arithmetic (``elem_ptr``) is exact integer math.
* **Traps**: loads/stores to unallocated or freed memory raise
  :class:`MemoryTrap` — the failure mode CARAT's guards exist to catch.
* **Cycle accounting**: each instruction has a cost
  (:data:`INSTRUCTION_COSTS`); the interpreter sums them, which is the
  basis of every speedup measurement in the Figure 5 reproduction.
* **Determinism**: the ``rand*`` intrinsics are deterministic PRNGs seeded
  via ``srand``, so every experiment is reproducible.
"""

from __future__ import annotations

from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    ElemPtr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import ArrayType, IntType, StructType
from ..ir.values import (
    Argument,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    GlobalVariable,
    UndefValue,
    Value,
    wrap_int,
)
from ..perf import STATS

#: Cycle costs per opcode — a simple in-order machine model.
INSTRUCTION_COSTS: dict[str, int] = {
    "add": 1,
    "sub": 1,
    "and": 1,
    "or": 1,
    "xor": 1,
    "shl": 1,
    "ashr": 1,
    "lshr": 1,
    "mul": 3,
    "sdiv": 20,
    "srem": 20,
    "fadd": 3,
    "fsub": 3,
    "fmul": 5,
    "fdiv": 20,
    "icmp": 1,
    "fcmp": 3,
    "alloca": 1,
    "load": 4,
    "store": 4,
    "elem_ptr": 1,
    "call": 10,
    "phi": 0,
    "select": 1,
    "br": 1,
    "cond_br": 1,
    "switch": 2,
    "ret": 1,
    "unreachable": 0,
    "trunc": 1,
    "zext": 1,
    "sext": 1,
    "bitcast": 0,
    "ptrtoint": 0,
    "inttoptr": 0,
    "sitofp": 2,
    "fptosi": 2,
}

#: Cycle costs of the runtime intrinsics (call overhead excluded).
INTRINSIC_COSTS: dict[str, int] = {
    "print_int": 50,
    "print_float": 50,
    "malloc": 60,
    "free": 30,
    "sqrt": 20,
    "exp": 40,
    "log": 40,
    "sin": 40,
    "cos": 40,
    "pow": 60,
    "fabs": 2,
    "floor": 2,
    # PRVG costs differ on purpose: selecting among them is PRVJeeves' job.
    "rand": 35,
    "rand_lcg": 8,
    "rand_xorshift": 12,
    "rand_mt": 45,
    "rand_pcg": 18,
    "srand": 5,
    "os_callback": 25,
    "os_time_hook": 15,
    "carat_guard": 6,
    "clock_set": 10,
    "exit": 1,
    # Parallel runtime: dispatch overhead is modeled by the machine, the
    # queue/signal primitives are cheap memory operations.
    "noelle_dispatch_doall": 0,
    "noelle_dispatch_helix": 0,
    "noelle_dispatch_dswp": 0,
    "queue_push_i64": 4,
    "queue_pop_i64": 4,
    "queue_push_f64": 4,
    "queue_pop_f64": 4,
    "helix_seq_begin": 1,
    "helix_seq_end": 1,
    "helix_iter_boundary": 0,
}


class InterpError(Exception):
    """Base class for runtime failures."""


class MemoryTrap(InterpError):
    """An access to unallocated or freed memory."""


class StepLimitExceeded(InterpError):
    """The configured execution budget ran out."""


class ExitProgram(Exception):
    """Raised internally by the ``exit`` intrinsic."""

    def __init__(self, code: int):
        self.code = code


class Allocation:
    """One live memory region [base, base+size)."""

    __slots__ = ("base", "size", "alive", "kind")

    def __init__(self, base: int, size: int, kind: str):
        self.base = base
        self.size = size
        self.alive = True
        self.kind = kind  # "global" | "stack" | "heap"


class Memory:
    """Slot-addressable memory with allocation tracking."""

    def __init__(self) -> None:
        self.slots: dict[int, object] = {}
        self.allocations: list[Allocation] = []
        self._next = 16  # keep 0..15 unmapped so null dereferences trap
        self._by_base: dict[int, Allocation] = {}

    def allocate(self, size: int, kind: str) -> Allocation:
        size = max(size, 1)
        alloc = Allocation(self._next, size, kind)
        self._next += size + 1  # guard slot between allocations
        self.allocations.append(alloc)
        self._by_base[alloc.base] = alloc
        for offset in range(size):
            self.slots[alloc.base + offset] = 0
        return alloc

    def release(self, base: int) -> None:
        alloc = self._by_base.get(base)
        if alloc is None or not alloc.alive:
            raise MemoryTrap(f"invalid free of address {base}")
        alloc.alive = False
        for offset in range(alloc.size):
            self.slots.pop(alloc.base + offset, None)

    def find_allocation(self, address: int) -> Allocation | None:
        for alloc in self.allocations:
            if alloc.alive and alloc.base <= address < alloc.base + alloc.size:
                return alloc
        return None

    def is_valid(self, address: int, size: int = 1) -> bool:
        alloc = self.find_allocation(address)
        return alloc is not None and address + size <= alloc.base + alloc.size

    def read(self, address: int) -> object:
        if address not in self.slots:
            raise MemoryTrap(f"load from invalid address {address}")
        return self.slots[address]

    def write(self, address: int, value: object) -> None:
        if address not in self.slots:
            raise MemoryTrap(f"store to invalid address {address}")
        self.slots[address] = value


class _DeterministicPRNG:
    """The family of pseudo-random generators PRVJeeves selects between.

    Each generator has distinct statistical quality and cost; all are
    deterministic for reproducibility.
    """

    def __init__(self, seed: int = 12345):
        self.state = seed & 0xFFFFFFFFFFFFFFFF or 0x9E3779B9

    def seed(self, value: int) -> None:
        self.state = value & 0xFFFFFFFFFFFFFFFF or 0x9E3779B9

    def lcg(self) -> int:
        self.state = (self.state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        return (self.state >> 33) & 0x7FFFFFFF

    def xorshift(self) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self.state = x
        return x & 0x7FFFFFFF

    def mt_like(self) -> int:
        # A tempered variant standing in for the Mersenne twister.
        self.state = (self.state * 2862933555777941757 + 3037000493) % (1 << 64)
        y = self.state >> 29
        y ^= y >> 11
        y ^= (y << 7) & 0x9D2C5680
        return y & 0x7FFFFFFF

    def pcg(self) -> int:
        old = self.state
        self.state = (old * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        xorshifted = ((old >> 18) ^ old) >> 27
        rot = old >> 59
        return ((xorshifted >> rot) | (xorshifted << ((-rot) & 31))) & 0x7FFFFFFF


class ExecutionResult:
    """Everything observable from one program run."""

    def __init__(self) -> None:
        self.return_value: object = None
        self.output: list[object] = []
        self.cycles: int = 0
        self.steps: int = 0
        self.trapped: str | None = None
        #: CARAT statistics: guards executed.
        self.guard_count: int = 0
        #: COOS statistics: OS callbacks executed, and the cycle times at
        #: which they fired (for timing-accuracy analysis).
        self.callback_count: int = 0
        self.callback_cycles: list[int] = []
        #: TIME statistics: clock changes executed.
        self.clock_changes: list[int] = []
        #: Parallel-region timing breakdowns (populated by the simulated
        #: machine / noelle-bin; empty under the plain interpreter).
        self.parallel_executions: list = []


#: Process-wide cap applied to every new interpreter's step limit.  The
#: transactional pass manager sets this around a pass so any interpreter
#: the pass spins up (profilers, remedy validators) is budgeted and fails
#: with the ordinary :class:`StepLimitExceeded` the manager rolls back on.
_STEP_BUDGET: int | None = None


def set_step_budget(limit: int | None) -> int | None:
    """Install a step cap for newly created interpreters; returns the
    previous cap so callers can restore it."""
    global _STEP_BUDGET
    previous = _STEP_BUDGET
    _STEP_BUDGET = limit
    return previous


class Interpreter:
    """Executes one module."""

    def __init__(
        self,
        module: Module,
        step_limit: int = 50_000_000,
        cost_model: dict[str, int] | None = None,
        engine: str | None = None,
    ):
        self.module = module
        self.step_limit = step_limit
        if _STEP_BUDGET is not None and _STEP_BUDGET < self.step_limit:
            self.step_limit = _STEP_BUDGET
        self.costs = dict(INSTRUCTION_COSTS)
        if cost_model:
            self.costs.update(cost_model)
        self.memory = Memory()
        self.globals: dict[int, int] = {}  # id(GlobalVariable) -> base address
        self.prng = _DeterministicPRNG()
        self.result = ExecutionResult()
        #: Optional per-instruction observer(instruction) for profilers.
        self.observer = None
        #: Optional CFG-edge observer(from_block, to_block) for profilers.
        self.edge_observer = None
        #: Optional call observer(function) for profilers.
        self.call_observer = None
        #: Optional memory observer(kind, address, instruction) with kind
        #: "load"/"store", for the dynamic race oracle.  Setting it forces
        #: the reference walker (compiled segments skip ``_execute``).
        self.memory_observer = None
        #: Current simulated clock period (TIME squeezer experiments).
        self.clock_period = 10
        #: Accumulated energy-ish metric: cycles * clock period.
        self.weighted_cycles = 0
        self._queues: dict[int, object] = {}
        #: The compiled execution engine routing this interpreter's
        #: defined-function calls, or None for the reference walker.
        #: Resolution order: explicit ``engine=`` argument, then the
        #: NOELLE_ENGINE environment variable, then "compiled".  Custom
        #: cost models always run on the reference walker (the engine
        #: bakes INSTRUCTION_COSTS into compiled segments).
        if cost_model:
            self.engine = None
        else:
            from .engine import engine_for, engine_mode

            self.engine = (
                engine_for(module)
                if engine_mode(engine) == "compiled"
                else None
            )
        self._init_globals()

    # -- setup ------------------------------------------------------------------
    def _init_globals(self) -> None:
        for gv in self.module.globals.values():
            size = gv.allocated_type.size_in_slots()
            alloc = self.memory.allocate(size, "global")
            self.globals[id(gv)] = alloc.base
            self._write_initializer(alloc.base, gv.allocated_type, gv.initializer)

    def _write_initializer(self, base: int, ty, init) -> None:
        if init is None:
            return
        if isinstance(init, ConstantInt):
            self.memory.write(base, init.value)
        elif isinstance(init, ConstantFloat):
            self.memory.write(base, init.value)
        elif isinstance(init, ConstantNull):
            self.memory.write(base, 0)
        elif isinstance(init, ConstantString):
            for offset, char in enumerate(init.text):
                self.memory.write(base + offset, ord(char))
        elif isinstance(init, ConstantArray):
            assert isinstance(ty, ArrayType)
            stride = ty.element.size_in_slots()
            for index, element in enumerate(init.elements):
                self._write_initializer(base + index * stride, ty.element, element)
        elif isinstance(init, (GlobalVariable, Function)):
            self.memory.write(base, self._value_of_constant(init))
        else:
            raise InterpError(f"unsupported initializer {init!r}")

    # -- running ----------------------------------------------------------------
    def run(self, function_name: str = "main", args: list[object] | None = None):
        """Execute ``function_name`` and return the populated result."""
        fn = self.module.get_function(function_name)
        try:
            self.result.return_value = self.call_function(fn, args or [])
        except ExitProgram as exit_program:
            self.result.return_value = exit_program.code
        except MemoryTrap as trap:
            self.result.trapped = str(trap)
        return self.result

    def call_function(self, fn: Function, args: list[object]) -> object:
        if self.call_observer is not None:
            self.call_observer(fn)
        if fn.is_declaration():
            return self._call_intrinsic(fn, args)
        if self.engine is not None and self.memory_observer is None:
            return self.engine.call(self, fn, args)
        frame: dict[int, object] = {}
        for formal, actual in zip(fn.args, args):
            frame[id(formal)] = actual
        frame_allocs: list[Allocation] = []
        try:
            return self._run_body(fn, frame, frame_allocs)
        finally:
            for alloc in frame_allocs:
                if alloc.alive:
                    self.memory.release(alloc.base)

    def _run_body(
        self, fn: Function, frame: dict[int, object], frame_allocs: list[Allocation]
    ) -> object:
        block = fn.entry
        prev_block: BasicBlock | None = None
        executed_blocks = 0
        try:
            while True:
                executed_blocks += 1
                next_block: BasicBlock | None = None
                # Evaluate phis atomically against the incoming edge.
                phi_values: list[tuple[Phi, object]] = []
                for inst in block.instructions:
                    if isinstance(inst, Phi):
                        assert prev_block is not None, "phi in entry block"
                        incoming = inst.incoming_value_for(prev_block)
                        phi_values.append((inst, self._value(incoming, frame)))
                    else:
                        break
                for phi, value in phi_values:
                    frame[id(phi)] = value
                    self._account(phi)
                for inst in block.instructions[len(phi_values) :]:
                    self._account(inst)
                    outcome = self._execute(inst, frame, frame_allocs)
                    if isinstance(outcome, _Return):
                        return outcome.value
                    if isinstance(outcome, BasicBlock):
                        next_block = outcome
                        break
                assert next_block is not None, f"block %{block.name} fell through"
                if self.edge_observer is not None:
                    self.edge_observer(block, next_block)
                prev_block, block = block, next_block
        finally:
            STATS.count("engine.blocks_reference", executed_blocks)

    def _account(self, inst: Instruction) -> None:
        self.result.steps += 1
        if self.result.steps > self.step_limit:
            raise StepLimitExceeded(f"exceeded {self.step_limit} steps")
        cost = self.costs.get(inst.opcode, 1)
        self.result.cycles += cost
        self.weighted_cycles += cost * self.clock_period
        if self.observer is not None:
            self.observer(inst)

    # -- evaluation -----------------------------------------------------------
    def _value(self, value: Value, frame: dict[int, object]) -> object:
        if isinstance(value, Instruction) or isinstance(value, Argument):
            if id(value) not in frame:
                raise InterpError(f"use of unset value {value.ref()}")
            return frame[id(value)]
        return self._value_of_constant(value)

    def _value_of_constant(self, value: Value) -> object:
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.value
        if isinstance(value, ConstantNull):
            return 0
        if isinstance(value, UndefValue):
            return 0
        if isinstance(value, GlobalVariable):
            return self.globals[id(value)]
        if isinstance(value, Function):
            return _FunctionAddress(value)
        raise InterpError(f"cannot evaluate {value!r}")

    def _execute(self, inst: Instruction, frame: dict[int, object], frame_allocs):
        if isinstance(inst, BinaryOp):
            frame[id(inst)] = self._binary(inst, frame)
        elif isinstance(inst, ICmp):
            frame[id(inst)] = self._icmp(inst, frame)
        elif isinstance(inst, FCmp):
            frame[id(inst)] = self._fcmp(inst, frame)
        elif isinstance(inst, Alloca):
            alloc = self.memory.allocate(inst.allocated_type.size_in_slots(), "stack")
            frame_allocs.append(alloc)
            frame[id(inst)] = alloc.base
        elif isinstance(inst, Load):
            address = self._as_address(self._value(inst.pointer, frame))
            if self.memory_observer is not None:
                self.memory_observer("load", address, inst)
            frame[id(inst)] = self.memory.read(address)
        elif isinstance(inst, Store):
            address = self._as_address(self._value(inst.pointer, frame))
            if self.memory_observer is not None:
                self.memory_observer("store", address, inst)
            self.memory.write(address, self._value(inst.value, frame))
        elif isinstance(inst, ElemPtr):
            frame[id(inst)] = self._elem_ptr(inst, frame)
        elif isinstance(inst, Call):
            value = self._call(inst, frame)
            if not inst.type.is_void():
                frame[id(inst)] = value
        elif isinstance(inst, Select):
            cond = self._value(inst.condition, frame)
            chosen = inst.true_value if cond else inst.false_value
            frame[id(inst)] = self._value(chosen, frame)
        elif isinstance(inst, Cast):
            frame[id(inst)] = self._cast(inst, frame)
        elif isinstance(inst, Branch):
            return inst.target
        elif isinstance(inst, CondBranch):
            cond = self._value(inst.condition, frame)
            return inst.true_block if cond else inst.false_block
        elif isinstance(inst, Switch):
            selector = self._value(inst.value, frame)
            for const, target in inst.cases():
                if const.value == selector:
                    return target
            return inst.default
        elif isinstance(inst, Ret):
            value = self._value(inst.value, frame) if inst.value is not None else None
            return _Return(value)
        elif isinstance(inst, Unreachable):
            raise InterpError("executed unreachable")
        else:
            raise InterpError(f"cannot execute {inst!r}")
        return None

    def _binary(self, inst: BinaryOp, frame) -> object:
        a = self._value(inst.lhs, frame)
        b = self._value(inst.rhs, frame)
        op = inst.opcode
        if op.startswith("f"):
            if op == "fadd":
                return a + b
            if op == "fsub":
                return a - b
            if op == "fmul":
                return a * b
            if op == "fdiv":
                return a / b if b != 0 else float("inf")
        ty = inst.type
        assert isinstance(ty, IntType)
        if op == "add":
            raw = a + b
        elif op == "sub":
            raw = a - b
        elif op == "mul":
            raw = a * b
        elif op == "sdiv":
            if b == 0:
                raise InterpError("division by zero")
            raw = int(a / b)  # C semantics: truncate toward zero
        elif op == "srem":
            if b == 0:
                raise InterpError("remainder by zero")
            raw = a - int(a / b) * b
        elif op == "and":
            raw = a & b
        elif op == "or":
            raw = a | b
        elif op == "xor":
            raw = a ^ b
        elif op == "shl":
            raw = a << (b % ty.width)
        elif op == "ashr":
            raw = a >> (b % ty.width)
        elif op == "lshr":
            raw = (a & ((1 << ty.width) - 1)) >> (b % ty.width)
        else:
            raise InterpError(f"unknown binary op {op}")
        return wrap_int(raw, ty)

    def _icmp(self, inst: ICmp, frame) -> int:
        a = self._value(inst.lhs, frame)
        b = self._value(inst.rhs, frame)
        if isinstance(a, _FunctionAddress) or isinstance(b, _FunctionAddress):
            a_key = a.fn.name if isinstance(a, _FunctionAddress) else a
            b_key = b.fn.name if isinstance(b, _FunctionAddress) else b
            if inst.predicate == "eq":
                return int(a_key == b_key)
            if inst.predicate == "ne":
                return int(a_key != b_key)
            raise InterpError("ordered comparison of function pointers")
        predicate = inst.predicate
        if predicate.startswith("u"):
            width = inst.lhs.type.width if isinstance(inst.lhs.type, IntType) else 64
            mask = (1 << width) - 1
            a, b = a & mask, b & mask
            predicate = "s" + predicate[1:]
        return int(
            {
                "eq": a == b,
                "ne": a != b,
                "slt": a < b,
                "sle": a <= b,
                "sgt": a > b,
                "sge": a >= b,
            }[predicate]
        )

    def _fcmp(self, inst: FCmp, frame) -> int:
        a = self._value(inst.lhs, frame)
        b = self._value(inst.rhs, frame)
        return int(
            {
                "oeq": a == b,
                "one": a != b,
                "olt": a < b,
                "ole": a <= b,
                "ogt": a > b,
                "oge": a >= b,
            }[inst.predicate]
        )

    def _elem_ptr(self, inst: ElemPtr, frame) -> int:
        address = self._as_address(self._value(inst.base, frame))
        pointee = inst.base.type.pointee
        indices = inst.indices
        first = self._value(indices[0], frame)
        address += first * pointee.size_in_slots()
        current = pointee
        for index_value in indices[1:]:
            if isinstance(current, ArrayType):
                index = self._value(index_value, frame)
                address += index * current.element.size_in_slots()
                current = current.element
            elif isinstance(current, StructType):
                index = self._value(index_value, frame)
                address += current.field_offset(index)
                current = current.fields[index]
            else:
                raise InterpError(f"bad elem_ptr into {current}")
        return address

    def _cast(self, inst: Cast, frame) -> object:
        value = self._value(inst.value, frame)
        op = inst.opcode
        if op in ("bitcast", "ptrtoint", "inttoptr"):
            return value
        if op in ("trunc", "zext", "sext"):
            ty = inst.type
            assert isinstance(ty, IntType)
            if op == "zext":
                from_ty = inst.value.type
                assert isinstance(from_ty, IntType)
                value = value & ((1 << from_ty.width) - 1)
            return wrap_int(value, ty)
        if op == "sitofp":
            return float(value)
        if op == "fptosi":
            return wrap_int(int(value), inst.type)
        raise InterpError(f"unknown cast {op}")

    def _as_address(self, value: object) -> int:
        if isinstance(value, _FunctionAddress):
            raise MemoryTrap("dereference of a function pointer")
        if not isinstance(value, int):
            raise MemoryTrap(f"non-integer address {value!r}")
        return value

    # -- calls -----------------------------------------------------------------
    def _call(self, inst: Call, frame) -> object:
        callee = inst.called_function()
        if callee is None:
            target = self._value(inst.callee, frame)
            if not isinstance(target, _FunctionAddress):
                raise MemoryTrap(f"indirect call to non-function {target!r}")
            callee = target.fn
        args = [self._value(a, frame) for a in inst.args]
        return self.call_function(callee, args)

    def _call_intrinsic(self, fn: Function, args: list[object]) -> object:
        name = fn.name
        self.result.cycles += INTRINSIC_COSTS.get(name, 20)
        self.weighted_cycles += INTRINSIC_COSTS.get(name, 20) * self.clock_period
        import math

        if name == "print_int":
            self.result.output.append(int(args[0]))
            return None
        if name == "print_float":
            self.result.output.append(float(args[0]))
            return None
        if name == "malloc":
            return self.memory.allocate(int(args[0]), "heap").base
        if name == "free":
            self.memory.release(int(args[0]))
            return None
        if name == "sqrt":
            return math.sqrt(args[0]) if args[0] >= 0 else float("nan")
        if name == "exp":
            return math.exp(min(args[0], 700.0))
        if name == "log":
            return math.log(args[0]) if args[0] > 0 else float("-inf")
        if name == "sin":
            return math.sin(args[0])
        if name == "cos":
            return math.cos(args[0])
        if name == "pow":
            return float(args[0]) ** float(args[1])
        if name == "fabs":
            return abs(args[0])
        if name == "floor":
            return math.floor(args[0])
        if name == "rand":
            return self.prng.mt_like()  # libc default stands in for "rand"
        if name == "rand_lcg":
            return self.prng.lcg()
        if name == "rand_xorshift":
            return self.prng.xorshift()
        if name == "rand_mt":
            return self.prng.mt_like()
        if name == "rand_pcg":
            return self.prng.pcg()
        if name == "srand":
            self.prng.seed(int(args[0]))
            return None
        if name == "os_callback":
            self.result.callback_count += 1
            self.result.callback_cycles.append(self.result.cycles)
            return None
        if name == "os_time_hook":
            self.result.callback_count += 1
            self.result.callback_cycles.append(self.result.cycles)
            return None
        if name == "carat_guard":
            self.result.guard_count += 1
            address, size = int(args[0]), int(args[1])
            if not self.memory.is_valid(address, max(size, 1)):
                raise MemoryTrap(f"CARAT guard caught invalid access at {address}")
            return None
        if name == "clock_set":
            self.clock_period = int(args[0])
            self.result.clock_changes.append(self.clock_period)
            return None
        if name == "exit":
            raise ExitProgram(int(args[0]))
        handled = self._call_parallel_intrinsic(name, args)
        if handled is not NotImplemented:
            return handled
        raise InterpError(f"call to unknown external @{name}")

    def _call_parallel_intrinsic(self, name: str, args: list[object]) -> object:
        """Parallel-runtime intrinsics.

        The base interpreter provides *sequential* semantics: dispatchers
        run every core's task back to back, queues are unbounded in-memory
        deques, and HELIX markers are no-ops.  The simulated multicore
        machine (:class:`repro.runtime.machine.ParallelMachine`) overrides
        this to account per-core cycles and model the parallel schedule.
        """
        if name in ("noelle_dispatch_doall", "noelle_dispatch_helix",
                    "noelle_dispatch_dswp"):
            task_fn, env_address, num_cores = args[0], args[1], int(args[2])
            if not isinstance(task_fn, _FunctionAddress):
                raise MemoryTrap("dispatch of a non-function")
            if name == "noelle_dispatch_helix":
                # Sequential reference semantics: one core runs every
                # iteration in order.
                self.call_function(task_fn.fn, [env_address, 0, 1])
            else:
                for core in range(num_cores):
                    self.call_function(task_fn.fn, [env_address, core, num_cores])
            return None
        if name == "queue_push_i64" or name == "queue_push_f64":
            if int(args[0]) not in self._queues:
                from collections import deque

                self._queues[int(args[0])] = deque()
            self._queues[int(args[0])].append(args[1])
            return None
        if name == "queue_pop_i64" or name == "queue_pop_f64":
            queue = self._queues.get(int(args[0]))
            if not queue:
                raise InterpError(f"pop from empty queue {args[0]}")
            return queue.popleft()
        if name in ("helix_seq_begin", "helix_seq_end", "helix_iter_boundary"):
            return None
        return NotImplemented


class _Return:
    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value


class _FunctionAddress:
    """Runtime representation of a function pointer."""

    __slots__ = ("fn",)

    def __init__(self, fn: Function):
        self.fn = fn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<&@{self.fn.name}>"


def run_module(
    module: Module,
    function_name: str = "main",
    args: list[object] | None = None,
    step_limit: int = 50_000_000,
    engine: str | None = None,
) -> ExecutionResult:
    """One-shot convenience: interpret ``function_name`` in a fresh state."""
    return Interpreter(module, step_limit=step_limit, engine=engine).run(
        function_name, args
    )
