"""Binary serialization of the repro IR (the ``.nir`` format).

A compact, versioned binary form of :class:`~repro.ir.module.Module`,
pairing the textual IR with a fast interchange format the way production
compiler infrastructures do (LLVM bitcode, MLIR bytecode).  The encoding
is designed for cheap reads:

* **versioned header** — a 4-byte magic plus a format-version varint; a
  reader refuses files from a different format generation with a
  structured :class:`BinVersionError` instead of misparsing them.
* **string interning** — every identifier (function, block, value,
  struct, metadata key) is written once into a string table and
  referenced by varint index.
* **type interning** — types are structurally deduplicated into a type
  table; compound types reference earlier entries, and named structs
  reference the module's struct declarations nominally (bodies are
  written once, so recursive struct types round-trip).
* **varint instruction streams** — each instruction is one opcode tag
  followed by varint-encoded operands (value indices, interned type and
  string references, zigzag integers); per-function value/type tables
  let the reader type forward references without a second pass, using
  the same placeholder-then-patch scheme as the text parser.

The round-trip contract (enforced by ``tests/ir/test_binio.py``) is that
``read(write(m))`` prints byte-identically to ``parse(print(m))`` — and
beyond the printer, the reader restores naming state (``_used_names``,
``_name_counter``) and all ``noelle.*`` metadata exactly, so a module
hydrated from ``.nir`` behaves identically to the one that was written
under every later transform.

Errors are structured: :class:`BinFormatError` (corrupt or malformed
content), :class:`BinTruncatedError` (unexpected end of data), and
:class:`BinVersionError` (wrong magic or unsupported version).
"""

from __future__ import annotations

import struct

from .instructions import (
    CAST_OPS,
    FCMP_PREDICATES,
    FLOAT_BINARY_OPS,
    ICMP_PREDICATES,
    INT_BINARY_OPS,
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    ElemPtr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    LabelType,
    PointerType,
    StructType,
    Type,
    VoidType,
)
from .values import (
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    GlobalVariable,
    UndefValue,
    Value,
)

#: First four bytes of every ``.nir`` file.
MAGIC = b"\x7fNIR"

#: Bump on any incompatible change to the encoding below.
FORMAT_VERSION = 1

#: Canonical file extension for the binary form.
EXTENSION = ".nir"


class BinFormatError(Exception):
    """Malformed or corrupt binary IR content."""


class BinTruncatedError(BinFormatError):
    """The data ended in the middle of a record."""


class BinVersionError(BinFormatError):
    """Wrong magic bytes or an unsupported format version."""


# Stable opcode orderings, frozen per FORMAT_VERSION.
_BIN_OPCODES = tuple(INT_BINARY_OPS) + tuple(FLOAT_BINARY_OPS)
_BIN_OPCODE_INDEX = {op: i for i, op in enumerate(_BIN_OPCODES)}
_ICMP_INDEX = {p: i for i, p in enumerate(ICMP_PREDICATES)}
_FCMP_INDEX = {p: i for i, p in enumerate(FCMP_PREDICATES)}
_CAST_INDEX = {op: i for i, op in enumerate(CAST_OPS)}

# Type table record tags.
_TY_INT, _TY_FLOAT, _TY_VOID, _TY_LABEL = 0, 1, 2, 3
_TY_PTR, _TY_ARRAY, _TY_STRUCT, _TY_FN = 4, 5, 6, 7

# Operand/constant record tags.
_OP_VALUE, _OP_INT, _OP_FLOAT, _OP_NULL = 0, 1, 2, 3
_OP_UNDEF, _OP_GLOBAL, _OP_FUNCTION, _OP_STRING, _OP_ARRAY = 4, 5, 6, 7, 8

# Instruction stream tags.
_I_BINARY, _I_ICMP, _I_FCMP, _I_ALLOCA, _I_LOAD, _I_STORE = 0, 1, 2, 3, 4, 5
_I_ELEMPTR, _I_CALL, _I_PHI, _I_SELECT, _I_CAST = 6, 7, 8, 9, 10
_I_BR, _I_CONDBR, _I_SWITCH, _I_RET, _I_UNREACHABLE = 11, 12, 13, 14, 15

# Metadata value tags.
_M_NONE, _M_FALSE, _M_TRUE, _M_INT, _M_FLOAT = 0, 1, 2, 3, 4
_M_STR, _M_BYTES, _M_LIST, _M_TUPLE, _M_DICT = 5, 6, 7, 8, 9

_PACK_F64 = struct.Struct("<d")


def _zigzag(n: int) -> int:
    return n * 2 if n >= 0 else -n * 2 - 1


def _unzigzag(z: int) -> int:
    return z // 2 if z % 2 == 0 else -(z // 2) - 1


# -- writer -------------------------------------------------------------------


class _Writer:
    """Serializes one module; strings/types are interned on demand."""

    def __init__(self, module: Module):
        self.module = module
        self._strings: dict[str, int] = {}
        self._string_list: list[str] = []
        self._types: dict[tuple, int] = {}
        self._type_records: list[tuple] = []

    # -- interning ----------------------------------------------------------

    def _string(self, text: str) -> int:
        index = self._strings.get(text)
        if index is None:
            index = len(self._string_list)
            self._strings[text] = index
            self._string_list.append(text)
        return index

    def _type(self, ty: Type) -> int:
        key = self._type_key(ty)
        index = self._types.get(key)
        if index is not None:
            return index
        record = self._type_record(ty)
        # Interning compound operand types first means every reference in
        # ``record`` points at an earlier table entry; re-check in case a
        # recursive struct resolved the key while building the record.
        index = self._types.get(key)
        if index is None:
            index = len(self._type_records)
            self._types[key] = index
            self._type_records.append(record)
        return index

    def _type_key(self, ty: Type) -> tuple:
        if isinstance(ty, IntType):
            return ("i", ty.width)
        if isinstance(ty, FloatType):
            return ("f",)
        if isinstance(ty, VoidType):
            return ("v",)
        if isinstance(ty, LabelType):
            return ("l",)
        if isinstance(ty, PointerType):
            return ("p", self._type_key(ty.pointee))
        if isinstance(ty, ArrayType):
            return ("a", self._type_key(ty.element), ty.count)
        if isinstance(ty, StructType):
            return ("s", ty.name)
        if isinstance(ty, FunctionType):
            return (
                "fn",
                self._type_key(ty.ret),
                tuple(self._type_key(p) for p in ty.params),
                ty.vararg,
            )
        raise BinFormatError(f"cannot serialize type {ty!r}")

    def _type_record(self, ty: Type) -> tuple:
        if isinstance(ty, IntType):
            return (_TY_INT, ty.width)
        if isinstance(ty, FloatType):
            return (_TY_FLOAT,)
        if isinstance(ty, VoidType):
            return (_TY_VOID,)
        if isinstance(ty, LabelType):
            return (_TY_LABEL,)
        if isinstance(ty, PointerType):
            return (_TY_PTR, self._type(ty.pointee))
        if isinstance(ty, ArrayType):
            return (_TY_ARRAY, self._type(ty.element), ty.count)
        if isinstance(ty, StructType):
            if ty.name not in self.module.structs:
                raise BinFormatError(
                    f"struct %{ty.name} is used but not declared in "
                    f"module {self.module.name!r}"
                )
            return (_TY_STRUCT, self._string(ty.name))
        if isinstance(ty, FunctionType):
            params = tuple(self._type(p) for p in ty.params)
            return (_TY_FN, self._type(ty.ret), params, 1 if ty.vararg else 0)
        raise BinFormatError(f"cannot serialize type {ty!r}")

    # -- emission -----------------------------------------------------------

    def write(self) -> bytes:
        body = bytearray()
        self._emit_module(body)
        out = bytearray(MAGIC)
        _varint(out, FORMAT_VERSION)
        # String and type tables were populated while emitting the body.
        _varint(out, len(self._string_list))
        for text in self._string_list:
            raw = text.encode("utf-8")
            _varint(out, len(raw))
            out += raw
        _varint(out, len(self._type_records))
        for record in self._type_records:
            _varint(out, record[0])
            if record[0] == _TY_FN:
                _varint(out, record[1])
                _varint(out, len(record[2]))
                for param in record[2]:
                    _varint(out, param)
                _varint(out, record[3])
            else:
                for field in record[1:]:
                    _varint(out, field)
        out += body
        return bytes(out)

    def _emit_module(self, out: bytearray) -> None:
        module = self.module
        _varint(out, self._string(module.name))
        _varint(out, len(module.structs))
        for struct_ty in module.structs.values():
            _varint(out, self._string(struct_ty.name))
            _varint(out, len(struct_ty.fields))
            for field in struct_ty.fields:
                _varint(out, self._type(field))
        _varint(out, len(module.globals))
        for gv in module.globals.values():
            _varint(out, self._string(gv.name))
            _varint(out, self._type(gv.allocated_type))
            _varint(out, 1 if gv.constant else 0)
            if gv.initializer is None:
                _varint(out, 0)
            else:
                _varint(out, 1)
                self._emit_constant(out, gv.initializer)
        # Headers for every function first (so calls and function-address
        # constants can reference functions defined later), then bodies.
        _varint(out, len(module.functions))
        for fn in module.functions.values():
            self._emit_function_header(out, fn)
        for fn in module.functions.values():
            if not fn.is_declaration():
                self._emit_function_body(out, fn)
        self._emit_meta(out, module.metadata)

    def _emit_constant(self, out: bytearray, value) -> None:
        """A constant record (global initializers, operand constants)."""
        if isinstance(value, ConstantInt):
            _varint(out, _OP_INT)
            _varint(out, self._type(value.type))
            _varint(out, _zigzag(value.value))
        elif isinstance(value, ConstantFloat):
            _varint(out, _OP_FLOAT)
            _varint(out, self._type(value.type))
            out += _PACK_F64.pack(value.value)
        elif isinstance(value, ConstantNull):
            _varint(out, _OP_NULL)
            _varint(out, self._type(value.type))
        elif isinstance(value, UndefValue):
            _varint(out, _OP_UNDEF)
            _varint(out, self._type(value.type))
        elif isinstance(value, ConstantString):
            _varint(out, _OP_STRING)
            _varint(out, self._type(value.type))
            _varint(out, self._string(value.text))
        elif isinstance(value, ConstantArray):
            _varint(out, _OP_ARRAY)
            _varint(out, self._type(value.type))
            _varint(out, len(value.elements))
            for element in value.elements:
                self._emit_constant(out, element)
        elif isinstance(value, GlobalVariable):
            _varint(out, _OP_GLOBAL)
            _varint(out, self._string(value.name))
        elif isinstance(value, Function):
            _varint(out, _OP_FUNCTION)
            _varint(out, self._string(value.name))
        else:
            raise BinFormatError(f"cannot serialize constant {value!r}")

    def _emit_function_header(self, out: bytearray, fn: Function) -> None:
        _varint(out, self._string(fn.name))
        _varint(out, self._type(fn.function_type))
        for arg in fn.args:
            _varint(out, self._string(arg.name))
        attrs = sorted(fn.attributes)
        _varint(out, len(attrs))
        for attr in attrs:
            _varint(out, self._string(attr))
        self._emit_meta(out, fn.metadata)
        _varint(out, 0 if fn.is_declaration() else 1)

    def _emit_function_body(self, out: bytearray, fn: Function) -> None:
        _varint(out, fn._name_counter)

        # Value index space: args first, then every non-void instruction
        # in block-major order.
        value_index: dict[int, int] = {}
        for arg in fn.args:
            value_index[id(arg)] = len(value_index)
        defs: list[Instruction] = []
        for block in fn.blocks:
            for inst in block.instructions:
                if not inst.type.is_void():
                    value_index[id(inst)] = len(value_index)
                    defs.append(inst)
        block_index = {id(b): i for i, b in enumerate(fn.blocks)}

        _varint(out, len(fn.blocks))
        for block in fn.blocks:
            _varint(out, self._string(block.name))
            _varint(out, len(block.instructions))

        # Per-function value table: type + name of every defined value,
        # so the reader can type forward references in one pass.
        _varint(out, len(defs))
        for inst in defs:
            _varint(out, self._type(inst.type))
            _varint(out, self._string(inst.name))

        # Naming state beyond the live names (names of since-erased
        # values stay reserved so future transforms pick fresh ones).
        live = {arg.name for arg in fn.args}
        live.update(b.name for b in fn.blocks)
        live.update(inst.name for inst in defs)
        extras = sorted(fn._used_names - live)
        _varint(out, len(extras))
        for name in extras:
            _varint(out, self._string(name))

        for block in fn.blocks:
            for inst in block.instructions:
                self._emit_instruction(out, inst, value_index, block_index)

        # Instruction metadata, keyed by flat instruction position.
        annotated = []
        flat = 0
        for block in fn.blocks:
            for inst in block.instructions:
                if inst.metadata:
                    annotated.append((flat, inst.metadata))
                flat += 1
        _varint(out, len(annotated))
        for flat, metadata in annotated:
            _varint(out, flat)
            self._emit_meta(out, metadata)

    def _emit_operand(
        self, out: bytearray, value, value_index: dict[int, int]
    ) -> None:
        index = value_index.get(id(value))
        if index is not None:
            _varint(out, _OP_VALUE)
            _varint(out, index)
            return
        self._emit_constant(out, value)

    def _emit_instruction(
        self,
        out: bytearray,
        inst: Instruction,
        values: dict[int, int],
        blocks: dict[int, int],
    ) -> None:
        if isinstance(inst, BinaryOp):
            _varint(out, _I_BINARY)
            _varint(out, _BIN_OPCODE_INDEX[inst.opcode])
            self._emit_operand(out, inst.lhs, values)
            self._emit_operand(out, inst.rhs, values)
        elif isinstance(inst, ICmp):
            _varint(out, _I_ICMP)
            _varint(out, _ICMP_INDEX[inst.predicate])
            self._emit_operand(out, inst.lhs, values)
            self._emit_operand(out, inst.rhs, values)
        elif isinstance(inst, FCmp):
            _varint(out, _I_FCMP)
            _varint(out, _FCMP_INDEX[inst.predicate])
            self._emit_operand(out, inst.lhs, values)
            self._emit_operand(out, inst.rhs, values)
        elif isinstance(inst, Alloca):
            _varint(out, _I_ALLOCA)
            _varint(out, self._type(inst.allocated_type))
        elif isinstance(inst, Load):
            _varint(out, _I_LOAD)
            self._emit_operand(out, inst.pointer, values)
        elif isinstance(inst, Store):
            _varint(out, _I_STORE)
            self._emit_operand(out, inst.value, values)
            self._emit_operand(out, inst.pointer, values)
        elif isinstance(inst, ElemPtr):
            _varint(out, _I_ELEMPTR)
            self._emit_operand(out, inst.base, values)
            indices = inst.indices
            _varint(out, len(indices))
            for index in indices:
                self._emit_operand(out, index, values)
        elif isinstance(inst, Call):
            _varint(out, _I_CALL)
            self._emit_operand(out, inst.callee, values)
            args = inst.args
            _varint(out, len(args))
            for arg in args:
                self._emit_operand(out, arg, values)
        elif isinstance(inst, Phi):
            _varint(out, _I_PHI)
            _varint(out, self._type(inst.type))
            incoming = list(inst.incoming())
            _varint(out, len(incoming))
            for value, pred in incoming:
                self._emit_operand(out, value, values)
                _varint(out, blocks[id(pred)])
        elif isinstance(inst, Select):
            _varint(out, _I_SELECT)
            self._emit_operand(out, inst.condition, values)
            self._emit_operand(out, inst.true_value, values)
            self._emit_operand(out, inst.false_value, values)
        elif isinstance(inst, Cast):
            _varint(out, _I_CAST)
            _varint(out, _CAST_INDEX[inst.opcode])
            self._emit_operand(out, inst.value, values)
            _varint(out, self._type(inst.type))
        elif isinstance(inst, Branch):
            _varint(out, _I_BR)
            _varint(out, blocks[id(inst.target)])
        elif isinstance(inst, CondBranch):
            _varint(out, _I_CONDBR)
            self._emit_operand(out, inst.condition, values)
            _varint(out, blocks[id(inst.true_block)])
            _varint(out, blocks[id(inst.false_block)])
        elif isinstance(inst, Switch):
            _varint(out, _I_SWITCH)
            self._emit_operand(out, inst.value, values)
            _varint(out, blocks[id(inst.default)])
            cases = list(inst.cases())
            _varint(out, len(cases))
            for const, target in cases:
                self._emit_constant(out, const)
                _varint(out, blocks[id(target)])
        elif isinstance(inst, Ret):
            _varint(out, _I_RET)
            if inst.value is None:
                _varint(out, 0)
            else:
                _varint(out, 1)
                self._emit_operand(out, inst.value, values)
        elif isinstance(inst, Unreachable):
            _varint(out, _I_UNREACHABLE)
        else:
            raise BinFormatError(f"cannot serialize instruction {inst!r}")

    def _emit_meta(self, out: bytearray, value) -> None:
        """Recursive metadata encoding (plain JSON-ish values + tuples)."""
        if value is None:
            _varint(out, _M_NONE)
        elif value is False:
            _varint(out, _M_FALSE)
        elif value is True:
            _varint(out, _M_TRUE)
        elif isinstance(value, int):
            _varint(out, _M_INT)
            _varint(out, _zigzag(value))
        elif isinstance(value, float):
            _varint(out, _M_FLOAT)
            out += _PACK_F64.pack(value)
        elif isinstance(value, str):
            _varint(out, _M_STR)
            _varint(out, self._string(value))
        elif isinstance(value, bytes):
            _varint(out, _M_BYTES)
            _varint(out, len(value))
            out += value
        elif isinstance(value, (list, tuple)):
            _varint(out, _M_LIST if isinstance(value, list) else _M_TUPLE)
            _varint(out, len(value))
            for item in value:
                self._emit_meta(out, item)
        elif isinstance(value, dict):
            _varint(out, _M_DICT)
            _varint(out, len(value))
            for key, item in value.items():
                self._emit_meta(out, key)
                self._emit_meta(out, item)
        else:
            raise BinFormatError(
                f"cannot serialize metadata value {value!r} "
                f"({type(value).__name__})"
            )


def _varint(out: bytearray, n: int) -> None:
    """Unsigned LEB128."""
    if n < 0:
        raise BinFormatError(f"negative varint {n}")
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


# -- reader -------------------------------------------------------------------


class _Reader:
    """Bounds-checked cursor over the raw bytes."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0
        self.end = len(data)

    def varint(self) -> int:
        data, pos, end = self.data, self.pos, self.end
        result = 0
        shift = 0
        while True:
            if pos >= end:
                raise BinTruncatedError(
                    f"unexpected end of data at offset {pos}"
                )
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self.pos = pos
                return result
            shift += 7

    def take(self, n: int) -> bytes:
        if self.pos + n > self.end:
            raise BinTruncatedError(
                f"unexpected end of data at offset {self.pos}"
            )
        raw = self.data[self.pos : self.pos + n]
        self.pos += n
        return raw

    def f64(self) -> float:
        return _PACK_F64.unpack(self.take(8))[0]


class _ModuleReader:
    def __init__(self, data: bytes):
        self.r = _Reader(data)
        self.strings: list[str] = []
        self.types: list[Type] = []
        self.struct_shells: dict[str, StructType] = {}
        self.module: Module | None = None

    # -- table lookups ------------------------------------------------------

    def _string(self) -> str:
        index = self.r.varint()
        if index >= len(self.strings):
            raise BinFormatError(f"string reference {index} out of range")
        return self.strings[index]

    def _type(self) -> Type:
        index = self.r.varint()
        if index >= len(self.types):
            raise BinFormatError(f"type reference {index} out of range")
        return self.types[index]

    # -- top level ----------------------------------------------------------

    def read(self) -> Module:
        r = self.r
        if r.take(4) != MAGIC:
            raise BinVersionError(
                "not a binary IR file (bad magic); expected a .nir "
                "module written by repro.ir.binio"
            )
        version = r.varint()
        if version != FORMAT_VERSION:
            raise BinVersionError(
                f"unsupported binary IR format version {version} "
                f"(this reader understands version {FORMAT_VERSION})"
            )
        for _ in range(r.varint()):
            length = r.varint()
            try:
                self.strings.append(r.take(length).decode("utf-8"))
            except UnicodeDecodeError as error:
                raise BinFormatError(f"malformed string table: {error}")
        self._read_type_table()
        module = Module(self._string())
        self.module = module
        self._read_structs(module)
        self._read_globals(module)
        defined: list[Function] = []
        for _ in range(r.varint()):
            fn = self._read_function_header(module)
            if fn is not None:
                defined.append(fn)
        for fn in defined:
            self._read_function_body(fn)
        module.metadata = self._read_meta_dict()
        if r.pos != r.end:
            raise BinFormatError(
                f"{r.end - r.pos} trailing byte(s) after module data"
            )
        return module

    def _read_type_table(self) -> None:
        r = self.r
        for _ in range(r.varint()):
            tag = r.varint()
            if tag == _TY_INT:
                self.types.append(IntType(r.varint()))
            elif tag == _TY_FLOAT:
                self.types.append(FloatType())
            elif tag == _TY_VOID:
                self.types.append(VoidType())
            elif tag == _TY_LABEL:
                self.types.append(LabelType())
            elif tag == _TY_PTR:
                self.types.append(PointerType(self._type()))
            elif tag == _TY_ARRAY:
                element = self._type()
                self.types.append(ArrayType(element, r.varint()))
            elif tag == _TY_STRUCT:
                name = self._string()
                shell = self.struct_shells.get(name)
                if shell is None:
                    shell = StructType(name)
                    self.struct_shells[name] = shell
                self.types.append(shell)
            elif tag == _TY_FN:
                ret = self._type()
                params = [self._type() for _ in range(r.varint())]
                vararg = bool(r.varint())
                self.types.append(FunctionType(ret, params, vararg))
            else:
                raise BinFormatError(f"unknown type tag {tag}")

    def _read_structs(self, module: Module) -> None:
        for _ in range(self.r.varint()):
            name = self._string()
            fields = [self._type() for _ in range(self.r.varint())]
            shell = self.struct_shells.get(name)
            if shell is None:
                shell = StructType(name)
                self.struct_shells[name] = shell
            shell.set_body(fields)
            module.structs[name] = shell

    def _read_globals(self, module: Module) -> None:
        for _ in range(self.r.varint()):
            name = self._string()
            allocated = self._type()
            constant = bool(self.r.varint())
            initializer = None
            if self.r.varint():
                initializer = self._read_constant()
            module.add_global(name, allocated, initializer, constant)

    def _read_constant(self):
        tag = self.r.varint()
        return self._decode_constant(tag)

    def _decode_constant(self, tag: int):
        r = self.r
        if tag == _OP_INT:
            ty = self._type()
            if not isinstance(ty, IntType):
                raise BinFormatError(f"integer constant of type {ty}")
            return ConstantInt(ty, _unzigzag(r.varint()))
        if tag == _OP_FLOAT:
            ty = self._type()
            return ConstantFloat(ty, r.f64())
        if tag == _OP_NULL:
            ty = self._type()
            if not isinstance(ty, PointerType):
                raise BinFormatError(f"null constant of type {ty}")
            return ConstantNull(ty)
        if tag == _OP_UNDEF:
            return UndefValue(self._type())
        if tag == _OP_STRING:
            ty = self._type()
            return ConstantString(ty, self._string())
        if tag == _OP_ARRAY:
            ty = self._type()
            elements = [self._read_constant() for _ in range(r.varint())]
            return ConstantArray(ty, elements)
        if tag == _OP_GLOBAL:
            name = self._string()
            gv = self.module.globals.get(name)
            if gv is None:
                raise BinFormatError(f"reference to unknown global @{name}")
            return gv
        if tag == _OP_FUNCTION:
            name = self._string()
            fn = self.module.functions.get(name)
            if fn is None:
                raise BinFormatError(f"reference to unknown function @{name}")
            return fn
        raise BinFormatError(f"unknown constant tag {tag}")

    # -- functions ----------------------------------------------------------

    def _read_function_header(self, module: Module) -> Function | None:
        """Create the function shell; returns it when a body follows."""
        name = self._string()
        fnty = self._type()
        if not isinstance(fnty, FunctionType):
            raise BinFormatError(f"function @{name} has non-function type")
        arg_names = [self._string() for _ in range(len(fnty.params))]
        fn = module.add_function(name, fnty, arg_names)
        for _ in range(self.r.varint()):
            fn.attributes.add(self._string())
        fn.metadata = self._read_meta_dict()
        return fn if self.r.varint() else None

    def _read_function_body(self, fn: Function) -> None:
        name_counter = self.r.varint()

        blocks: list[BasicBlock] = []
        counts: list[int] = []
        for _ in range(self.r.varint()):
            block = BasicBlock(self._string(), fn)
            fn.blocks.append(block)
            fn._used_names.add(block.name)
            blocks.append(block)
            counts.append(self.r.varint())

        # Value table: (type, name) per non-void instruction, indexed
        # after the arguments in the shared value index space.
        defs: list[tuple[Type, str]] = []
        for _ in range(self.r.varint()):
            ty = self._type()
            defs.append((ty, self._string()))

        extras = [self._string() for _ in range(self.r.varint())]

        # Decode instruction streams.  ``values`` is the value index
        # space (args then defs); forward references get a typed
        # placeholder from the def table and are patched once the real
        # instruction exists — the text parser's scheme exactly.
        values: list[Value] = list(fn.args)
        nargs = len(fn.args)
        placeholders: dict[int, Value] = {}

        def lookup(index: int) -> Value:
            if index < len(values):
                return values[index]
            def_index = index - nargs
            if def_index >= len(defs):
                raise BinFormatError(
                    f"value reference {index} out of range in @{fn.name}"
                )
            placeholder = placeholders.get(index)
            if placeholder is None:
                ty, name = defs[def_index]
                placeholder = Value(ty, name)
                placeholders[index] = placeholder
            return placeholder

        def block_at(index: int) -> BasicBlock:
            if index >= len(blocks):
                raise BinFormatError(
                    f"block reference {index} out of range in @{fn.name}"
                )
            return blocks[index]

        def_cursor = 0
        for block, count in zip(blocks, counts):
            for _ in range(count):
                inst = self._read_instruction(lookup, block_at)
                if not inst.type.is_void():
                    if def_cursor >= len(defs):
                        raise BinFormatError(
                            f"instruction stream of @{fn.name} defines "
                            "more values than its value table"
                        )
                    inst.name = defs[def_cursor][1]
                    index = nargs + def_cursor
                    def_cursor += 1
                    placeholder = placeholders.pop(index, None)
                    if placeholder is not None:
                        placeholder.replace_all_uses_with(inst)
                    values.append(inst)
                block.append(inst)
        if def_cursor != len(defs):
            raise BinFormatError(
                f"value table of @{fn.name} has {len(defs)} entries but "
                f"the instruction stream defines {def_cursor}"
            )
        if placeholders:
            missing = ", ".join(
                defs[i - nargs][1] for i in sorted(placeholders)
            )
            raise BinFormatError(
                f"unresolved forward reference(s) in @{fn.name}: {missing}"
            )

        # Restore naming state so later transforms pick the same fresh
        # names they would have picked on the originally-written module.
        fn._used_names.update(extras)
        fn._name_counter = name_counter

        flat_insts = [inst for block in blocks for inst in block.instructions]
        for _ in range(self.r.varint()):
            flat = self.r.varint()
            metadata = self._read_meta_dict()
            if flat >= len(flat_insts):
                raise BinFormatError(
                    f"metadata for out-of-range instruction {flat} "
                    f"in @{fn.name}"
                )
            flat_insts[flat].metadata = metadata

    def _read_instruction(self, lookup, block_at) -> Instruction:
        r = self.r
        tag = r.varint()
        if tag == _I_BINARY:
            index = r.varint()
            if index >= len(_BIN_OPCODES):
                raise BinFormatError(f"unknown binary opcode {index}")
            return BinaryOp(
                _BIN_OPCODES[index], self._read_operand(lookup),
                self._read_operand(lookup),
            )
        if tag == _I_ICMP:
            index = r.varint()
            if index >= len(ICMP_PREDICATES):
                raise BinFormatError(f"unknown icmp predicate {index}")
            return ICmp(
                ICMP_PREDICATES[index], self._read_operand(lookup),
                self._read_operand(lookup),
            )
        if tag == _I_FCMP:
            index = r.varint()
            if index >= len(FCMP_PREDICATES):
                raise BinFormatError(f"unknown fcmp predicate {index}")
            return FCmp(
                FCMP_PREDICATES[index], self._read_operand(lookup),
                self._read_operand(lookup),
            )
        if tag == _I_ALLOCA:
            return Alloca(self._type())
        if tag == _I_LOAD:
            return Load(self._read_operand(lookup))
        if tag == _I_STORE:
            value = self._read_operand(lookup)
            return Store(value, self._read_operand(lookup))
        if tag == _I_ELEMPTR:
            base = self._read_operand(lookup)
            indices = [
                self._read_operand(lookup) for _ in range(r.varint())
            ]
            return ElemPtr(base, indices)
        if tag == _I_CALL:
            callee = self._read_operand(lookup)
            args = [self._read_operand(lookup) for _ in range(r.varint())]
            return Call(callee, args)
        if tag == _I_PHI:
            phi = Phi(self._type())
            for _ in range(r.varint()):
                value = self._read_operand(lookup)
                phi.add_incoming(value, block_at(r.varint()))
            return phi
        if tag == _I_SELECT:
            cond = self._read_operand(lookup)
            true_value = self._read_operand(lookup)
            return Select(cond, true_value, self._read_operand(lookup))
        if tag == _I_CAST:
            index = r.varint()
            if index >= len(CAST_OPS):
                raise BinFormatError(f"unknown cast opcode {index}")
            value = self._read_operand(lookup)
            return Cast(CAST_OPS[index], value, self._type())
        if tag == _I_BR:
            return Branch(block_at(r.varint()))
        if tag == _I_CONDBR:
            cond = self._read_operand(lookup)
            true_block = block_at(r.varint())
            return CondBranch(cond, true_block, block_at(r.varint()))
        if tag == _I_SWITCH:
            value = self._read_operand(lookup)
            default = block_at(r.varint())
            switch = Switch(value, default)
            for _ in range(r.varint()):
                const = self._read_constant()
                switch.add_case(const, block_at(r.varint()))
            return switch
        if tag == _I_RET:
            if r.varint():
                return Ret(self._read_operand(lookup))
            return Ret(None)
        if tag == _I_UNREACHABLE:
            return Unreachable()
        raise BinFormatError(f"unknown instruction tag {tag}")

    def _read_operand(self, lookup):
        tag = self.r.varint()
        if tag == _OP_VALUE:
            return lookup(self.r.varint())
        return self._decode_constant(tag)

    # -- metadata -----------------------------------------------------------

    def _read_meta(self):
        r = self.r
        tag = r.varint()
        if tag == _M_NONE:
            return None
        if tag == _M_FALSE:
            return False
        if tag == _M_TRUE:
            return True
        if tag == _M_INT:
            return _unzigzag(r.varint())
        if tag == _M_FLOAT:
            return r.f64()
        if tag == _M_STR:
            return self._string()
        if tag == _M_BYTES:
            return bytes(r.take(r.varint()))
        if tag == _M_LIST:
            return [self._read_meta() for _ in range(r.varint())]
        if tag == _M_TUPLE:
            return tuple(self._read_meta() for _ in range(r.varint()))
        if tag == _M_DICT:
            return self._read_dict_items()
        raise BinFormatError(f"unknown metadata tag {tag}")

    def _read_meta_dict(self) -> dict:
        tag = self.r.varint()
        if tag != _M_DICT:
            raise BinFormatError(f"expected metadata dict, got tag {tag}")
        return self._read_dict_items()

    def _read_dict_items(self) -> dict:
        return {
            self._read_meta(): self._read_meta()
            for _ in range(self.r.varint())
        }


# -- public API ---------------------------------------------------------------


def write_module(module: Module) -> bytes:
    """Serialize ``module`` to the versioned binary format."""
    return _Writer(module).write()


def read_module(data: bytes) -> Module:
    """Deserialize a module written by :func:`write_module`.

    Raises :class:`BinVersionError` for wrong magic/version,
    :class:`BinTruncatedError` for short data, and
    :class:`BinFormatError` for any other malformed content.
    """
    try:
        return _ModuleReader(data).read()
    except BinFormatError:
        raise
    except (ValueError, TypeError, KeyError, IndexError) as error:
        # Corrupt content that slipped past tag checks (e.g. an index
        # that decodes to a structurally invalid module).
        raise BinFormatError(f"corrupt binary IR: {error}") from error


def is_binary_ir(data: bytes) -> bool:
    """True when ``data`` starts with the ``.nir`` magic."""
    return data[:4] == MAGIC


def write_module_file(module: Module, path: str) -> None:
    with open(path, "wb") as handle:
        handle.write(write_module(module))


def read_module_file(path: str) -> Module:
    with open(path, "rb") as handle:
        return read_module(handle.read())
