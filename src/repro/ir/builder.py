"""IRBuilder — the convenience layer for constructing IR.

Mirrors LLVM's ``IRBuilder``: it holds an insertion point (a basic block and
optionally a position within it) and exposes one method per instruction
kind.  The NOELLE loop builder (LB) abstraction composes on top of this,
targeting loops instead of instructions.
"""

from __future__ import annotations

from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    ElemPtr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import BasicBlock, Function
from .types import IntType, Type
from .values import ConstantFloat, ConstantInt, Value


class IRBuilder:
    """Stateful instruction factory with an insertion point."""

    def __init__(self, block: BasicBlock | None = None):
        self.block = block
        #: When set, new instructions are inserted before this instruction.
        self.insert_before: Instruction | None = None

    # -- positioning -----------------------------------------------------------
    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block
        self.insert_before = None

    def position_before(self, inst: Instruction) -> None:
        assert inst.parent is not None
        self.block = inst.parent
        self.insert_before = inst

    def _insert(self, inst: Instruction) -> Instruction:
        assert self.block is not None, "builder has no insertion point"
        if self.insert_before is not None:
            index = self.block.instructions.index(self.insert_before)
            self.block.insert(index, inst)
        else:
            self.block.append(inst)
        return inst

    # -- arithmetic ----------------------------------------------------------
    def binary(self, op: str, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._insert(BinaryOp(op, lhs, rhs, name))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("srem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("shl", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("ashr", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("fdiv", lhs, rhs, name)

    # -- comparisons -----------------------------------------------------------
    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self._insert(ICmp(predicate, lhs, rhs, name))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> FCmp:
        return self._insert(FCmp(predicate, lhs, rhs, name))

    # -- memory ------------------------------------------------------------------
    def alloca(self, allocated_type: Type, name: str = "") -> Alloca:
        return self._insert(Alloca(allocated_type, name))

    def load(self, ptr: Value, name: str = "") -> Load:
        return self._insert(Load(ptr, name))

    def store(self, value: Value, ptr: Value) -> Store:
        return self._insert(Store(value, ptr))

    def elem_ptr(self, base: Value, indices: list[Value], name: str = "") -> ElemPtr:
        return self._insert(ElemPtr(base, indices, name))

    # -- control flow ----------------------------------------------------------
    def br(self, target: BasicBlock) -> Branch:
        return self._insert(Branch(target))

    def cond_br(
        self, cond: Value, true_block: BasicBlock, false_block: BasicBlock
    ) -> CondBranch:
        return self._insert(CondBranch(cond, true_block, false_block))

    def switch(
        self,
        value: Value,
        default: BasicBlock,
        cases: list[tuple[ConstantInt, BasicBlock]] | None = None,
    ) -> Switch:
        return self._insert(Switch(value, default, cases))

    def ret(self, value: Value | None = None) -> Ret:
        return self._insert(Ret(value))

    def unreachable(self) -> Unreachable:
        return self._insert(Unreachable())

    # -- misc ----------------------------------------------------------------------
    def phi(self, ty: Type, name: str = "") -> Phi:
        assert self.block is not None
        node = Phi(ty, name)
        # Phis must stay grouped at the top of the block.
        node.parent = self.block
        index = 0
        for index, inst in enumerate(self.block.instructions):
            if not isinstance(inst, Phi):
                break
        else:
            index = len(self.block.instructions)
        self.block.instructions.insert(index, node)
        if self.block.parent is not None:
            self.block.parent.assign_name(node)
        return node

    def select(
        self, cond: Value, true_value: Value, false_value: Value, name: str = ""
    ) -> Select:
        return self._insert(Select(cond, true_value, false_value, name))

    def cast(self, op: str, value: Value, to_type: Type, name: str = "") -> Cast:
        return self._insert(Cast(op, value, to_type, name))

    def call(self, callee: Value, args: list[Value], name: str = "") -> Call:
        return self._insert(Call(callee, args, name))

    # -- constants (no insertion) -------------------------------------------------
    @staticmethod
    def const_int(value: int, width: int = 64) -> ConstantInt:
        return ConstantInt(IntType(width), value)

    @staticmethod
    def const_bool(value: bool) -> ConstantInt:
        return ConstantInt(IntType(1), 1 if value else 0)

    @staticmethod
    def const_float(value: float) -> ConstantFloat:
        from .types import DOUBLE

        return ConstantFloat(DOUBLE, value)


def build_function(fn: Function, entry_name: str = "entry") -> tuple[IRBuilder, BasicBlock]:
    """Create an entry block for ``fn`` and return a positioned builder."""
    entry = fn.add_block(entry_name)
    builder = IRBuilder(entry)
    return builder, entry
