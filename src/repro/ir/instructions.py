"""Instruction set of the repro IR.

The instruction set mirrors the subset of LLVM IR that the NOELLE layer and
the ten custom tools observe: integer/float arithmetic, comparisons, memory
operations (``alloca``/``load``/``store``/``elem_ptr``), control flow
(``br``/``cond_br``/``switch``/``ret``/``unreachable``), ``phi`` nodes,
``select``, casts, and direct/indirect ``call``.

Instructions are :class:`~repro.ir.values.User` values: their operands are
tracked through use lists, so def-use chains are always up to date.  Basic
blocks appear as operands of terminators (with :data:`~repro.ir.types.LABEL`
type), so CFG edges can be rewritten with the same machinery as data
operands.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .types import (
    LABEL,
    VOID,
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
)
from .values import ConstantInt, User, Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .module import BasicBlock, Function


#: Integer binary opcodes and whether they are commutative.
INT_BINARY_OPS = {
    "add": True,
    "sub": False,
    "mul": True,
    "sdiv": False,
    "srem": False,
    "and": True,
    "or": True,
    "xor": True,
    "shl": False,
    "ashr": False,
    "lshr": False,
}

#: Float binary opcodes.
FLOAT_BINARY_OPS = {"fadd": True, "fsub": False, "fmul": True, "fdiv": False}

#: Signed integer comparison predicates.
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")

#: Ordered float comparison predicates.
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")

#: Cast opcodes.
CAST_OPS = ("trunc", "zext", "sext", "bitcast", "ptrtoint", "inttoptr", "sitofp", "fptosi")

#: Swaps a comparison predicate when its operands are swapped.
SWAPPED_PREDICATE = {
    "eq": "eq",
    "ne": "ne",
    "slt": "sgt",
    "sle": "sge",
    "sgt": "slt",
    "sge": "sle",
    "ult": "ugt",
    "ule": "uge",
    "ugt": "ult",
    "uge": "ule",
    "oeq": "oeq",
    "one": "one",
    "olt": "ogt",
    "ole": "oge",
    "ogt": "olt",
    "oge": "ole",
}


class Instruction(User):
    """Base class for all IR instructions."""

    #: Short mnemonic; subclasses override.
    opcode: str = "<abstract>"

    def __init__(self, ty: Type, name: str = ""):
        super().__init__(ty, name)
        self.parent: "BasicBlock | None" = None
        #: Free-form metadata (profile counts, NOELLE IDs, PDG edges, ...).
        self.metadata: dict[str, object] = {}

    # -- classification ----------------------------------------------------
    def is_terminator(self) -> bool:
        return isinstance(self, TerminatorInst)

    def may_read_memory(self) -> bool:
        return False

    def may_write_memory(self) -> bool:
        return False

    def touches_memory(self) -> bool:
        return self.may_read_memory() or self.may_write_memory()

    def has_side_effects(self) -> bool:
        """True when the instruction cannot be removed even if unused."""
        return self.may_write_memory() or self.is_terminator()

    # -- structural edits --------------------------------------------------
    def function(self) -> "Function":
        assert self.parent is not None, "detached instruction"
        assert self.parent.parent is not None
        return self.parent.parent

    def erase_from_parent(self) -> None:
        """Unlink from the containing block and drop operand uses."""
        assert self.parent is not None, "instruction is not in a block"
        self.parent.instructions.remove(self)
        self.parent = None
        self.drop_all_operands()

    def move_before(self, other: "Instruction") -> None:
        """Move this instruction immediately before ``other``."""
        assert other.parent is not None
        if self.parent is not None:
            self.parent.instructions.remove(self)
        block = other.parent
        block.instructions.insert(block.instructions.index(other), self)
        self.parent = block

    def move_to_end(self, block: "BasicBlock") -> None:
        """Move this instruction to the end of ``block`` (before terminator)."""
        if self.parent is not None:
            self.parent.instructions.remove(self)
        term = block.terminator
        if term is not None:
            block.instructions.insert(block.instructions.index(term), self)
        else:
            block.instructions.append(self)
        self.parent = block

    def index_in_block(self) -> int:
        assert self.parent is not None
        return self.parent.instructions.index(self)

    # -- printing ----------------------------------------------------------
    def operand_refs(self) -> str:
        return ", ".join(f"{op.type} {op.ref()}" for op in self.operands)

    def __str__(self) -> str:
        if self.type.is_void():
            return f"{self.opcode} {self.operand_refs()}"
        return f"%{self.name} = {self.opcode} {self.operand_refs()}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}: {self}>"


class TerminatorInst(Instruction):
    """Base class for block terminators."""

    def successors(self) -> list["BasicBlock"]:
        return [op for op in self.operands if op.type == LABEL]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        for i, op in enumerate(self.operands):
            if op is old:
                self.set_operand(i, new)


class BinaryOp(Instruction):
    """Two-operand arithmetic/logic (``add``, ``fmul``, ``and``, ...)."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in INT_BINARY_OPS and op not in FLOAT_BINARY_OPS:
            raise ValueError(f"unknown binary opcode {op!r}")
        super().__init__(lhs.type, name)
        self.opcode = op
        self._add_operand(lhs)
        self._add_operand(rhs)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def is_commutative(self) -> bool:
        return INT_BINARY_OPS.get(self.opcode, False) or FLOAT_BINARY_OPS.get(
            self.opcode, False
        )


class CmpInst(Instruction):
    """Base of integer and float comparisons; result is ``i1``."""

    def __init__(self, opcode: str, predicate: str, lhs: Value, rhs: Value, name: str):
        super().__init__(IntType(1), name)
        self.opcode = opcode
        self.predicate = predicate
        self._add_operand(lhs)
        self._add_operand(rhs)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def swap_operands(self) -> None:
        """Swap operands, adjusting the predicate to preserve semantics.

        Used by the Time-Squeezer custom tool, which canonicalizes compares
        for timing-speculative hardware.
        """
        lhs, rhs = self.lhs, self.rhs
        self.set_operand(0, rhs)
        self.set_operand(1, lhs)
        self.predicate = SWAPPED_PREDICATE[self.predicate]

    def __str__(self) -> str:
        return (
            f"%{self.name} = {self.opcode} {self.predicate} "
            f"{self.lhs.type} {self.lhs.ref()}, {self.rhs.type} {self.rhs.ref()}"
        )


class ICmp(CmpInst):
    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate!r}")
        super().__init__("icmp", predicate, lhs, rhs, name)


class FCmp(CmpInst):
    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate {predicate!r}")
        super().__init__("fcmp", predicate, lhs, rhs, name)


class Alloca(Instruction):
    """Stack allocation; yields a pointer to ``allocated_type`` storage."""

    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = ""):
        super().__init__(PointerType(allocated_type), name)
        self.allocated_type = allocated_type

    def __str__(self) -> str:
        return f"%{self.name} = alloca {self.allocated_type}"


class Load(Instruction):
    """Read a scalar from memory."""

    opcode = "load"

    def __init__(self, ptr: Value, name: str = ""):
        if not ptr.type.is_pointer():
            raise TypeError(f"load requires a pointer operand, got {ptr.type}")
        super().__init__(ptr.type.pointee, name)
        self._add_operand(ptr)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    def may_read_memory(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"%{self.name} = load {self.type}, {self.pointer.type} {self.pointer.ref()}"


class Store(Instruction):
    """Write a scalar to memory."""

    opcode = "store"

    def __init__(self, value: Value, ptr: Value):
        if not ptr.type.is_pointer():
            raise TypeError(f"store requires a pointer operand, got {ptr.type}")
        super().__init__(VOID)
        self._add_operand(value)
        self._add_operand(ptr)

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    def may_write_memory(self) -> bool:
        return True

    def __str__(self) -> str:
        return (
            f"store {self.value.type} {self.value.ref()}, "
            f"{self.pointer.type} {self.pointer.ref()}"
        )


class ElemPtr(Instruction):
    """Pointer arithmetic (LLVM ``getelementptr``).

    The first index scales by the size of the pointee; later indices step
    into arrays and structs.  Struct indices must be constant integers so the
    result type is computable.
    """

    opcode = "elem_ptr"

    def __init__(self, base: Value, indices: list[Value], name: str = ""):
        if not base.type.is_pointer():
            raise TypeError(f"elem_ptr requires a pointer base, got {base.type}")
        if not indices:
            raise ValueError("elem_ptr requires at least one index")
        result = _elem_ptr_result_type(base.type, indices)
        super().__init__(result, name)
        self._add_operand(base)
        for index in indices:
            self._add_operand(index)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> list[Value]:
        return self.operands[1:]

    def has_all_zero_indices(self) -> bool:
        return all(
            isinstance(i, ConstantInt) and i.value == 0 for i in self.indices
        )

    def __str__(self) -> str:
        parts = [f"{self.base.type} {self.base.ref()}"]
        parts.extend(f"{i.type} {i.ref()}" for i in self.indices)
        return f"%{self.name} = elem_ptr {', '.join(parts)}"


def _elem_ptr_result_type(base: PointerType, indices: list[Value]) -> PointerType:
    current: Type = base.pointee
    for index in indices[1:]:
        if isinstance(current, ArrayType):
            current = current.element
        elif isinstance(current, StructType):
            if not isinstance(index, ConstantInt):
                raise TypeError("struct elem_ptr index must be a constant")
            current = current.fields[index.value]
        else:
            raise TypeError(f"cannot index into {current}")
    return PointerType(current)


def _callee_function_type(callee: Value) -> "FunctionType":
    """Extract the :class:`FunctionType` of a call target.

    Accepts a direct :class:`~repro.ir.module.Function` (whose value type is
    a pointer to its function type) or any value of function-pointer type.
    """
    ty = callee.type
    if ty.is_pointer() and ty.pointee.is_function():
        return ty.pointee
    raise TypeError(f"call target {callee.ref()} is not a function pointer: {ty}")


class Call(Instruction):
    """Direct or indirect function call.

    Operand 0 is the callee: a :class:`~repro.ir.module.Function` for direct
    calls, or any value of function-pointer type for indirect calls — the
    case NOELLE's complete call graph resolves via the PDG/points-to layer.
    """

    opcode = "call"

    def __init__(self, callee: Value, args: list[Value], name: str = ""):
        fnty = _callee_function_type(callee)
        if not fnty.vararg and len(args) != len(fnty.params):
            raise TypeError(
                f"call to {callee.ref()} expects {len(fnty.params)} args, got {len(args)}"
            )
        super().__init__(fnty.ret, name)
        self._add_operand(callee)
        for arg in args:
            self._add_operand(arg)

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> list[Value]:
        return self.operands[1:]

    def is_indirect(self) -> bool:
        from .module import Function

        return not isinstance(self.callee, Function)

    def called_function(self) -> "Function | None":
        """The statically known callee, or None for indirect calls."""
        from .module import Function

        callee = self.callee
        return callee if isinstance(callee, Function) else None

    def may_read_memory(self) -> bool:
        return True

    def may_write_memory(self) -> bool:
        return True

    def has_side_effects(self) -> bool:
        return True

    def __str__(self) -> str:
        args = ", ".join(f"{a.type} {a.ref()}" for a in self.args)
        call = f"call {self.type} {self.callee.ref()}({args})"
        if self.type.is_void():
            return call
        return f"%{self.name} = {call}"


class Phi(Instruction):
    """SSA phi node; operands alternate (value, predecessor-block)."""

    opcode = "phi"

    def __init__(self, ty: Type, name: str = ""):
        super().__init__(ty, name)

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self._add_operand(value)
        self._add_operand(block)

    def incoming(self) -> Iterator[tuple[Value, "BasicBlock"]]:
        for i in range(0, len(self.operands), 2):
            yield self.operands[i], self.operands[i + 1]

    def incoming_value_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming():
            if pred is block:
                return value
        raise KeyError(f"phi {self.ref()} has no incoming edge from {block.name}")

    def set_incoming_value_for(self, block: "BasicBlock", value: Value) -> None:
        for i in range(0, len(self.operands), 2):
            if self.operands[i + 1] is block:
                self.set_operand(i, value)
                return
        raise KeyError(f"phi {self.ref()} has no incoming edge from {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        pairs = [(v, b) for v, b in self.incoming() if b is not block]
        self.drop_all_operands()
        for value, pred in pairs:
            self.add_incoming(value, pred)

    def __str__(self) -> str:
        pairs = ", ".join(f"[ {v.ref()}, %{b.name} ]" for v, b in self.incoming())
        return f"%{self.name} = phi {self.type} {pairs}"


class Select(Instruction):
    """``select i1 %c, T %a, T %b`` — branchless conditional."""

    opcode = "select"

    def __init__(self, cond: Value, true_value: Value, false_value: Value, name: str = ""):
        super().__init__(true_value.type, name)
        self._add_operand(cond)
        self._add_operand(true_value)
        self._add_operand(false_value)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]


class Cast(Instruction):
    """Type conversion (``trunc``/``zext``/``sext``/``bitcast``/...)."""

    def __init__(self, op: str, value: Value, to_type: Type, name: str = ""):
        if op not in CAST_OPS:
            raise ValueError(f"unknown cast opcode {op!r}")
        super().__init__(to_type, name)
        self.opcode = op
        self._add_operand(value)

    @property
    def value(self) -> Value:
        return self.operands[0]

    def __str__(self) -> str:
        return (
            f"%{self.name} = {self.opcode} {self.value.type} "
            f"{self.value.ref()} to {self.type}"
        )


class Branch(TerminatorInst):
    """Unconditional branch."""

    opcode = "br"

    def __init__(self, target: "BasicBlock"):
        super().__init__(VOID)
        self._add_operand(target)

    @property
    def target(self) -> "BasicBlock":
        return self.operands[0]

    def __str__(self) -> str:
        return f"br label %{self.target.name}"


class CondBranch(TerminatorInst):
    """Two-way conditional branch."""

    opcode = "cond_br"

    def __init__(self, cond: Value, true_block: "BasicBlock", false_block: "BasicBlock"):
        super().__init__(VOID)
        self._add_operand(cond)
        self._add_operand(true_block)
        self._add_operand(false_block)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_block(self) -> "BasicBlock":
        return self.operands[1]

    @property
    def false_block(self) -> "BasicBlock":
        return self.operands[2]

    def __str__(self) -> str:
        return (
            f"br i1 {self.condition.ref()}, label %{self.true_block.name}, "
            f"label %{self.false_block.name}"
        )


class Switch(TerminatorInst):
    """Multi-way branch on an integer value."""

    opcode = "switch"

    def __init__(
        self,
        value: Value,
        default: "BasicBlock",
        cases: list[tuple[ConstantInt, "BasicBlock"]] | None = None,
    ):
        super().__init__(VOID)
        self._add_operand(value)
        self._add_operand(default)
        for const, block in cases or []:
            self.add_case(const, block)

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def default(self) -> "BasicBlock":
        return self.operands[1]

    def add_case(self, const: ConstantInt, block: "BasicBlock") -> None:
        self._add_operand(const)
        self._add_operand(block)

    def cases(self) -> Iterator[tuple[ConstantInt, "BasicBlock"]]:
        for i in range(2, len(self.operands), 2):
            yield self.operands[i], self.operands[i + 1]

    def __str__(self) -> str:
        cases = " ".join(
            f"{c.type} {c.ref()}, label %{b.name}" for c, b in self.cases()
        )
        return (
            f"switch {self.value.type} {self.value.ref()}, "
            f"label %{self.default.name} [{cases}]"
        )


class Ret(TerminatorInst):
    """Return, optionally with a value."""

    opcode = "ret"

    def __init__(self, value: Value | None = None):
        super().__init__(VOID)
        if value is not None:
            self._add_operand(value)

    @property
    def value(self) -> Value | None:
        return self.operands[0] if self.operands else None

    def __str__(self) -> str:
        if self.value is None:
            return "ret void"
        return f"ret {self.value.type} {self.value.ref()}"


class Unreachable(TerminatorInst):
    """Marks a point the program can never reach."""

    opcode = "unreachable"

    def __init__(self) -> None:
        super().__init__(VOID)

    def __str__(self) -> str:
        return "unreachable"
