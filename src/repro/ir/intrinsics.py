"""Runtime intrinsics: the "libc" surface of the repro IR.

Programs compiled from MiniC (and hand-built IR) call into a small runtime
implemented natively by the interpreter.  From the analyses' point of view
these are *external functions*, exactly like libc calls in LLVM IR: the
points-to analysis and mod/ref have dedicated models for them, and calls to
unmodeled externals are treated conservatively — which is what makes the
baseline-vs-NOELLE precision comparisons meaningful.
"""

from __future__ import annotations

from .module import Function, Module
from .types import DOUBLE, I8, I64, VOID, FunctionType, PointerType

#: name -> (FunctionType, attributes)
INTRINSICS: dict[str, tuple[FunctionType, frozenset[str]]] = {
    # I/O
    "print_int": (FunctionType(VOID, [I64]), frozenset({"io"})),
    "print_float": (FunctionType(VOID, [DOUBLE]), frozenset({"io"})),
    # Heap
    "malloc": (FunctionType(PointerType(I8), [I64]), frozenset({"allocator"})),
    "free": (FunctionType(VOID, [PointerType(I8)]), frozenset({"allocator"})),
    # Math (pure: no memory effects)
    "sqrt": (FunctionType(DOUBLE, [DOUBLE]), frozenset({"pure"})),
    "exp": (FunctionType(DOUBLE, [DOUBLE]), frozenset({"pure"})),
    "log": (FunctionType(DOUBLE, [DOUBLE]), frozenset({"pure"})),
    "sin": (FunctionType(DOUBLE, [DOUBLE]), frozenset({"pure"})),
    "cos": (FunctionType(DOUBLE, [DOUBLE]), frozenset({"pure"})),
    "pow": (FunctionType(DOUBLE, [DOUBLE, DOUBLE]), frozenset({"pure"})),
    "fabs": (FunctionType(DOUBLE, [DOUBLE]), frozenset({"pure"})),
    "floor": (FunctionType(DOUBLE, [DOUBLE]), frozenset({"pure"})),
    # Pseudo-random value generators (the PRVJeeves design space).
    "rand": (FunctionType(I64, []), frozenset({"prvg"})),
    "rand_lcg": (FunctionType(I64, []), frozenset({"prvg"})),
    "rand_xorshift": (FunctionType(I64, []), frozenset({"prvg"})),
    "rand_mt": (FunctionType(I64, []), frozenset({"prvg"})),
    "rand_pcg": (FunctionType(I64, []), frozenset({"prvg"})),
    "srand": (FunctionType(VOID, [I64]), frozenset({"prvg"})),
    # Timing/OS hooks used by COOS and CARAT.
    "os_callback": (FunctionType(VOID, []), frozenset({"os"})),
    "os_time_hook": (FunctionType(VOID, [I64]), frozenset({"os"})),
    "carat_guard": (FunctionType(VOID, [PointerType(I8), I64]), frozenset({"os"})),
    "clock_set": (FunctionType(VOID, [I64]), frozenset({"os"})),
    # Misc
    "exit": (FunctionType(VOID, [I64]), frozenset({"io", "noreturn"})),
    # Parallel runtime (the NOELLE runtime linked by noelle-linker).
    # Dispatchers are variadic: (task fn ptr, env ptr, num_cores).
    "noelle_dispatch_doall": (FunctionType(VOID, [], vararg=True), frozenset({"parallel"})),
    "noelle_dispatch_helix": (FunctionType(VOID, [], vararg=True), frozenset({"parallel"})),
    "noelle_dispatch_dswp": (FunctionType(VOID, [], vararg=True), frozenset({"parallel"})),
    # DSWP inter-stage queues.
    "queue_push_i64": (FunctionType(VOID, [I64, I64]), frozenset({"parallel"})),
    "queue_pop_i64": (FunctionType(I64, [I64]), frozenset({"parallel"})),
    "queue_push_f64": (FunctionType(VOID, [I64, DOUBLE]), frozenset({"parallel"})),
    "queue_pop_f64": (FunctionType(DOUBLE, [I64]), frozenset({"parallel"})),
    # HELIX sequential-segment markers and iteration boundary.
    "helix_seq_begin": (FunctionType(VOID, [I64]), frozenset({"parallel"})),
    "helix_seq_end": (FunctionType(VOID, [I64]), frozenset({"parallel"})),
    "helix_iter_boundary": (FunctionType(VOID, []), frozenset({"parallel"})),
}

#: Intrinsics with no memory effects at all (safe for AA to ignore).
PURE_INTRINSICS = frozenset(
    name for name, (_, attrs) in INTRINSICS.items() if "pure" in attrs
)

#: The pseudo-random generator family PRVJeeves selects between.
PRVG_INTRINSICS = frozenset(
    name for name, (_, attrs) in INTRINSICS.items() if "prvg" in attrs
)

#: Allocators: return fresh memory disjoint from everything else.
ALLOCATOR_INTRINSICS = frozenset({"malloc"})


def is_intrinsic(fn: Function) -> bool:
    return fn.is_declaration() and fn.name in INTRINSICS


def declare_intrinsic(module: Module, name: str) -> Function:
    """Get-or-create the declaration of a runtime intrinsic in ``module``."""
    if name not in INTRINSICS:
        raise KeyError(f"unknown intrinsic {name!r}")
    fnty, attrs = INTRINSICS[name]
    fn = module.declare_function(name, fnty)
    fn.attributes |= attrs
    return fn
