"""Module linker — the substrate behind ``noelle-whole-IR``/``noelle-linker``.

Combines several modules into one whole-program module.  Declarations are
resolved against definitions from other modules; name clashes between two
*definitions* are an error (no weak/ODR semantics, which the paper's tools
don't need).  NOELLE-specific metadata is preserved, mirroring the paper's
``noelle-linker`` which "links IR files together while preserving the
semantics of metadata".
"""

from __future__ import annotations

from .module import Module


class LinkError(Exception):
    """Raised when two modules cannot be combined."""


def link_modules(modules: list[Module], name: str = "whole-program") -> Module:
    """Link ``modules`` into a single new module.

    The input modules are consumed: their functions and globals are moved
    (not copied) into the result, so the inputs must not be used afterwards.
    """
    if not modules:
        raise LinkError("nothing to link")
    result = Module(name)
    for module in modules:
        _merge_structs(result, module)
    for module in modules:
        _merge_globals(result, module)
    for module in modules:
        _merge_functions(result, module)
    # Metadata from later modules wins key-by-key, matching how NOELLE's
    # pipeline re-embeds profiles after transformations.
    for module in modules:
        result.metadata.update(module.metadata)
    _check_unresolved(result)
    return result


def _merge_structs(result: Module, module: Module) -> None:
    for name, struct in module.structs.items():
        existing = result.structs.get(name)
        if existing is None:
            result.structs[name] = struct
        elif existing.fields != struct.fields:
            raise LinkError(f"struct %{name} defined with different bodies")
        else:
            # Keep a single canonical struct object: rewriting types inside
            # instructions is unnecessary because struct equality is nominal.
            pass


def _merge_globals(result: Module, module: Module) -> None:
    for name, gv in module.globals.items():
        existing = result.globals.get(name)
        if existing is None:
            result.globals[name] = gv
            continue
        if existing.initializer is not None and gv.initializer is not None:
            raise LinkError(f"global @{name} defined twice")
        if existing.allocated_type != gv.allocated_type:
            raise LinkError(f"global @{name} declared with different types")
        if gv.initializer is not None:
            # The definition replaces the tentative declaration.
            existing.replace_all_uses_with(gv)
            result.globals[name] = gv
        else:
            # Tentative re-declaration: fold into the existing global.
            gv.replace_all_uses_with(existing)


def _merge_functions(result: Module, module: Module) -> None:
    for name, fn in module.functions.items():
        existing = result.functions.get(name)
        if existing is None:
            fn.parent = result
            result.functions[name] = fn
            continue
        if fn.function_type != existing.function_type:
            raise LinkError(f"function @{name} declared with different types")
        if fn.is_declaration():
            # Redirect uses of the declaration to whatever is already there.
            fn.replace_all_uses_with(existing)
        elif existing.is_declaration():
            existing.replace_all_uses_with(fn)
            fn.parent = result
            fn.attributes |= existing.attributes
            result.functions[name] = fn
        else:
            raise LinkError(f"function @{name} defined twice")


def _check_unresolved(result: Module) -> None:
    # A whole-program module may still have external declarations (the
    # runtime intrinsics); anything else unused-and-undefined is suspicious
    # but legal, so nothing to do here.  The binary generator re-checks.
    pass
