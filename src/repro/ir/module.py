"""Module, function, and basic-block containers for the repro IR.

A :class:`Module` is the whole-program unit (what ``noelle-whole-IR``
produces); it owns global variables, named struct types, and functions.
Functions own basic blocks; blocks own instructions.  Name uniquing is
handled per function so the printer always emits well-formed, re-parseable
IR.
"""

from __future__ import annotations

from typing import Iterator

from .instructions import Instruction, Phi, TerminatorInst
from .types import LABEL, FunctionType, PointerType, StructType, Type
from .values import Argument, Constant, GlobalValue, GlobalVariable, Value


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str = "", parent: "Function | None" = None):
        super().__init__(LABEL, name)
        self.parent = parent
        self.instructions: list[Instruction] = []

    # -- contents -----------------------------------------------------------
    @property
    def terminator(self) -> TerminatorInst | None:
        if self.instructions and isinstance(self.instructions[-1], TerminatorInst):
            return self.instructions[-1]
        return None

    def append(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.append(inst)
        if self.parent is not None:
            self.parent.assign_name(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        if self.parent is not None:
            self.parent.assign_name(inst)
        return inst

    def phis(self) -> Iterator[Phi]:
        for inst in self.instructions:
            if isinstance(inst, Phi):
                yield inst
            else:
                break

    def first_non_phi(self) -> Instruction | None:
        for inst in self.instructions:
            if not isinstance(inst, Phi):
                return inst
        return None

    # -- CFG ------------------------------------------------------------------
    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []

    def predecessors(self) -> list["BasicBlock"]:
        preds = []
        seen: set[int] = set()
        for use in self.uses:
            user = use.user
            if isinstance(user, TerminatorInst) and user.parent is not None:
                if id(user.parent) not in seen:
                    seen.add(id(user.parent))
                    preds.append(user.parent)
        return preds

    def remove_from_parent(self) -> None:
        assert self.parent is not None
        self.parent.blocks.remove(self)
        self.parent = None

    def erase(self) -> None:
        """Remove the block and drop all of its instructions' operand uses."""
        for inst in list(self.instructions):
            inst.erase_from_parent()
        self.remove_from_parent()

    def ref(self) -> str:
        return f"%{self.name}"

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines.extend(f"  {inst}" for inst in self.instructions)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock %{self.name} ({len(self.instructions)} insts)>"


class Function(GlobalValue):
    """A function definition or declaration.

    As a value, a function has pointer-to-function type (as in LLVM), so it
    can be stored, passed, and called indirectly — which is what NOELLE's
    complete call graph must resolve.
    """

    def __init__(
        self,
        name: str,
        function_type: FunctionType,
        arg_names: list[str] | None = None,
        parent: "Module | None" = None,
    ):
        super().__init__(PointerType(function_type), name)
        self.function_type = function_type
        self.parent = parent
        self.blocks: list[BasicBlock] = []
        self.args: list[Argument] = []
        self.metadata: dict[str, object] = {}
        #: Attributes such as "readonly", "noinline", "pure".
        self.attributes: set[str] = set()
        self._name_counter = 0
        self._used_names: set[str] = set()
        names = arg_names or [f"arg{i}" for i in range(len(function_type.params))]
        for index, (ty, arg_name) in enumerate(zip(function_type.params, names)):
            arg = Argument(ty, arg_name, self, index)
            self.args.append(arg)
            self._used_names.add(arg_name)

    # -- declaration vs definition -------------------------------------------
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def return_type(self) -> Type:
        return self.function_type.ret

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function @{self.name} has no body")
        return self.blocks[0]

    # -- block management -------------------------------------------------------
    def add_block(self, name: str = "bb") -> BasicBlock:
        block = BasicBlock(self._unique_name(name), self)
        self.blocks.append(block)
        return block

    def insert_block_after(self, after: BasicBlock, name: str = "bb") -> BasicBlock:
        block = BasicBlock(self._unique_name(name), self)
        self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def adopt_block(self, block: BasicBlock) -> BasicBlock:
        """Attach an existing detached block (used by loop transformations)."""
        block.parent = self
        block.name = self._unique_name(block.name or "bb")
        self.blocks.append(block)
        for inst in block.instructions:
            self.assign_name(inst)
        return block

    # -- naming ------------------------------------------------------------------
    def _unique_name(self, hint: str) -> str:
        if hint and hint not in self._used_names:
            self._used_names.add(hint)
            return hint
        while True:
            candidate = f"{hint or 'v'}{self._name_counter}"
            self._name_counter += 1
            if candidate not in self._used_names:
                self._used_names.add(candidate)
                return candidate

    def assign_name(self, inst: Instruction) -> None:
        """Give an instruction a unique name within this function."""
        if inst.type.is_void():
            return
        inst.name = self._unique_name(inst.name or "v")

    # -- iteration ----------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def num_instructions(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)

    def __str__(self) -> str:
        from .printer import print_function

        return print_function(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "declare" if self.is_declaration() else "define"
        return f"<Function {kind} @{self.name}>"


class Module:
    """A whole program: globals, named structs, and functions."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}
        self.structs: dict[str, StructType] = {}
        #: Module-level metadata (profiles, embedded PDG, link options, ...).
        self.metadata: dict[str, object] = {}

    # -- functions ---------------------------------------------------------------
    def add_function(
        self,
        name: str,
        function_type: FunctionType,
        arg_names: list[str] | None = None,
    ) -> Function:
        if name in self.functions:
            raise ValueError(f"function @{name} already exists")
        fn = Function(name, function_type, arg_names, self)
        self.functions[name] = fn
        return fn

    def get_function(self, name: str) -> Function:
        fn = self.functions.get(name)
        if fn is None:
            raise KeyError(f"no function named @{name}")
        return fn

    def declare_function(
        self, name: str, function_type: FunctionType
    ) -> Function:
        """Get-or-create an external declaration (e.g. ``print``/``malloc``)."""
        existing = self.functions.get(name)
        if existing is not None:
            if existing.function_type != function_type:
                raise TypeError(
                    f"conflicting declaration for @{name}: "
                    f"{existing.function_type} vs {function_type}"
                )
            return existing
        return self.add_function(name, function_type)

    def remove_function(self, name: str) -> None:
        fn = self.functions.pop(name)
        for block in list(fn.blocks):
            block.erase()

    def defined_functions(self) -> Iterator[Function]:
        for fn in self.functions.values():
            if not fn.is_declaration():
                yield fn

    # -- globals -------------------------------------------------------------------
    def add_global(
        self,
        name: str,
        allocated_type: Type,
        initializer: Constant | None = None,
        constant: bool = False,
    ) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"global @{name} already exists")
        gv = GlobalVariable(allocated_type, name, initializer, constant)
        self.globals[name] = gv
        return gv

    def get_global(self, name: str) -> GlobalVariable:
        gv = self.globals.get(name)
        if gv is None:
            raise KeyError(f"no global named @{name}")
        return gv

    # -- structs -------------------------------------------------------------------
    def add_struct(self, name: str, fields: list[Type] | None = None) -> StructType:
        if name in self.structs:
            raise ValueError(f"struct %{name} already exists")
        st = StructType(name, fields)
        self.structs[name] = st
        return st

    # -- stats -------------------------------------------------------------------
    def num_instructions(self) -> int:
        return sum(fn.num_instructions() for fn in self.functions.values())

    def __str__(self) -> str:
        from .printer import print_module

        return print_module(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Module {self.name} ({len(self.functions)} functions)>"
