"""Parser for the textual repro IR.

Reads the form emitted by :mod:`repro.ir.printer`, completing the
round-trippable serialization the whole-IR tool and the golden tests rely
on.  The grammar is line-oriented: one global/struct/instruction per line,
functions delimited by ``define ... {`` / ``}``.
"""

from __future__ import annotations

import re

from .instructions import (
    CAST_OPS,
    FCMP_PREDICATES,
    FLOAT_BINARY_OPS,
    ICMP_PREDICATES,
    INT_BINARY_OPS,
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    ElemPtr,
    FCmp,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .types import (
    DOUBLE,
    VOID,
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
)
from .values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    UndefValue,
    Value,
)


class ParseError(Exception):
    """Raised on malformed IR text."""

    def __init__(self, message: str, line_no: int | None = None):
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)


_TOKEN_RE = re.compile(
    r"""
    (?P<float>-?\d+\.\d+(e[+-]?\d+)?)    # float literal
  | (?P<int>-?\d+)                        # integer literal
  | (?P<global>@[\w.$-]+)                 # @name
  | (?P<local>%[\w.$-]+)                  # %name
  | (?P<word>[A-Za-z_][\w.]*)             # keyword / opcode / type
  | (?P<punct>\.\.\.|->|[()\[\]{}=,*:])   # punctuation
    """,
    re.VERBOSE,
)


def _tokenize(text: str, line_no: int) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        if ch == ";":
            break
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {ch!r}", line_no)
        tokens.append(match.group(0))
        pos = match.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[str], line_no: int):
        self.tokens = tokens
        self.pos = 0
        self.line_no = line_no

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of line", self.line_no)
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ParseError(f"expected {token!r}, got {got!r}", self.line_no)

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.pos += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)


def parse_module(text: str, name: str | None = None) -> Module:
    """Parse a complete module from text.

    When the caller does not name the module, the printer's
    ``; module NAME`` header line names it — so ``parse(print(m))``
    preserves the module name instead of collapsing it to "module".
    """
    lines = text.splitlines()
    if name is None:
        name = "module"
        for raw in lines:
            stripped = raw.strip()
            if not stripped:
                continue
            match = re.match(r";\s*module\s+(\S+)$", stripped)
            if match:
                name = match.group(1)
            break
    module = Module(name)
    # Pre-scan for struct names so struct types can be referenced before
    # their definition line.
    for raw in lines:
        stripped = raw.strip()
        match = re.match(r"%([\w.$-]+)\s*=\s*type\b", stripped)
        if match:
            module.add_struct(match.group(1))
    parser = _ModuleParser(module, lines)
    parser.run()
    return module


class _ModuleParser:
    def __init__(self, module: Module, lines: list[str]):
        self.module = module
        self.lines = lines
        self.index = 0
        #: function-body text gathered on a first pass, parsed on a second
        #: pass so cross-function references (calls) resolve.
        self.pending_bodies: list[tuple[Function, list[tuple[int, str]]]] = []

    def run(self) -> None:
        while self.index < len(self.lines):
            line_no = self.index + 1
            stripped = self.lines[self.index].strip()
            self.index += 1
            if not stripped or stripped.startswith(";"):
                continue
            if stripped.startswith("%") and "= type" in stripped:
                self._parse_struct(stripped, line_no)
            elif stripped.startswith("@") and ("= global" in stripped or "= constant" in stripped):
                self._parse_global(stripped, line_no)
            elif stripped.startswith("declare"):
                self._parse_declare(stripped, line_no)
            elif stripped.startswith("define"):
                self._collect_define(stripped, line_no)
            else:
                raise ParseError(f"unexpected top-level line: {stripped!r}", line_no)
        for fn, body in self.pending_bodies:
            _FunctionBodyParser(self.module, fn, body).run()

    # -- top-level entities ---------------------------------------------------
    def _parse_struct(self, text: str, line_no: int) -> None:
        stream = _TokenStream(_tokenize(text, line_no), line_no)
        name = stream.next()[1:]
        stream.expect("=")
        stream.expect("type")
        stream.expect("{")
        fields: list[Type] = []
        if not stream.accept("}"):
            fields.append(_parse_type(stream, self.module))
            while stream.accept(","):
                fields.append(_parse_type(stream, self.module))
            stream.expect("}")
        self.module.structs[name].set_body(fields)

    def _parse_global(self, text: str, line_no: int) -> None:
        stream = _TokenStream(_tokenize(text, line_no), line_no)
        name = stream.next()[1:]
        stream.expect("=")
        kind = stream.next()
        if kind not in ("global", "constant"):
            raise ParseError(f"expected 'global' or 'constant', got {kind!r}", line_no)
        ty = _parse_type(stream, self.module)
        initializer = None
        if not stream.at_end():
            initializer = _parse_global_initializer(stream, ty, self.module)
        self.module.add_global(name, ty, initializer, constant=(kind == "constant"))

    def _parse_declare(self, text: str, line_no: int) -> None:
        stream = _TokenStream(_tokenize(text, line_no), line_no)
        stream.expect("declare")
        name, fnty, arg_names, attrs = _parse_signature(stream, self.module)
        fn = self.module.add_function(name, fnty, arg_names)
        fn.attributes |= attrs

    def _collect_define(self, header: str, line_no: int) -> None:
        stream = _TokenStream(_tokenize(header, line_no), line_no)
        stream.expect("define")
        name, fnty, arg_names, attrs = _parse_signature(stream, self.module)
        stream.expect("{")
        fn = self.module.add_function(name, fnty, arg_names)
        fn.attributes |= attrs
        body: list[tuple[int, str]] = []
        while self.index < len(self.lines):
            body_line_no = self.index + 1
            stripped = self.lines[self.index].strip()
            self.index += 1
            if stripped == "}":
                self.pending_bodies.append((fn, body))
                return
            if stripped and not stripped.startswith(";"):
                body.append((body_line_no, stripped))
        raise ParseError(f"function @{name} is missing a closing brace", line_no)


def _parse_signature(
    stream: _TokenStream, module: Module
) -> tuple[str, FunctionType, list[str], set[str]]:
    name_token = stream.next()
    if not name_token.startswith("@"):
        raise ParseError(f"expected @name, got {name_token!r}", stream.line_no)
    stream.expect("(")
    param_types: list[Type] = []
    arg_names: list[str] = []
    vararg = False
    if not stream.accept(")"):
        while True:
            if stream.accept("..."):
                vararg = True
                break
            param_types.append(_parse_type(stream, module))
            arg_token = stream.next()
            if not arg_token.startswith("%"):
                raise ParseError(f"expected %argname, got {arg_token!r}", stream.line_no)
            arg_names.append(arg_token[1:])
            if not stream.accept(","):
                break
        stream.expect(")")
    stream.expect("->")
    ret = _parse_type(stream, module)
    attrs: set[str] = set()
    while not stream.at_end() and stream.peek() != "{":
        attrs.add(stream.next())
    return name_token[1:], FunctionType(ret, param_types, vararg), arg_names, attrs


def _parse_type(stream: _TokenStream, module: Module) -> Type:
    token = stream.next()
    base: Type
    if token == "void":
        base = VOID
    elif token == "double":
        base = DOUBLE
    elif token == "label":
        from .types import LABEL

        base = LABEL
    elif re.fullmatch(r"i\d+", token):
        base = IntType(int(token[1:]))
    elif token.startswith("%"):
        name = token[1:]
        if name not in module.structs:
            raise ParseError(f"unknown struct %{name}", stream.line_no)
        base = module.structs[name]
    elif token == "[":
        count = int(stream.next())
        stream.expect("x")
        element = _parse_type(stream, module)
        stream.expect("]")
        base = ArrayType(element, count)
    else:
        raise ParseError(f"expected a type, got {token!r}", stream.line_no)
    # Function-type suffix: `T (params...)`.
    while True:
        if stream.peek() == "(" and _looks_like_function_type(stream):
            stream.expect("(")
            params: list[Type] = []
            vararg = False
            if not stream.accept(")"):
                while True:
                    if stream.accept("..."):
                        vararg = True
                        break
                    params.append(_parse_type(stream, module))
                    if not stream.accept(","):
                        break
                stream.expect(")")
            base = FunctionType(base, params, vararg)
        elif stream.peek() == "*":
            stream.next()
            base = PointerType(base)
        else:
            return base


def _looks_like_function_type(stream: _TokenStream) -> bool:
    """Disambiguate ``T (...)`` function types from call argument lists."""
    # The next token after '(' must start a type or be ')' or '...'.
    nxt = stream.tokens[stream.pos + 1] if stream.pos + 1 < len(stream.tokens) else None
    if nxt is None:
        return False
    return (
        nxt in (")", "...", "void", "double", "label", "[")
        or bool(re.fullmatch(r"i\d+", nxt))
        or nxt.startswith("%") and nxt[1:] and not nxt[1:].isdigit()
    )


def _parse_global_initializer(stream: _TokenStream, ty: Type, module: Module):
    token = stream.peek()
    if token == "[":
        stream.next()
        elements = []
        if not stream.accept("]"):
            while True:
                elem_ty = _parse_type(stream, module)
                elem = _parse_constant(stream, elem_ty)
                elements.append(elem)
                if not stream.accept(","):
                    break
            stream.expect("]")
        from .values import ConstantArray

        return ConstantArray(ty, elements)
    return _parse_constant(stream, ty)


def _parse_constant(stream: _TokenStream, ty: Type) -> Value:
    token = stream.next()
    if token == "null":
        return ConstantNull(ty)
    if token == "undef":
        return UndefValue(ty)
    if re.fullmatch(r"-?\d+\.\d+(e[+-]?\d+)?", token):
        return ConstantFloat(ty, float(token))
    if re.fullmatch(r"-?\d+", token):
        if ty.is_float():
            return ConstantFloat(ty, float(token))
        return ConstantInt(ty, int(token))
    raise ParseError(f"expected a constant, got {token!r}", stream.line_no)


class _FunctionBodyParser:
    """Parses the body of one function (second pass)."""

    def __init__(self, module: Module, fn: Function, body: list[tuple[int, str]]):
        self.module = module
        self.fn = fn
        self.body = body
        self.values: dict[str, Value] = {arg.name: arg for arg in fn.args}
        self.blocks: dict[str, BasicBlock] = {}
        #: phi fixups: (phi, [(value_token, value_type, block_name)])
        self.phi_fixups: list[tuple[Phi, list[tuple[str, Type, str]]]] = []
        #: Forward references: SSA dominance is block-order independent, so
        #: a textually-later definition may be used earlier.  Unknown names
        #: become placeholders, patched when the definition arrives.
        self.forward: dict[str, Value] = {}

    def run(self) -> None:
        # First pass: create all blocks so branches can resolve forward.
        for line_no, line in self.body:
            match = re.fullmatch(r"([\w.$-]+):", line)
            if match:
                name = match.group(1)
                if name in self.blocks:
                    raise ParseError(f"duplicate block %{name}", line_no)
                block = BasicBlock(name, self.fn)
                self.fn.blocks.append(block)
                self.fn._used_names.add(name)
                self.blocks[name] = block
        current: BasicBlock | None = None
        for line_no, line in self.body:
            match = re.fullmatch(r"([\w.$-]+):", line)
            if match:
                current = self.blocks[match.group(1)]
                continue
            if current is None:
                raise ParseError("instruction before first block label", line_no)
            self._parse_instruction(line, line_no, current)
        self._resolve_phis()
        unresolved = [n for n, p in self.forward.items() if p.is_used()]
        if unresolved:
            raise ParseError(
                f"use of undefined value(s) %{', %'.join(sorted(unresolved))} "
                f"in @{self.fn.name}"
            )

    # -- value resolution -------------------------------------------------------
    def _value(self, token: str, ty: Type, line_no: int) -> Value:
        if token.startswith("%"):
            name = token[1:]
            if name in self.values:
                return self.values[name]
            placeholder = self.forward.get(name)
            if placeholder is None:
                placeholder = Value(ty, name)
                self.forward[name] = placeholder
            return placeholder
        if token.startswith("@"):
            name = token[1:]
            if name in self.module.functions:
                return self.module.functions[name]
            if name in self.module.globals:
                return self.module.globals[name]
            raise ParseError(f"use of undefined global @{name}", line_no)
        stream = _TokenStream([token], line_no)
        return _parse_constant(stream, ty)

    def _typed_value(self, stream: _TokenStream) -> Value:
        ty = _parse_type(stream, self.module)
        token = stream.next()
        return self._value(token, ty, stream.line_no)

    def _define(self, name: str, value: Value) -> None:
        value.name = name
        self.values[name] = value
        self.fn._used_names.add(name)
        placeholder = self.forward.pop(name, None)
        if placeholder is not None:
            placeholder.replace_all_uses_with(value)

    # -- instruction dispatch ------------------------------------------------------
    def _parse_instruction(self, line: str, line_no: int, block: BasicBlock) -> None:
        stream = _TokenStream(_tokenize(line, line_no), line_no)
        first = stream.next()
        result_name: str | None = None
        if first.startswith("%") and stream.peek() == "=":
            result_name = first[1:]
            stream.expect("=")
            opcode = stream.next()
        else:
            opcode = first
        inst = self._build(opcode, stream, line_no, block)
        inst.parent = block
        block.instructions.append(inst)
        if result_name is not None:
            self._define(result_name, inst)

    def _build(self, opcode: str, stream: _TokenStream, line_no: int, block: BasicBlock):
        if opcode in INT_BINARY_OPS or opcode in FLOAT_BINARY_OPS:
            lhs = self._typed_value(stream)
            stream.expect(",")
            rhs = self._typed_value(stream)
            return BinaryOp(opcode, lhs, rhs)
        if opcode == "icmp":
            predicate = stream.next()
            if predicate not in ICMP_PREDICATES:
                raise ParseError(f"bad icmp predicate {predicate!r}", line_no)
            lhs = self._typed_value(stream)
            stream.expect(",")
            rhs = self._typed_value(stream)
            return ICmp(predicate, lhs, rhs)
        if opcode == "fcmp":
            predicate = stream.next()
            if predicate not in FCMP_PREDICATES:
                raise ParseError(f"bad fcmp predicate {predicate!r}", line_no)
            lhs = self._typed_value(stream)
            stream.expect(",")
            rhs = self._typed_value(stream)
            return FCmp(predicate, lhs, rhs)
        if opcode == "alloca":
            ty = _parse_type(stream, self.module)
            return Alloca(ty)
        if opcode == "load":
            _parse_type(stream, self.module)  # result type, redundant
            stream.expect(",")
            ptr = self._typed_value(stream)
            return Load(ptr)
        if opcode == "store":
            value = self._typed_value(stream)
            stream.expect(",")
            ptr = self._typed_value(stream)
            return Store(value, ptr)
        if opcode == "elem_ptr":
            base = self._typed_value(stream)
            indices = []
            while stream.accept(","):
                indices.append(self._typed_value(stream))
            return ElemPtr(base, indices)
        if opcode == "call":
            _parse_type(stream, self.module)  # return type, redundant
            callee_token = stream.next()
            stream.expect("(")
            args = []
            if not stream.accept(")"):
                while True:
                    args.append(self._typed_value(stream))
                    if not stream.accept(","):
                        break
                stream.expect(")")
            callee = self._value(callee_token, VOID, line_no)
            return Call(callee, args)
        if opcode == "phi":
            ty = _parse_type(stream, self.module)
            phi = Phi(ty)
            fixups: list[tuple[str, Type, str]] = []
            while stream.accept("["):
                value_token = stream.next()
                stream.expect(",")
                block_token = stream.next()
                stream.expect("]")
                fixups.append((value_token, ty, block_token[1:]))
                stream.accept(",")
            self.phi_fixups.append((phi, fixups))
            return phi
        if opcode == "select":
            cond = self._typed_value(stream)
            stream.expect(",")
            true_value = self._typed_value(stream)
            stream.expect(",")
            false_value = self._typed_value(stream)
            return Select(cond, true_value, false_value)
        if opcode in CAST_OPS:
            value = self._typed_value(stream)
            stream.expect("to")
            to_type = _parse_type(stream, self.module)
            return Cast(opcode, value, to_type)
        if opcode == "br":
            if stream.peek() == "label":
                stream.expect("label")
                target = self._block_ref(stream.next(), line_no)
                return Branch(target)
            cond = self._typed_value(stream)
            stream.expect(",")
            stream.expect("label")
            true_block = self._block_ref(stream.next(), line_no)
            stream.expect(",")
            stream.expect("label")
            false_block = self._block_ref(stream.next(), line_no)
            return CondBranch(cond, true_block, false_block)
        if opcode == "switch":
            value = self._typed_value(stream)
            stream.expect(",")
            stream.expect("label")
            default = self._block_ref(stream.next(), line_no)
            stream.expect("[")
            cases: list[tuple[ConstantInt, BasicBlock]] = []
            while not stream.accept("]"):
                case_ty = _parse_type(stream, self.module)
                const = _parse_constant(stream, case_ty)
                stream.expect(",")
                stream.expect("label")
                target = self._block_ref(stream.next(), line_no)
                cases.append((const, target))
            return Switch(value, default, cases)
        if opcode == "ret":
            if stream.peek() == "void":
                stream.next()
                return Ret(None)
            value = self._typed_value(stream)
            return Ret(value)
        if opcode == "unreachable":
            return Unreachable()
        raise ParseError(f"unknown opcode {opcode!r}", line_no)

    def _block_ref(self, token: str, line_no: int) -> BasicBlock:
        name = token[1:]
        if name not in self.blocks:
            raise ParseError(f"branch to unknown block %{name}", line_no)
        return self.blocks[name]

    def _resolve_phis(self) -> None:
        for phi, fixups in self.phi_fixups:
            for value_token, ty, block_name in fixups:
                value = self._value(value_token, ty, 0)
                phi.add_incoming(value, self.blocks[block_name])
