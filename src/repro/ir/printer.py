"""Textual printer for the repro IR.

Emits an LLVM-flavoured textual form that :mod:`repro.ir.parser` can read
back, giving a stable round-trippable serialization used by tests, the
whole-IR tool, and golden files.
"""

from __future__ import annotations

from .module import Function, Module


def print_module(module: Module) -> str:
    """Render a whole module as text."""
    parts: list[str] = [f"; module {module.name}"]
    for struct in module.structs.values():
        fields = ", ".join(str(f) for f in struct.fields)
        parts.append(f"%{struct.name} = type {{ {fields} }}")
    for gv in module.globals.values():
        init = f" {gv.initializer.ref()}" if gv.initializer is not None else ""
        kind = "constant" if gv.constant else "global"
        parts.append(f"@{gv.name} = {kind} {gv.allocated_type}{init}")
    for fn in module.functions.values():
        parts.append(print_function(fn))
    return "\n\n".join(parts) + "\n"


def print_function(fn: Function) -> str:
    """Render one function (definition or declaration) as text."""
    params = ", ".join(f"{arg.type} %{arg.name}" for arg in fn.args)
    if fn.function_type.vararg:
        params = f"{params}, ..." if params else "..."
    attrs = (" " + " ".join(sorted(fn.attributes))) if fn.attributes else ""
    header = f"@{fn.name}({params}) -> {fn.return_type}{attrs}"
    if fn.is_declaration():
        return f"declare {header}"
    lines = [f"define {header} {{"]
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        lines.extend(f"  {inst}" for inst in block.instructions)
    lines.append("}")
    return "\n".join(lines)
