"""Type system for the repro IR.

The IR is a typed SSA representation modeled after LLVM IR.  Types are
immutable and interned where practical so identity comparison is cheap, but
equality is always structural (two ``IntType(32)`` objects compare equal).

The type lattice is deliberately small; it covers what the NOELLE layer and
the custom tools need to observe:

* integers of a given bit width (``i1`` is the boolean type),
* a 64-bit float,
* ``void`` (only as a function return type),
* pointers (typed, like pre-opaque-pointer LLVM),
* fixed-length arrays,
* named structs, and
* function types (for direct and indirect calls).
"""

from __future__ import annotations


class Type:
    """Base class for all IR types."""

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    def is_scalar(self) -> bool:
        """A scalar occupies one memory slot in the interpreter."""
        return self.is_integer() or self.is_float() or self.is_pointer()

    def size_in_slots(self) -> int:
        """Size of a value of this type in abstract memory slots.

        The interpreter's memory is slot-addressable: every scalar takes
        exactly one slot.  This keeps pointer arithmetic exact without
        modeling byte-level layout, which none of the reproduced analyses
        need.
        """
        raise NotImplementedError(f"size_in_slots not defined for {self}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self}>"


class IntType(Type):
    """An integer type of a fixed bit width (``i1``, ``i8``, ``i32``, ...)."""

    _cache: dict[int, "IntType"] = {}

    def __new__(cls, width: int) -> "IntType":
        cached = cls._cache.get(width)
        if cached is not None:
            return cached
        if width <= 0:
            raise ValueError(f"integer width must be positive, got {width}")
        obj = super().__new__(cls)
        obj.width = width
        cls._cache[width] = obj
        return obj

    def size_in_slots(self) -> int:
        return 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.width == self.width

    def __hash__(self) -> int:
        return hash(("int", self.width))

    def __str__(self) -> str:
        return f"i{self.width}"


class FloatType(Type):
    """A 64-bit floating point type (``double`` in LLVM terms)."""

    _instance: "FloatType | None" = None

    def __new__(cls) -> "FloatType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def size_in_slots(self) -> int:
        return 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType)

    def __hash__(self) -> int:
        return hash("float")

    def __str__(self) -> str:
        return "double"


class VoidType(Type):
    """The void type; only valid as a function return type."""

    _instance: "VoidType | None" = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def size_in_slots(self) -> int:
        raise TypeError("void has no size")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")

    def __str__(self) -> str:
        return "void"


class PointerType(Type):
    """A typed pointer (``T*``)."""

    def __init__(self, pointee: Type):
        if pointee.is_void():
            raise ValueError("use i8* instead of void*")
        self.pointee = pointee

    def size_in_slots(self) -> int:
        return 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    """A fixed-length array (``[N x T]``)."""

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError(f"array length must be non-negative, got {count}")
        self.element = element
        self.count = count

    def size_in_slots(self) -> int:
        return self.element.size_in_slots() * self.count

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class StructType(Type):
    """A named struct with ordered fields.

    Structs are identified by name within a module (nominal typing), which
    mirrors LLVM named struct types and keeps recursive types representable.
    """

    def __init__(self, name: str, fields: list[Type] | None = None):
        self.name = name
        self.fields: list[Type] = list(fields) if fields is not None else []

    def set_body(self, fields: list[Type]) -> None:
        self.fields = list(fields)

    def field_offset(self, index: int) -> int:
        """Slot offset of field ``index`` from the start of the struct."""
        if not 0 <= index < len(self.fields):
            raise IndexError(f"struct {self.name} has no field {index}")
        return sum(f.size_in_slots() for f in self.fields[:index])

    def size_in_slots(self) -> int:
        return sum(f.size_in_slots() for f in self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))

    def __str__(self) -> str:
        return f"%{self.name}"


class FunctionType(Type):
    """The type of a function: return type plus parameter types."""

    def __init__(self, ret: Type, params: list[Type], vararg: bool = False):
        self.ret = ret
        self.params = list(params)
        self.vararg = vararg

    def size_in_slots(self) -> int:
        raise TypeError("function types have no size")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.ret == self.ret
            and other.params == self.params
            and other.vararg == self.vararg
        )

    def __hash__(self) -> int:
        return hash(("fn", self.ret, tuple(self.params), self.vararg))

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.vararg:
            params = f"{params}, ..." if params else "..."
        return f"{self.ret} ({params})"


class LabelType(Type):
    """The type of a basic block when referenced as a branch target."""

    _instance: "LabelType | None" = None

    def __new__(cls) -> "LabelType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def size_in_slots(self) -> int:
        raise TypeError("labels have no size")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelType)

    def __hash__(self) -> int:
        return hash("label")

    def __str__(self) -> str:
        return "label"


# Commonly used singletons.
VOID = VoidType()
LABEL = LabelType()
DOUBLE = FloatType()
I1 = IntType(1)
I8 = IntType(8)
I32 = IntType(32)
I64 = IntType(64)


def pointer_to(ty: Type) -> PointerType:
    """Convenience constructor mirroring ``Type::getPointerTo`` in LLVM."""
    return PointerType(ty)
