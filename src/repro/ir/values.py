"""Core value hierarchy for the repro IR.

Everything an instruction can reference is a :class:`Value`: constants,
function arguments, global variables, functions, basic blocks (as branch
targets), and other instructions.  Values track their uses, giving the IR
full def-use chains — the raw material the PDG and all NOELLE abstractions
are built from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .types import FunctionType, IntType, PointerType, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .instructions import Instruction
    from .module import Function


class Use:
    """A single operand slot: ``user.operands[index] is value``."""

    __slots__ = ("user", "index")

    def __init__(self, user: "User", index: int):
        self.user = user
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Use of operand {self.index} in {self.user!r}>"


class Value:
    """Base class of the SSA value hierarchy."""

    def __init__(self, ty: Type, name: str = ""):
        self.type = ty
        self.name = name
        self.uses: list[Use] = []

    # -- def-use chain ----------------------------------------------------
    def users(self) -> Iterator["User"]:
        """Iterate over the distinct users of this value."""
        seen: set[int] = set()
        for use in self.uses:
            if id(use.user) not in seen:
                seen.add(id(use.user))
                yield use.user

    def num_uses(self) -> int:
        return len(self.uses)

    def is_used(self) -> bool:
        return bool(self.uses)

    def replace_all_uses_with(self, replacement: "Value") -> None:
        """Rewrite every use of this value to ``replacement``."""
        if replacement is self:
            return
        for use in list(self.uses):
            use.user.set_operand(use.index, replacement)

    # -- printing ----------------------------------------------------------
    def ref(self) -> str:
        """The operand-position spelling of this value (e.g. ``%x``)."""
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class User(Value):
    """A value that references other values through ordered operands."""

    def __init__(self, ty: Type, name: str = ""):
        super().__init__(ty, name)
        self.operands: list[Value] = []

    def _add_operand(self, value: Value) -> None:
        use = Use(self, len(self.operands))
        self.operands.append(value)
        value.uses.append(use)

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        for i, use in enumerate(old.uses):
            if use.user is self and use.index == index:
                del old.uses[i]
                break
        self.operands[index] = value
        value.uses.append(Use(self, index))

    def drop_all_operands(self) -> None:
        """Remove this user from every operand's use list."""
        for index, operand in enumerate(self.operands):
            operand.uses = [
                u for u in operand.uses if not (u.user is self and u.index == index)
            ]
        self.operands = []


class Constant(Value):
    """Base class for immutable compile-time values."""

    def ref(self) -> str:
        raise NotImplementedError


class ConstantInt(Constant):
    """An integer constant, wrapped to its type's bit width."""

    def __init__(self, ty: IntType, value: int):
        super().__init__(ty)
        self.value = _wrap_to_width(value, ty.width)

    def ref(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("cint", self.type, self.value))


class ConstantFloat(Constant):
    """A floating-point constant."""

    def __init__(self, ty: Type, value: float):
        super().__init__(ty)
        self.value = float(value)

    def ref(self) -> str:
        text = repr(self.value)
        return text if ("." in text or "e" in text or "inf" in text or "nan" in text) else text + ".0"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantFloat)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("cfloat", self.type, self.value))


class ConstantNull(Constant):
    """The null pointer of a given pointer type."""

    def __init__(self, ty: PointerType):
        super().__init__(ty)

    def ref(self) -> str:
        return "null"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantNull) and other.type == self.type

    def __hash__(self) -> int:
        return hash(("cnull", self.type))


class UndefValue(Constant):
    """An undefined value of a given type (LLVM ``undef``)."""

    def __init__(self, ty: Type):
        super().__init__(ty)

    def ref(self) -> str:
        return "undef"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UndefValue) and other.type == self.type

    def __hash__(self) -> int:
        return hash(("undef", self.type))


class ConstantString(Constant):
    """A constant string used as a global initializer (array of i8)."""

    def __init__(self, ty: Type, text: str):
        super().__init__(ty)
        self.text = text

    def ref(self) -> str:
        escaped = self.text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'c"{escaped}"'

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantString) and other.text == self.text

    def __hash__(self) -> int:
        return hash(("cstr", self.text))


class ConstantArray(Constant):
    """A constant aggregate initializer for a global array."""

    def __init__(self, ty: Type, elements: list[Constant]):
        super().__init__(ty)
        self.elements = list(elements)

    def ref(self) -> str:
        inner = ", ".join(f"{e.type} {e.ref()}" for e in self.elements)
        return f"[{inner}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantArray)
            and other.type == self.type
            and other.elements == self.elements
        )

    def __hash__(self) -> int:
        return hash(("carr", self.type, tuple(self.elements)))


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, ty: Type, name: str, parent: "Function | None" = None, index: int = 0):
        super().__init__(ty, name)
        self.parent = parent
        self.index = index


class GlobalValue(Constant):
    """Base class for module-level values (globals and functions)."""

    def __init__(self, ty: Type, name: str):
        super().__init__(ty, name)

    def ref(self) -> str:
        return f"@{self.name}"


class GlobalVariable(GlobalValue):
    """A module-level variable.

    Its value is a pointer to storage of ``allocated_type``, mirroring LLVM
    where ``@g : T`` has type ``T*`` as an operand.
    """

    def __init__(
        self,
        allocated_type: Type,
        name: str,
        initializer: Constant | None = None,
        constant: bool = False,
    ):
        super().__init__(PointerType(allocated_type), name)
        self.allocated_type = allocated_type
        self.initializer = initializer
        self.constant = constant


def _wrap_to_width(value: int, width: int) -> int:
    """Wrap ``value`` into the signed range of an integer of ``width`` bits."""
    mask = (1 << width) - 1
    value &= mask
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


def wrap_int(value: int, ty: IntType) -> int:
    """Public helper used by the interpreter and constant folding."""
    return _wrap_to_width(value, ty.width)


def const_int(value: int, width: int = 64) -> ConstantInt:
    return ConstantInt(IntType(width), value)


def const_bool(value: bool) -> ConstantInt:
    return ConstantInt(IntType(1), 1 if value else 0)


def const_float(value: float) -> ConstantFloat:
    from .types import DOUBLE

    return ConstantFloat(DOUBLE, value)
