"""IR verifier.

Checks the structural and SSA well-formedness invariants every pass in the
repository may assume:

* every block ends in exactly one terminator, and terminators appear only
  at block ends;
* phis are grouped at the top of their block and have exactly one incoming
  value per CFG predecessor;
* every instruction use is dominated by its definition (the SSA property);
* operand and result types are consistent;
* branch targets belong to the same function.

Transformation tests run the verifier after every rewrite, which is how the
loop builder, scheduler, and the parallelizers are kept honest.
"""

from __future__ import annotations

from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CmpInst,
    CondBranch,
    ElemPtr,
    Instruction,
    Load,
    Phi,
    Ret,
    Store,
    Switch,
    TerminatorInst,
)
from .module import BasicBlock, Function, Module
from .values import Argument, Constant, Value
from ..robust.faults import checkpoint as _fault_checkpoint


class VerificationError(Exception):
    """Raised when a module violates an IR invariant."""


def verify_module(module: Module) -> None:
    """Verify every function of ``module``; raise on the first violation."""
    _fault_checkpoint("verify")
    for fn in module.functions.values():
        if not fn.is_declaration():
            verify_function(fn)


def verify_function(fn: Function) -> None:
    """Verify a single function definition."""
    if fn.is_declaration():
        return
    _check_block_structure(fn)
    _check_phis(fn)
    _check_types(fn)
    _check_ssa_dominance(fn)


def _fail(fn: Function, message: str) -> None:
    raise VerificationError(f"in @{fn.name}: {message}")


def _check_block_structure(fn: Function) -> None:
    block_set = set(id(b) for b in fn.blocks)
    for block in fn.blocks:
        if not block.instructions:
            _fail(fn, f"block %{block.name} is empty")
        for inst in block.instructions[:-1]:
            if isinstance(inst, TerminatorInst):
                _fail(fn, f"terminator {inst} is not at the end of %{block.name}")
        last = block.instructions[-1]
        if not isinstance(last, TerminatorInst):
            _fail(fn, f"block %{block.name} does not end in a terminator")
        for succ in last.successors():
            if id(succ) not in block_set:
                _fail(
                    fn,
                    f"%{block.name} branches to %{succ.name}, "
                    "which is not in this function",
                )
        for inst in block.instructions:
            if inst.parent is not block:
                _fail(fn, f"{inst} has a stale parent pointer")


def _check_phis(fn: Function) -> None:
    for block in fn.blocks:
        preds = block.predecessors()
        pred_ids = {id(p) for p in preds}
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, Phi):
                if seen_non_phi:
                    _fail(fn, f"phi {inst.ref()} is not at the top of %{block.name}")
                incoming_ids = set()
                for value, pred in inst.incoming():
                    if id(pred) not in pred_ids:
                        _fail(
                            fn,
                            f"phi {inst.ref()} has an edge from non-predecessor "
                            f"%{pred.name} of %{block.name}",
                        )
                    if id(pred) in incoming_ids:
                        _fail(fn, f"phi {inst.ref()} has duplicate edge from %{pred.name}")
                    incoming_ids.add(id(pred))
                    if value.type != inst.type:
                        _fail(
                            fn,
                            f"phi {inst.ref()} incoming value {value.ref()} has type "
                            f"{value.type}, expected {inst.type}",
                        )
                if incoming_ids != pred_ids:
                    missing = [p.name for p in preds if id(p) not in incoming_ids]
                    _fail(
                        fn,
                        f"phi {inst.ref()} in %{block.name} is missing edges "
                        f"from {missing}",
                    )
            else:
                seen_non_phi = True


def _check_types(fn: Function) -> None:
    for block in fn.blocks:
        for inst in block.instructions:
            _check_instruction_types(fn, inst)


def _check_instruction_types(fn: Function, inst: Instruction) -> None:
    if isinstance(inst, BinaryOp):
        if inst.lhs.type != inst.rhs.type:
            _fail(fn, f"operand type mismatch in {inst}")
        if inst.type != inst.lhs.type:
            _fail(fn, f"result type mismatch in {inst}")
    elif isinstance(inst, CmpInst):
        if inst.lhs.type != inst.rhs.type:
            _fail(fn, f"operand type mismatch in {inst}")
    elif isinstance(inst, Load):
        if not inst.pointer.type.is_pointer():
            _fail(fn, f"load from non-pointer in {inst}")
        if inst.type != inst.pointer.type.pointee:
            _fail(fn, f"load type mismatch in {inst}")
    elif isinstance(inst, Store):
        if not inst.pointer.type.is_pointer():
            _fail(fn, f"store to non-pointer in {inst}")
        if inst.value.type != inst.pointer.type.pointee:
            _fail(fn, f"store type mismatch in {inst}")
    elif isinstance(inst, Call):
        callee_ty = inst.callee.type
        if not (callee_ty.is_pointer() and callee_ty.pointee.is_function()):
            _fail(fn, f"call to non-function in {inst}")
        fnty = callee_ty.pointee
        if not fnty.vararg:
            if len(inst.args) != len(fnty.params):
                _fail(fn, f"wrong argument count in {inst}")
            for arg, param_ty in zip(inst.args, fnty.params):
                if arg.type != param_ty:
                    _fail(fn, f"argument type mismatch in {inst}")
        if inst.type != fnty.ret:
            _fail(fn, f"return type mismatch in {inst}")
    elif isinstance(inst, Ret):
        expected = fn.return_type
        if expected.is_void():
            if inst.value is not None:
                _fail(fn, "ret with a value in a void function")
        else:
            if inst.value is None:
                _fail(fn, "ret without a value in a non-void function")
            elif inst.value.type != expected:
                _fail(fn, f"ret type {inst.value.type}, expected {expected}")
    elif isinstance(inst, CondBranch):
        ty = inst.condition.type
        if not (ty.is_integer() and ty.width == 1):
            _fail(fn, f"cond_br condition is not i1 in {inst}")
    elif isinstance(inst, Switch):
        if not inst.value.type.is_integer():
            _fail(fn, f"switch on non-integer in {inst}")
    elif isinstance(inst, (Alloca, ElemPtr, Cast, Branch, Phi)):
        pass  # Construction-time checks cover these.


def _check_ssa_dominance(fn: Function) -> None:
    # Local import to avoid a package cycle: the analysis package builds on ir.
    from ..analysis.dominators import DominatorTree

    dom = DominatorTree(fn)
    positions: dict[int, tuple[BasicBlock, int]] = {}
    for block in fn.blocks:
        for index, inst in enumerate(block.instructions):
            positions[id(inst)] = (block, index)

    for block in fn.blocks:
        for index, inst in enumerate(block.instructions):
            if isinstance(inst, Phi):
                for value, pred in inst.incoming():
                    _check_reaches_edge(fn, dom, value, pred, positions)
                continue
            for operand in inst.operands:
                # A phi may consume its own result around a back edge;
                # everywhere else a self-operand is a broken rewrite.
                if operand is inst:
                    _fail(fn, f"{inst} uses its own result")
                if not isinstance(operand, Instruction):
                    _check_non_instruction_operand(fn, inst, operand)
                    continue
                def_block, def_index = positions.get(id(operand), (None, -1))
                if def_block is None:
                    _fail(fn, f"{inst} uses {operand.ref()} from another function")
                if def_block is block:
                    if def_index >= index:
                        _fail(fn, f"{inst} uses {operand.ref()} before its definition")
                elif not dom.dominates_block(def_block, block):
                    _fail(
                        fn,
                        f"{inst} in %{block.name} uses {operand.ref()} defined in "
                        f"non-dominating block %{def_block.name}",
                    )


def _check_reaches_edge(fn, dom, value: Value, pred: BasicBlock, positions) -> None:
    if not isinstance(value, Instruction):
        return
    def_block = positions.get(id(value), (None, -1))[0]
    if def_block is None:
        _fail(fn, f"phi uses {value.ref()} from another function")
    if not dom.dominates_block(def_block, pred):
        _fail(
            fn,
            f"phi incoming {value.ref()} from %{pred.name} is not dominated "
            f"by its definition in %{def_block.name}",
        )


def _check_non_instruction_operand(fn: Function, inst: Instruction, operand: Value) -> None:
    if isinstance(operand, Argument):
        if operand.parent is not fn:
            _fail(fn, f"{inst} uses argument of another function")
    elif isinstance(operand, (Constant, BasicBlock)):
        pass
    else:
        _fail(fn, f"{inst} has an operand of unexpected kind: {operand!r}")
