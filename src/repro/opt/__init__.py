"""repro.opt — substrate IR transforms (mem2reg, simplification)."""

from .mem2reg import promote_allocas, promote_allocas_module
from .simplify import simplify_function, simplify_module

__all__ = [
    "promote_allocas",
    "promote_allocas_module",
    "simplify_function",
    "simplify_module",
]
