"""Promote memory to registers (LLVM's ``mem2reg``).

Standard SSA construction: promotable allocas (scalar, only directly loaded
and stored) get phi nodes at iterated dominance frontiers, then a renaming
walk over the dominator tree replaces loads with reaching definitions.

This pass makes the frontend output analyzable: without it every local
variable round-trips through memory and no loop has SSA induction phis.
"""

from __future__ import annotations

from ..analysis.cfg import remove_unreachable_blocks
from ..analysis.dominators import DominatorTree
from ..ir.instructions import Alloca, Instruction, Load, Phi, Store
from ..ir.module import BasicBlock, Function, Module
from ..ir.values import UndefValue, Value


def promote_allocas_module(module: Module) -> int:
    """Run mem2reg on every defined function; returns promoted-alloca count."""
    total = 0
    for fn in module.defined_functions():
        total += promote_allocas(fn)
    return total


def promote_allocas(fn: Function) -> int:
    """Promote all promotable allocas of ``fn`` to SSA values."""
    remove_unreachable_blocks(fn)
    promotable = [
        inst
        for inst in fn.entry.instructions
        if isinstance(inst, Alloca) and _is_promotable(inst)
    ]
    # Also consider allocas outside the entry (rare, from transformations).
    for block in fn.blocks[1:]:
        for inst in block.instructions:
            if isinstance(inst, Alloca) and _is_promotable(inst):
                promotable.append(inst)
    if not promotable:
        return 0
    dom = DominatorTree(fn)
    frontier = dom.dominance_frontier()
    phi_sites: dict[int, dict[int, Phi]] = {}  # id(alloca) -> {id(block): phi}
    for alloca in promotable:
        phi_sites[id(alloca)] = _insert_phis(fn, alloca, dom, frontier)
    _rename(fn, dom, promotable, phi_sites)
    for alloca in promotable:
        for use in list(alloca.uses):
            user = use.user
            if isinstance(user, (Load, Store)) and user.parent is not None:
                user.erase_from_parent()
        alloca.erase_from_parent()
    _prune_dead_phis(fn)
    return len(promotable)


def _is_promotable(alloca: Alloca) -> bool:
    if not alloca.allocated_type.is_scalar():
        return False
    for use in alloca.uses:
        user = use.user
        if isinstance(user, Load):
            continue
        if isinstance(user, Store) and user.pointer is alloca and user.value is not alloca:
            continue
        return False
    return True


def _insert_phis(
    fn: Function, alloca: Alloca, dom: DominatorTree, frontier: dict[int, set[int]]
) -> dict[int, Phi]:
    def_blocks: list[BasicBlock] = []
    for use in alloca.uses:
        user = use.user
        if isinstance(user, Store) and user.parent is not None:
            def_blocks.append(user.parent)
    phis: dict[int, Phi] = {}
    worklist = list(def_blocks)
    processed: set[int] = set()
    while worklist:
        block = worklist.pop()
        for frontier_id in frontier.get(id(block), ()):
            if frontier_id in phis:
                continue
            frontier_block = dom.block_by_id(frontier_id)
            phi = Phi(alloca.allocated_type, f"{alloca.name}.phi")
            phi.parent = frontier_block
            frontier_block.instructions.insert(0, phi)
            fn.assign_name(phi)
            phis[frontier_id] = phi
            if frontier_id not in processed:
                processed.add(frontier_id)
                worklist.append(frontier_block)
    return phis


def _rename(
    fn: Function,
    dom: DominatorTree,
    allocas: list[Alloca],
    phi_sites: dict[int, dict[int, Phi]],
) -> None:
    alloca_ids = {id(a): a for a in allocas}
    #: phi -> the alloca it materializes (to wire incoming values).
    phi_owner: dict[int, Alloca] = {}
    for alloca_id, sites in phi_sites.items():
        for phi in sites.values():
            phi_owner[id(phi)] = alloca_ids[alloca_id]

    entry_state: dict[int, Value] = {
        id(a): UndefValue(a.allocated_type) for a in allocas
    }
    # Iterative pre-order walk of the dominator tree carrying value stacks.
    stack: list[tuple[BasicBlock, dict[int, Value]]] = [(fn.entry, entry_state)]
    while stack:
        block, incoming_state = stack.pop()
        state = dict(incoming_state)
        for inst in list(block.instructions):
            if isinstance(inst, Phi) and id(inst) in phi_owner:
                state[id(phi_owner[id(inst)])] = inst
            elif isinstance(inst, Load):
                alloca = alloca_ids.get(id(inst.pointer))
                if alloca is not None:
                    inst.replace_all_uses_with(state[id(alloca)])
            elif isinstance(inst, Store):
                alloca = alloca_ids.get(id(inst.pointer))
                if alloca is not None:
                    state[id(alloca)] = inst.value
        for succ in block.successors():
            for phi in succ.phis():
                owner = phi_owner.get(id(phi))
                if owner is None:
                    continue
                if not any(pred is block for _, pred in phi.incoming()):
                    phi.add_incoming(state[id(owner)], block)
        for child in dom.children.get(id(block), []):
            stack.append((child, state))


def _prune_dead_phis(fn: Function) -> None:
    """Drop dead phis, including cycles of phis only feeding each other."""
    all_phis: list[Phi] = []
    for block in fn.blocks:
        all_phis.extend(block.phis())
    phi_ids = {id(p) for p in all_phis}
    # A phi is live iff some non-phi user (transitively) needs it.
    live: set[int] = set()
    worklist: list[Phi] = []
    for phi in all_phis:
        if any(not isinstance(u, Phi) or id(u) not in phi_ids for u in phi.users()):
            live.add(id(phi))
            worklist.append(phi)
    while worklist:
        phi = worklist.pop()
        for value, _ in phi.incoming():
            if isinstance(value, Phi) and id(value) in phi_ids and id(value) not in live:
                live.add(id(value))
                worklist.append(value)
    for phi in all_phis:
        if id(phi) not in live:
            phi.erase_from_parent()
    # Collapse trivial phis (single distinct incoming value).
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for phi in list(block.phis()):
                values = {id(v) for v, _ in phi.incoming() if v is not phi}
                if len(values) == 1:
                    only = next(v for v, _ in phi.incoming() if v is not phi)
                    phi.replace_all_uses_with(only)
                    phi.erase_from_parent()
                    changed = True


class Mem2RegPass:
    """Object-style wrapper used by the pipeline driver."""

    name = "mem2reg"

    def run(self, module: Module) -> bool:
        return promote_allocas_module(module) > 0
