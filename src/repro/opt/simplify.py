"""Clean-up passes: constant folding, DCE, and CFG simplification.

A small subset of LLVM's ``instcombine`` + ``simplifycfg`` + ``dce`` —
enough to keep frontend output tidy (no dead casts, folded literal
arithmetic, merged straight-line blocks) without disturbing loop shapes,
which the evaluation depends on.
"""

from __future__ import annotations

from ..analysis.cfg import remove_unreachable_blocks
from ..ir.instructions import (
    BinaryOp,
    Branch,
    Cast,
    CondBranch,
    ICmp,
    Instruction,
    Phi,
    Select,
)
from ..ir.module import Function, Module
from ..ir.types import IntType
from ..ir.values import ConstantInt, Value, wrap_int


def simplify_module(module: Module) -> bool:
    changed = False
    for fn in module.defined_functions():
        changed |= simplify_function(fn)
    return changed


def simplify_function(fn: Function) -> bool:
    """Iterate local simplifications to a fixpoint."""
    any_change = False
    while True:
        changed = False
        changed |= fold_constants(fn)
        changed |= eliminate_dead_code(fn)
        changed |= simplify_branches(fn)
        changed |= merge_straightline_blocks(fn)
        if not changed:
            return any_change
        any_change = True


def fold_constants(fn: Function) -> bool:
    changed = False
    for block in fn.blocks:
        for inst in list(block.instructions):
            folded = _fold(inst)
            if folded is not None:
                inst.replace_all_uses_with(folded)
                inst.erase_from_parent()
                changed = True
    return changed


def _fold(inst: Instruction) -> Value | None:
    if isinstance(inst, BinaryOp):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            return _fold_int_binary(inst.opcode, lhs, rhs, inst.type)
        # Algebraic identities.
        if isinstance(rhs, ConstantInt) and rhs.value == 0 and inst.opcode in (
            "add",
            "sub",
            "or",
            "xor",
            "shl",
            "ashr",
        ):
            return lhs
        if isinstance(lhs, ConstantInt) and lhs.value == 0 and inst.opcode == "add":
            return rhs
        if isinstance(rhs, ConstantInt) and rhs.value == 1 and inst.opcode in (
            "mul",
            "sdiv",
        ):
            return lhs
        if isinstance(lhs, ConstantInt) and lhs.value == 1 and inst.opcode == "mul":
            return rhs
    elif isinstance(inst, ICmp):
        # icmp ne (zext i1 %x), 0  ->  %x   (the canonical condition chain)
        if (
            inst.predicate == "ne"
            and isinstance(inst.rhs, ConstantInt)
            and inst.rhs.value == 0
            and isinstance(inst.lhs, Cast)
            and inst.lhs.opcode == "zext"
            and inst.lhs.value.type == IntType(1)
        ):
            return inst.lhs.value
        if isinstance(inst.lhs, ConstantInt) and isinstance(inst.rhs, ConstantInt):
            a, b = inst.lhs.value, inst.rhs.value
            outcome = {
                "eq": a == b,
                "ne": a != b,
                "slt": a < b,
                "sle": a <= b,
                "sgt": a > b,
                "sge": a >= b,
                "ult": a < b,
                "ule": a <= b,
                "ugt": a > b,
                "uge": a >= b,
            }[inst.predicate]
            return ConstantInt(IntType(1), int(outcome))
    elif isinstance(inst, Cast):
        value = inst.value
        if isinstance(value, ConstantInt) and inst.type.is_integer():
            if inst.opcode in ("sext", "trunc"):
                return ConstantInt(inst.type, value.value)
            if inst.opcode == "zext":
                from_width = value.type.width
                return ConstantInt(inst.type, value.value & ((1 << from_width) - 1))
        if inst.opcode == "bitcast" and inst.type == value.type:
            return value
    elif isinstance(inst, Select):
        if isinstance(inst.condition, ConstantInt):
            return inst.true_value if inst.condition.value else inst.false_value
        if inst.true_value is inst.false_value:
            return inst.true_value
    return None


def _fold_int_binary(
    opcode: str, lhs: ConstantInt, rhs: ConstantInt, ty
) -> ConstantInt | None:
    a, b = lhs.value, rhs.value
    if opcode == "add":
        raw = a + b
    elif opcode == "sub":
        raw = a - b
    elif opcode == "mul":
        raw = a * b
    elif opcode == "sdiv":
        if b == 0:
            return None
        raw = int(a / b)
    elif opcode == "srem":
        if b == 0:
            return None
        raw = a - int(a / b) * b
    elif opcode == "and":
        raw = a & b
    elif opcode == "or":
        raw = a | b
    elif opcode == "xor":
        raw = a ^ b
    elif opcode == "shl":
        raw = a << (b % ty.width)
    elif opcode == "ashr":
        raw = a >> (b % ty.width)
    elif opcode == "lshr":
        raw = (a & ((1 << ty.width) - 1)) >> (b % ty.width)
    else:
        return None
    return ConstantInt(ty, wrap_int(raw, ty))


def eliminate_dead_code(fn: Function) -> bool:
    """Remove unused side-effect-free instructions (reverse order)."""
    changed = False
    again = True
    while again:
        again = False
        for block in fn.blocks:
            for inst in reversed(list(block.instructions)):
                if inst.has_side_effects() or inst.may_read_memory():
                    continue
                if isinstance(inst, Phi):
                    continue  # handled by mem2reg's phi pruning
                if not inst.is_used():
                    inst.erase_from_parent()
                    changed = True
                    again = True
    return changed


def simplify_branches(fn: Function) -> bool:
    """Turn cond_br on a constant into an unconditional branch."""
    changed = False
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, CondBranch) and isinstance(term.condition, ConstantInt):
            taken = term.true_block if term.condition.value else term.false_block
            dead = term.false_block if term.condition.value else term.true_block
            if dead is not taken:
                for phi in dead.phis():
                    phi.remove_incoming(block)
            term.erase_from_parent()
            block.append(Branch(taken))
            changed = True
    if changed:
        remove_unreachable_blocks(fn)
    return changed


def merge_straightline_blocks(fn: Function) -> bool:
    """Merge B into A when A->B is the only edge in and out.

    Skips loop headers' shapes implicitly: a header has two predecessors so
    it is never merged into its pre-header.
    """
    changed = False
    for block in list(fn.blocks):
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        succ = term.target
        if succ is block or succ is fn.entry:
            continue
        preds = succ.predecessors()
        if len(preds) != 1 or preds[0] is not block:
            continue
        if list(succ.phis()):
            # Single-predecessor phis are trivial; collapse them first.
            for phi in list(succ.phis()):
                value = phi.incoming_value_for(block)
                phi.replace_all_uses_with(value)
                phi.erase_from_parent()
        term.erase_from_parent()
        for inst in list(succ.instructions):
            succ.instructions.remove(inst)
            inst.parent = block
            block.instructions.append(inst)
        # Successor phis must now see `block` as the predecessor.
        new_term = block.terminator
        if new_term is not None:
            for next_succ in new_term.successors():
                for phi in next_succ.phis():
                    for i in range(1, len(phi.operands), 2):
                        if phi.operands[i] is succ:
                            phi.set_operand(i, block)
        succ.remove_from_parent()
        changed = True
    return changed
