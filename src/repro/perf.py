"""Lightweight performance instrumentation for the NOELLE layer.

Named counters and timers with near-zero overhead, threaded through the
expensive paths of the abstraction layer (points-to solving, PDG shard
construction, alias-query memoization, transform pipelines) and the
execution engine (``engine.compiles``, the ``engine.compile`` timer,
``engine.cache_hits``, ``engine.invalidations``, and the
``engine.blocks_compiled`` / ``engine.blocks_reference`` split showing
which engine actually executed each run's blocks), plus the artifact
cache (``cache.hits`` / ``cache.misses`` for content-addressed module
lookups, ``cache.bytes_read`` / ``cache.bytes_written``,
``cache.pdg_shards_hydrated`` / ``cache.engine_plans_hydrated``,
``cache.evictions`` / ``cache.poisoned``, and the
``cache.hydrate_module`` / ``cache.hydrate_pdg`` / ``engine.hydrate`` /
``cache.publish`` timers), plus the symbolic dependence-test engine
(``deptest.pairs_tested`` with its
``deptest.proven_independent`` / ``deptest.proven_dependent`` /
``deptest.unknown`` verdict split, ``deptest.pdg_pairs_pruned`` /
``deptest.pdg_edges_pruned`` for PDG memory edges removed under
``NOELLE_DEPTEST=1``, ``deptest.carried_disproved`` for loop-carried
classifications refuted by a proven distance, and the
``deptest.query`` timer around carried-dependence queries).  Two ways
to see the numbers:

* set ``NOELLE_STATS=1`` in the environment — a table is printed to
  stderr when the process exits;
* pass ``--stats`` to the ``repro-noelle`` CLI — the table is printed
  after the command finishes.

Counters are always live (they are plain integer increments and several
tests assert on them, e.g. that per-function PDG invalidation rebuilds
only the mutated shard).  Timers are also always live; they only wrap
coarse-grained units (a whole shard build, a whole points-to solve), so
the two ``perf_counter`` calls per measurement are noise.
"""

from __future__ import annotations

import atexit
import os
import sys
import time
from contextlib import contextmanager
from typing import Iterator, TextIO


class PerfStats:
    """A registry of named counters and accumulated timers."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        #: name -> [calls, total_seconds]
        self.timers: dict[str, list[float]] = {}

    # -- counters ---------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- timers -----------------------------------------------------------------------
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            entry = self.timers.get(name)
            if entry is None:
                self.timers[name] = [1, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed

    def total_seconds(self, name: str) -> float:
        entry = self.timers.get(name)
        return entry[1] if entry is not None else 0.0

    # -- lifecycle ---------------------------------------------------------------------
    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()

    def snapshot(self) -> dict[str, int]:
        """A copy of the counters (for before/after assertions in tests)."""
        return dict(self.counters)

    # -- reporting ---------------------------------------------------------------------
    def report(self, stream: TextIO | None = None) -> None:
        stream = stream if stream is not None else sys.stderr
        if not self.counters and not self.timers:
            return
        print("\n=== NOELLE perf stats ===", file=stream)
        if self.timers:
            width = max(len(n) for n in self.timers)
            print(f"{'timer'.ljust(width)}  {'calls':>8s}  {'total':>10s}",
                  file=stream)
            for name in sorted(self.timers):
                calls, total = self.timers[name]
                print(f"{name.ljust(width)}  {int(calls):8d}  {total:9.4f}s",
                      file=stream)
        if self.counters:
            width = max(len(n) for n in self.counters)
            print(f"{'counter'.ljust(width)}  {'value':>12s}", file=stream)
            for name in sorted(self.counters):
                print(f"{name.ljust(width)}  {self.counters[name]:12d}",
                      file=stream)


#: The process-wide stats registry every subsystem reports into.
STATS = PerfStats()


def stats_enabled() -> bool:
    """True when the user asked for a stats report (``NOELLE_STATS=1``)."""
    return os.environ.get("NOELLE_STATS", "") not in ("", "0")


if stats_enabled():  # pragma: no cover - exercised via subprocess in CI
    atexit.register(STATS.report)
