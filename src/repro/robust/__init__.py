"""repro.robust — transactional pass execution, fault injection, crash bundles.

Only the stdlib-only halves (``faults``, ``diagnostics``) are imported
eagerly: the IR verifier and the alias analyses import this package, so
pulling in ``passmanager`` (which imports ``repro.ir``) at module scope
would be a circular import.  ``PassManager`` and friends are resolved
lazily on first attribute access.
"""

from . import faults
from .diagnostics import CrashBundle, EntryNotFoundError, TransformError
from .faults import (
    Budget,
    FaultPlan,
    InjectedFault,
    PassDeadlineExceeded,
    checkpoint,
    enabled_in_env,
)

_LAZY = ("PassManager", "PassResult", "PASS_BUILDERS", "PASS_ALIASES",
         "build_pass", "DEFAULT_DEADLINE_S")

__all__ = [
    "faults",
    "Budget",
    "CrashBundle",
    "EntryNotFoundError",
    "FaultPlan",
    "InjectedFault",
    "PassDeadlineExceeded",
    "TransformError",
    "checkpoint",
    "enabled_in_env",
    *_LAZY,
]


def __getattr__(name):
    if name in _LAZY:
        from . import passmanager

        return getattr(passmanager, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
