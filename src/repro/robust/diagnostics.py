"""Structured failure records and crash bundles.

When a transaction rolls back, the pass manager captures everything a
developer needs to replay the failure offline — the same philosophy as
MLIR's crash reproducers: the pre-pass IR, the pass that died, a
structured error record, and the fault-injection spec (so seeded CI
failures are one command away from a local repro).

This module is stdlib-only on purpose; see ``faults.py`` for why the
``repro.robust`` package must not import the rest of the repository at
module scope.
"""

from __future__ import annotations

import json
import re
import traceback
from pathlib import Path


class EntryNotFoundError(LookupError):
    """``noelle-bin`` was asked to run an entry point the module lacks."""

    def __init__(self, entry: str, available: list[str]):
        names = ", ".join(f"@{name}" for name in available) or "<none>"
        super().__init__(
            f"no defined function @{entry} to run; "
            f"available entry points: {names}"
        )
        self.entry = entry
        self.available = list(available)


class TransformError:
    """Structured record of one failed (and rolled-back) transaction."""

    def __init__(
        self,
        pass_name: str,
        phase: str,
        kind: str,
        message: str,
        traceback_text: str = "",
        fault: str | None = None,
        seconds: float = 0.0,
    ):
        self.pass_name = pass_name
        #: Which transaction step failed: "snapshot" | "run" | "verify".
        self.phase = phase
        #: Exception class name (e.g. "InjectedFault", "VerificationError").
        self.kind = kind
        self.message = message
        self.traceback = traceback_text
        #: The armed fault plan's spec (injection seed), if any was armed.
        self.fault = fault
        self.seconds = seconds

    @classmethod
    def from_exception(
        cls,
        pass_name: str,
        phase: str,
        error: BaseException,
        fault: str | None = None,
        seconds: float = 0.0,
    ) -> "TransformError":
        text = "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        )
        return cls(
            pass_name,
            phase,
            type(error).__name__,
            str(error),
            traceback_text=text,
            fault=fault,
            seconds=seconds,
        )

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "phase": self.phase,
            "kind": self.kind,
            "message": self.message,
            "fault": self.fault,
            "seconds": self.seconds,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TransformError":
        return cls(
            data["pass"],
            data["phase"],
            data["kind"],
            data["message"],
            traceback_text=data.get("traceback", ""),
            fault=data.get("fault"),
            seconds=data.get("seconds", 0.0),
        )

    def __str__(self) -> str:
        return (
            f"pass {self.pass_name!r} failed during {self.phase}: "
            f"{self.kind}: {self.message}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TransformError {self}>"


#: Bundle directory layout.
MODULE_FILE = "module.ir"
REPORT_FILE = "report.json"


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", name) or "pass"


class CrashBundle:
    """Everything needed to reproduce one rolled-back transaction offline."""

    def __init__(
        self,
        index: int,
        pass_name: str,
        ir_text: str,
        error: TransformError,
        diagnostics: list[dict] | None = None,
    ):
        self.index = index
        self.pass_name = pass_name
        #: The pre-pass module, exactly as it was restored (byte-identical).
        self.ir_text = ir_text
        self.error = error
        #: Checker findings (dict form) gathered before the rollback; an
        #: empty list when no checkers ran — the key is always present in
        #: ``report.json`` so the bundle schema is stable.
        self.diagnostics = list(diagnostics) if diagnostics else []
        #: Filled in by :meth:`write`.
        self.path: Path | None = None

    def write(self, crash_dir) -> Path:
        """Persist as ``<crash_dir>/<index>-<pass>/{module.ir,report.json}``."""
        directory = Path(crash_dir) / f"{self.index:03d}-{_slug(self.pass_name)}"
        directory.mkdir(parents=True, exist_ok=True)
        (directory / MODULE_FILE).write_text(self.ir_text)
        report = {
            "index": self.index,
            "pass": self.pass_name,
            "module_ir": MODULE_FILE,
            "error": self.error.to_dict(),
            "diagnostics": self.diagnostics,
        }
        (directory / REPORT_FILE).write_text(json.dumps(report, indent=2) + "\n")
        self.path = directory
        return directory

    @classmethod
    def read(cls, directory) -> "CrashBundle":
        """Load a bundle back (the offline-repro side of :meth:`write`)."""
        directory = Path(directory)
        report = json.loads((directory / REPORT_FILE).read_text())
        bundle = cls(
            report["index"],
            report["pass"],
            (directory / report["module_ir"]).read_text(),
            TransformError.from_dict(report["error"]),
            diagnostics=report.get("diagnostics", []),
        )
        bundle.path = directory
        return bundle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CrashBundle #{self.index} {self.pass_name}: {self.error.kind}>"
