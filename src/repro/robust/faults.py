"""Deterministic fault injection and cooperative budgets.

The transactional :class:`~repro.robust.passmanager.PassManager` needs two
cooperative interruption mechanisms, both of which live here because they
share the same instrumented chokepoints:

* **Fault injection** — a seeded :class:`FaultPlan` arms exactly one
  deterministic failure ("raise at the Nth alias query / Nth verify /
  Nth snapshot").  Tests use plans to prove that after *any* injected
  failure the rolled-back module is byte-identical to its pre-pass
  snapshot.  The ``NOELLE_FAULTS`` environment variable arms a plan for
  every pass manager that was not given one explicitly, so the whole
  test suite can run under a fault-injection seed matrix in CI.
* **Wall-clock budgets** — a :class:`Budget` turns the same chokepoints
  into cooperative preemption points, so a pass stuck in analysis work
  is interrupted at its next alias query instead of hanging the service.

Plans and budgets are *armed* only while a transaction runs (see
:func:`armed`); outside a transaction every chokepoint is a cheap no-op,
which keeps ``NOELLE_FAULTS`` from perturbing code that never routes
through the pass manager (the figure experiments, direct xform tests).

This module must stay dependency-free (stdlib only): the IR verifier and
the alias analyses import it, so importing anything from ``repro`` here
would create a cycle.
"""

from __future__ import annotations

import contextlib
import os
import random
import time

#: Service-layer chokepoints, visited by the ``repro-noelle serve``
#: worker while it executes one request (see ``repro.serve.session``):
#:
#: * ``serve_exec``  — the fault surfaces as a structured request error;
#: * ``serve_kill``  — the worker process exits abruptly (``os._exit``),
#:   simulating an OOM kill / SIGKILL mid-request, so the supervisor's
#:   restart path is what the seed exercises;
#: * ``serve_flaky`` — the fault surfaces as a *transient* error the
#:   daemon's bounded-retry policy is allowed to retry.
SERVE_SITES = ("serve_exec", "serve_kill", "serve_flaky")

#: The instrumented chokepoints, in rough order of how often they fire.
#: (``FaultPlan.from_seed`` intentionally draws from its own hard-coded
#: tuple, so extending SITES never remaps existing CI seeds.)
SITES = ("alias_query", "verify", "snapshot") + SERVE_SITES

#: Environment variable holding a fault spec (see :meth:`FaultPlan.from_spec`).
ENV_VAR = "NOELLE_FAULTS"


class InjectedFault(RuntimeError):
    """A failure raised on purpose by an armed :class:`FaultPlan`."""

    def __init__(self, site: str, ordinal: int, plan: "FaultPlan"):
        super().__init__(
            f"injected fault at {site} #{ordinal} (plan {plan.describe()})"
        )
        self.site = site
        self.ordinal = ordinal
        self.plan = plan


class PassDeadlineExceeded(RuntimeError):
    """The wall-clock budget of the running transaction ran out."""


class Budget:
    """Cooperative wall-clock budget for one transaction."""

    def __init__(self, deadline_s: float | None, clock=time.monotonic):
        #: Seconds the transaction may run; None disables the deadline.
        self.deadline_s = deadline_s
        self._clock = clock
        self._started = clock()

    def elapsed(self) -> float:
        return self._clock() - self._started

    def expired(self) -> bool:
        return self.deadline_s is not None and self.elapsed() > self.deadline_s

    def check(self) -> None:
        if self.expired():
            raise PassDeadlineExceeded(
                f"pass exceeded its {self.deadline_s:g}s wall-clock budget "
                f"({self.elapsed():.3f}s elapsed)"
            )


class FaultPlan:
    """One deterministic injected failure: raise at the Nth visit of a site.

    A plan fires at most once per process (``fired``), so a seeded plan
    degrades exactly one transaction of whatever pipeline consumes it —
    the graceful-degradation property the robustness tests assert.
    """

    def __init__(self, site: str, trigger: int, seed: int | None = None):
        if site not in SITES:
            raise ValueError(
                f"unknown fault site {site!r}; expected one of {SITES}"
            )
        if trigger < 1:
            raise ValueError(f"fault trigger must be >= 1, got {trigger}")
        self.site = site
        #: Fire at the trigger-th visit of ``site`` (1-based).
        self.trigger = trigger
        self.seed = seed
        self.counts: dict[str, int] = {s: 0 for s in SITES}
        self.fired = False
        self.fired_at: tuple[str, int] | None = None

    @classmethod
    def from_seed(cls, seed: int) -> "FaultPlan":
        """Derive a (site, trigger) pair deterministically from ``seed``."""
        rng = random.Random(seed)
        site = rng.choice(
            ("alias_query", "alias_query", "alias_query", "verify", "snapshot")
        )
        if site == "alias_query":
            trigger = rng.randint(1, 64)
        else:
            trigger = rng.randint(1, 2)
        return cls(site, trigger, seed=seed)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``"<site>:<N>"`` or ``"seed:<N>"`` (the env-var syntax)."""
        text = spec.strip()
        kind, sep, count = text.partition(":")
        if not sep or not count.strip().lstrip("-").isdigit():
            raise ValueError(
                f"bad fault spec {spec!r}; expected 'seed:<N>' or "
                f"'<site>:<N>' with site in {SITES}"
            )
        number = int(count)
        if kind == "seed":
            return cls.from_seed(number)
        return cls(kind, number)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """A fresh plan from ``NOELLE_FAULTS``, or None when unset."""
        spec = (environ if environ is not None else os.environ).get(ENV_VAR, "")
        spec = spec.strip()
        return cls.from_spec(spec) if spec else None

    def describe(self) -> str:
        base = f"{self.site}:{self.trigger}"
        if self.seed is not None:
            return f"seed:{self.seed} ({base})"
        return base

    def note(self, site: str) -> None:
        """Count a visit of ``site``; raise when the trigger is reached."""
        self.counts[site] = self.counts.get(site, 0) + 1
        if (
            not self.fired
            and site == self.site
            and self.counts[site] == self.trigger
        ):
            self.fired = True
            self.fired_at = (site, self.counts[site])
            raise InjectedFault(site, self.counts[site], self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else "armed"
        return f"<FaultPlan {self.describe()} [{state}]>"


def enabled_in_env(environ=None) -> bool:
    """True when ``NOELLE_FAULTS`` is set (tests relax effect assertions)."""
    spec = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    return bool(spec.strip())


# -- process-wide arming -------------------------------------------------------

_active_plan: FaultPlan | None = None
_active_budget: Budget | None = None
_suspend_depth = 0


@contextlib.contextmanager
def armed(plan: FaultPlan | None, budget: Budget | None = None):
    """Arm ``plan``/``budget`` for the duration of one transaction."""
    global _active_plan, _active_budget
    previous = (_active_plan, _active_budget)
    _active_plan, _active_budget = plan, budget
    try:
        yield
    finally:
        _active_plan, _active_budget = previous


@contextlib.contextmanager
def suspended():
    """Disarm everything temporarily (rollback and bundle writing must
    not be re-interrupted by the very fault being handled)."""
    global _suspend_depth
    _suspend_depth += 1
    try:
        yield
    finally:
        _suspend_depth -= 1


def checkpoint(site: str) -> None:
    """Hook called by instrumented sites; a cheap no-op unless armed."""
    if _suspend_depth:
        return
    budget = _active_budget
    if budget is not None:
        budget.check()
    plan = _active_plan
    if plan is not None:
        plan.note(site)


def active_plan() -> FaultPlan | None:
    return _active_plan
