"""The transactional pass manager.

Every transform entry point in the repository (``helix_pipeline``, the
``repro-noelle`` CLI, the regression harness) routes its passes through
:class:`PassManager`.  A pass runs as a checkpointed transaction:

1. **snapshot** — the module is serialized with the printer (the
   printer→parser round trip is identity, so the text is a faithful,
   byte-exact checkpoint) and all module/function/instruction metadata
   is captured positionally;
2. **run** — the pass body executes under a cooperative wall-clock
   deadline (checked at every instrumented chokepoint and once more when
   the body returns) and an interpreter step budget (any interpreter the
   pass spins up is capped, reusing ``StepLimitExceeded``);
3. **verify** — ``verify_module`` must accept the transformed module.

Any exception, deadline overrun, step-budget exhaustion, verifier
rejection, or injected fault rolls the module back *in place* to the
byte-identical snapshot, drops every cached analysis of the attached
:class:`~repro.core.noelle.Noelle` facade, records a
:class:`~repro.robust.diagnostics.CrashBundle` (written to ``crash_dir``
when one is configured), and the manager moves on to the next pass —
graceful degradation instead of a stack trace and a corrupt module.
"""

from __future__ import annotations

import copy

from ..interp import interp as _interp
from ..interp.engine import invalidate_module
from ..ir import parse_module, print_module, verify_module
from ..perf import STATS
from . import faults
from .diagnostics import CrashBundle, TransformError
from .faults import Budget, FaultPlan

#: Default wall-clock budget of one transaction (seconds).  Generous for
#: the simulated workloads; the point is bounding a wedged pass, not
#: policing normal variance.
DEFAULT_DEADLINE_S = 60.0


class _Snapshot:
    """A byte-exact checkpoint: IR text plus positionally-keyed metadata
    (the printer intentionally does not serialize metadata)."""

    __slots__ = ("text", "module_metadata", "function_metadata")

    def __init__(self, text, module_metadata, function_metadata):
        self.text = text
        self.module_metadata = module_metadata
        #: One (fn_metadata, [inst_metadata...]) pair per function, in
        #: module order; instruction entries follow block order.
        self.function_metadata = function_metadata


class PassResult:
    """What happened to one transaction."""

    __slots__ = ("name", "status", "value", "error", "seconds", "bundle",
                 "diagnostics")

    def __init__(self, name: str):
        self.name = name
        self.status = "ok"
        #: The pass body's return value (None when rolled back).
        self.value = None
        self.error: TransformError | None = None
        self.seconds = 0.0
        #: Path of the written crash bundle, when crash_dir was set.
        self.bundle = None
        #: Checker findings from the post-pass gate (empty when the gate
        #: is off or nothing was reported).
        self.diagnostics = []

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def rolled_back(self) -> bool:
        return self.status == "rolled_back"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        detail = f": {self.error.kind}" if self.error else ""
        return f"<PassResult {self.name} {self.status}{detail}>"


class PassManager:
    """Runs passes as rollback-protected transactions over one module."""

    def __init__(
        self,
        noelle=None,
        crash_dir=None,
        deadline_s: float | None = DEFAULT_DEADLINE_S,
        step_budget: int | None = None,
        fault_plan: "FaultPlan | str | None" = "env",
        strict: bool = False,
        checks: bool | None = None,
    ):
        self.noelle = noelle
        self.crash_dir = crash_dir
        self.deadline_s = deadline_s
        self.step_budget = step_budget
        #: Post-pass checker gate; None defers to NOELLE_CHECKS.
        if checks is None:
            from ..checks.base import checks_enabled

            checks = checks_enabled()
        self.checks = checks
        #: The default "env" reads NOELLE_FAULTS; pass an explicit plan
        #: for deterministic tests, or None to disable injection outright.
        if fault_plan == "env":
            fault_plan = FaultPlan.from_env()
        self.fault_plan = fault_plan
        #: When True, failures still roll back and bundle, then re-raise
        #: (fail-stop callers keep their diagnostics).
        self.strict = strict
        self.results: list[PassResult] = []
        self.bundles: list[CrashBundle] = []

    @property
    def module(self):
        if self.noelle is None:
            raise RuntimeError("PassManager is not bound to a Noelle facade")
        return self.noelle.module

    def rebind(self, noelle) -> None:
        """Point the manager at a fresh facade over the *same* module."""
        if self.noelle is not None and noelle.module is not self.noelle.module:
            raise ValueError("rebind() must keep the same module")
        self.noelle = noelle

    # -- transactions --------------------------------------------------------------

    def run(self, name: str, body) -> PassResult:
        """Run ``body(noelle)`` as one transaction; never raises on pass
        failure unless the manager is strict."""
        result = PassResult(name)
        budget = Budget(self.deadline_s)
        snapshot: _Snapshot | None = None
        phase = "snapshot"
        previous_cap = _interp.set_step_budget(self.step_budget)
        try:
            with faults.armed(self.fault_plan, budget):
                snapshot = self._snapshot()
                phase = "run"
                result.value = body(self.noelle)
                budget.check()
                phase = "verify"
                verify_module(self.module)
                if self.checks:
                    phase = "check"
                    self._check_gate(result)
        except Exception as error:
            self._rollback(result, snapshot, error, phase, budget)
            if self.strict:
                raise
        else:
            STATS.count("passmanager.ok")
        finally:
            _interp.set_step_budget(previous_cap)
            result.seconds = budget.elapsed()
            self.results.append(result)
        return result

    def _check_gate(self, result: PassResult) -> None:
        """Run the checker suite on the transformed module; ERROR findings
        fail the transaction (→ rollback) like a verifier rejection."""
        from ..checks.base import CheckFailure, run_checkers
        from ..checks.diagnostics import has_errors

        result.diagnostics = run_checkers(self.module, self.noelle)
        if has_errors(result.diagnostics):
            raise CheckFailure(result.diagnostics)

    def run_registered(self, name: str, **options) -> PassResult:
        """Run a pass from :data:`PASS_BUILDERS` by name (transactional)."""
        canonical, body = build_pass(name, **options)
        return self.run(canonical, body)

    # -- snapshot / restore --------------------------------------------------------

    def _snapshot(self) -> _Snapshot:
        faults.checkpoint("snapshot")
        with STATS.timer("passmanager.snapshot"):
            module = self.module
            text = print_module(module)
            function_metadata = []
            for fn in module.functions.values():
                inst_md = []
                for block in fn.blocks:
                    for inst in block.instructions:
                        inst_md.append(dict(inst.metadata) if inst.metadata else None)
                function_metadata.append(
                    (dict(fn.metadata) if fn.metadata else None, inst_md)
                )
            return _Snapshot(
                text, copy.deepcopy(module.metadata), function_metadata
            )

    def _restore(self, snapshot: _Snapshot) -> None:
        """Swap the snapshot back into the *same* Module object, so every
        caller holding a reference sees the rolled-back program."""
        module = self.module
        fresh = parse_module(snapshot.text, module.name)
        module.functions = fresh.functions
        module.globals = fresh.globals
        module.structs = fresh.structs
        module.metadata = copy.deepcopy(snapshot.module_metadata)
        for fn in module.functions.values():
            fn.parent = module
        for fn, (fn_md, inst_md) in zip(
            module.functions.values(), snapshot.function_metadata
        ):
            fn.metadata = dict(fn_md) if fn_md else {}
            index = 0
            for block in fn.blocks:
                for inst in block.instructions:
                    md = inst_md[index]
                    index += 1
                    inst.metadata = dict(md) if md else {}
        restored = print_module(module)
        if restored != snapshot.text:
            raise RuntimeError(
                f"rollback of module {module.name!r} is not byte-identical "
                "(printer/parser round-trip drift)"
            )
        # Every Function object was just replaced: compiled code keyed to
        # the old bodies must never run again.  ``_rollback`` also does a
        # full ``noelle.invalidate()``, but restore must be safe on its
        # own — a rolled-back module never executes stale code.
        invalidate_module(module)

    def _rollback(self, result, snapshot, error, phase, budget) -> None:
        with faults.suspended():
            if snapshot is None:
                # The fault fired while *taking* the snapshot: the module
                # is untouched; capture it now for the bundle.
                snapshot = self._snapshot()
            else:
                self._restore(snapshot)
            verify_module(self.module)  # the survivor must be sound
            self.noelle.invalidate()  # caches reference dead instructions
            result.status = "rolled_back"
            result.error = TransformError.from_exception(
                result.name,
                phase,
                error,
                fault=self.fault_plan.describe() if self.fault_plan else None,
                seconds=budget.elapsed(),
            )
            bundle = CrashBundle(
                len(self.bundles), result.name, snapshot.text, result.error,
                diagnostics=[d.to_dict() for d in result.diagnostics],
            )
            if self.crash_dir is not None:
                result.bundle = bundle.write(self.crash_dir)
            self.bundles.append(bundle)
            STATS.count("passmanager.rollbacks")

    # -- reporting -----------------------------------------------------------------

    def rolled_back(self) -> list[PassResult]:
        return [r for r in self.results if r.rolled_back]


# -- the pass registry -------------------------------------------------------------
#
# Builders are factories: options in, a ``body(noelle)`` callable out.
# Imports happen inside each builder so loading the pass manager never
# drags in every transform (and never cycles through repro.core).

def _doall(num_cores=8, minimum_hotness=0.0, only_loop_id=None, max_rounds=10):
    from ..xforms.doall import DOALL

    return lambda noelle: DOALL(noelle, num_cores).run(
        minimum_hotness, max_rounds=max_rounds, only_loop_id=only_loop_id
    )


def _dswp(num_stages=4, minimum_hotness=0.0, only_loop_id=None, max_rounds=10):
    from ..xforms.dswp import DSWP

    return lambda noelle: DSWP(noelle, num_stages).run(
        minimum_hotness, max_rounds=max_rounds, only_loop_id=only_loop_id
    )


def _helix(num_cores=8, minimum_hotness=0.0, only_loop_id=None, max_rounds=10):
    from ..xforms.helix import HELIX

    return lambda noelle: HELIX(noelle, num_cores).run(
        minimum_hotness, max_rounds=max_rounds, only_loop_id=only_loop_id
    )


def _licm():
    from ..xforms.licm import LICM

    return lambda noelle: LICM(noelle).run()


def _perspective(default_cores=12, max_rounds=5):
    from ..xforms.perspective import Perspective

    return lambda noelle: Perspective(noelle, default_cores).run(max_rounds)


def _dead(roots=None):
    from ..xforms.dead import DeadFunctionEliminator

    return lambda noelle: DeadFunctionEliminator(noelle, roots).run()


def _coos(budget_cycles=400):
    from ..xforms.coos import CompilerTiming

    return lambda noelle: CompilerTiming(noelle, budget_cycles).run()


def _prvjeeves(hotness_threshold=0.01):
    from ..xforms.prvjeeves import PRVJeeves

    return lambda noelle: PRVJeeves(noelle, hotness_threshold).run()


def _timesqueezer():
    from ..xforms.timesqueezer import TimeSqueezer

    return lambda noelle: TimeSqueezer(noelle).run()


def _carat():
    from ..xforms.carat import CARAT

    return lambda noelle: CARAT(noelle).run()


def _rm_lc_dependences():
    from ..tools.rm_lc_dependences import remove_loop_carried_dependences

    return remove_loop_carried_dependences


PASS_BUILDERS = {
    "doall": _doall,
    "dswp": _dswp,
    "helix": _helix,
    "licm": _licm,
    "perspective": _perspective,
    "dead": _dead,
    "coos": _coos,
    "prvjeeves": _prvjeeves,
    "timesqueezer": _timesqueezer,
    "carat": _carat,
    "rm-lc-dependences": _rm_lc_dependences,
}

#: Short names the harness and CLI historically use.
PASS_ALIASES = {
    "prvj": "prvjeeves",
    "time": "timesqueezer",
    "time-squeezer": "timesqueezer",
    "rm_lc_dependences": "rm-lc-dependences",
}


def build_pass(name: str, **options):
    """Resolve ``name`` to ``(canonical_name, body)``; raises ValueError
    for unknown passes *before* any transaction starts."""
    canonical = PASS_ALIASES.get(name, name)
    builder = PASS_BUILDERS.get(canonical)
    if builder is None:
        raise ValueError(f"unknown tool {name!r}")
    return canonical, builder(**options)
