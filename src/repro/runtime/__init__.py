"""repro.runtime — the simulated multicore machine and parallel runtime."""

from .machine import FORK_OVERHEAD, JOIN_OVERHEAD, ParallelExecution, ParallelMachine

__all__ = ["FORK_OVERHEAD", "JOIN_OVERHEAD", "ParallelExecution", "ParallelMachine"]
