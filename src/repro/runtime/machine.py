"""The simulated multicore machine.

This module is the repository's substitute for the paper's 12-core Haswell
server.  A :class:`ParallelMachine` executes a (possibly parallelized)
module and reports *wall-clock cycles* under a deterministic machine model:

* Each virtual core executes instructions with the interpreter's cost
  model (:data:`repro.interp.interp.INSTRUCTION_COSTS`).
* ``noelle_dispatch_doall`` runs every core's task and charges the maximum
  per-core cycle count plus fork/join overhead — DOALL's schedule.
* ``noelle_dispatch_helix`` executes iterations in order (preserving
  semantics) while recording, per iteration, the cycles spent inside and
  outside sequential segments; the HELIX schedule is then replayed by a
  discrete-event model where iteration *i*'s sequential segment must wait
  for iteration *i-1*'s signal (one core-to-core latency away) — the
  schedule of Campanoni et al. [HELIX, CGO'12].
* ``noelle_dispatch_dswp`` runs the pipeline stages to completion in
  topological order (unbounded queues preserve semantics) and charges the
  slowest stage plus per-value communication — DSWP's steady-state
  throughput model [Ottoni et al., MICRO'05].

Because the simulation is deterministic, the paper's confidence-interval
protocol collapses to single runs.
"""

from __future__ import annotations

from ..core.architecture import ArchitectureDescription
from ..interp.interp import Interpreter, MemoryTrap, _FunctionAddress
from ..ir.module import Module

#: One-time cost of waking a worker core (thread-pool hand-off).
FORK_OVERHEAD = 1500
#: Cost of joining one worker at the end of a parallel invocation.
JOIN_OVERHEAD = 300


class ParallelExecution:
    """Timing breakdown of one parallel region invocation."""

    def __init__(self, kind: str, num_cores: int):
        self.kind = kind
        self.num_cores = num_cores
        self.sequential_cycles = 0  # work as measured (sum over cores)
        self.parallel_cycles = 0  # modeled wall-clock of the region

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.kind} x{self.num_cores}: {self.sequential_cycles} -> "
            f"{self.parallel_cycles} cycles>"
        )


class ParallelMachine(Interpreter):
    """Interpreter with parallel-dispatch timing semantics."""

    def __init__(
        self,
        module: Module,
        architecture: ArchitectureDescription | None = None,
        num_cores: int | None = None,
        step_limit: int = 200_000_000,
        engine: str | None = None,
    ):
        super().__init__(module, step_limit=step_limit, engine=engine)
        self.architecture = architecture or ArchitectureDescription.haswell_like()
        #: Override of the core count; None uses the dispatch argument.
        self.num_cores_override = num_cores
        # Parallelized binaries read their core count from a global knob;
        # the override must be visible there too, or the reduction-combining
        # code would disagree with the dispatcher about the core count.
        if num_cores is not None:
            knob = module.globals.get("noelle.num_cores")
            if knob is not None:
                self.memory.write(self.globals[id(knob)], num_cores)
        self.executions: list[ParallelExecution] = []
        # HELIX bookkeeping (valid while a helix dispatch runs).
        self._helix_trace: list[dict[int, int]] | None = None
        self._helix_iter_costs: list[int] | None = None
        self._segment_stack: list[tuple[int, int]] = []
        self._iter_start_cycles = 0

    # -- dispatch ---------------------------------------------------------------------
    def _call_parallel_intrinsic(self, name: str, args: list[object]) -> object:
        if name == "noelle_dispatch_doall":
            return self._dispatch_doall(args)
        if name == "noelle_dispatch_dswp":
            return self._dispatch_dswp(args)
        if name == "noelle_dispatch_helix":
            return self._dispatch_helix(args)
        if name == "helix_seq_begin":
            self._segment_stack.append((int(args[0]), self.result.cycles))
            return None
        if name == "helix_seq_end":
            if self._segment_stack and self._helix_trace is not None:
                seg_id, start = self._segment_stack.pop()
                # Exclude the marker calls themselves from the segment.
                marker_cost = self.costs.get("call", 10) + 1
                span = max(0, self.result.cycles - start - marker_cost)
                self._helix_trace[-1][seg_id] = (
                    self._helix_trace[-1].get(seg_id, 0) + span
                )
            return None
        if name == "helix_iter_boundary":
            if self._helix_trace is not None:
                self._helix_iter_costs.append(
                    self.result.cycles - self._iter_start_cycles
                )
                self._iter_start_cycles = self.result.cycles
                self._helix_trace.append({})
            return None
        return super()._call_parallel_intrinsic(name, args)

    def _resolve_cores(self, requested: int) -> int:
        if self.num_cores_override is not None:
            return self.num_cores_override
        return min(requested, self.architecture.num_logical_cores)

    def _task_of(self, args: list[object]):
        task_fn = args[0]
        if not isinstance(task_fn, _FunctionAddress):
            raise MemoryTrap("dispatch of a non-function")
        return task_fn.fn

    # -- DOALL -----------------------------------------------------------------------
    def _dispatch_doall(self, args: list[object]) -> None:
        task = self._task_of(args)
        env_address = args[1]
        num_cores = self._resolve_cores(int(args[2]))
        execution = ParallelExecution("doall", num_cores)
        per_core: list[int] = []
        for core in range(num_cores):
            before = self.result.cycles
            self.call_function(task, [env_address, core, num_cores])
            per_core.append(self.result.cycles - before)
        total_work = sum(per_core)
        wall = max(per_core) if per_core else 0
        wall += FORK_OVERHEAD + JOIN_OVERHEAD * num_cores
        execution.sequential_cycles = total_work
        execution.parallel_cycles = wall
        # Charge the modeled wall time instead of the summed work.
        self.result.cycles += wall - total_work
        self.executions.append(execution)

    # -- DSWP -------------------------------------------------------------------------
    def _dispatch_dswp(self, args: list[object]) -> None:
        task = self._task_of(args)
        env_address = args[1]
        num_stages = int(args[2])
        execution = ParallelExecution("dswp", num_stages)
        per_stage: list[int] = []
        values_pushed_before = self._total_queued()
        pushed_per_stage: list[int] = []
        for stage in range(num_stages):
            before = self.result.cycles
            queued_before = self._total_queued()
            self.call_function(task, [env_address, stage, num_stages])
            per_stage.append(self.result.cycles - before)
            pushed_per_stage.append(max(0, self._total_queued() - queued_before))
        total_work = sum(per_stage)
        latency = self.architecture.default_latency
        # Steady-state pipeline: throughput bound by the slowest stage;
        # one pipeline-fill latency per stage boundary.
        wall = (max(per_stage) if per_stage else 0) + latency * max(
            0, num_stages - 1
        )
        # Per-value communication: each forwarded value pays bandwidth.
        communicated = sum(pushed_per_stage)
        bandwidth = self.architecture.default_bandwidth
        wall += int(communicated / bandwidth)
        wall += FORK_OVERHEAD + JOIN_OVERHEAD * num_stages
        execution.sequential_cycles = total_work
        execution.parallel_cycles = wall
        self.result.cycles += wall - total_work
        self.executions.append(execution)
        del values_pushed_before

    def _total_queued(self) -> int:
        # Queues drain as they are consumed; track cumulative pushes by
        # summing lengths (approximation: sampled before pops happen).
        return sum(len(q) for q in self._queues.values())

    # -- HELIX -----------------------------------------------------------------------
    def _dispatch_helix(self, args: list[object]) -> None:
        task = self._task_of(args)
        env_address = args[1]
        num_cores = self._resolve_cores(int(args[2]))
        execution = ParallelExecution("helix", num_cores)
        # Run all iterations in order on one virtual core (semantics),
        # recording per-iteration total and per-segment cycles.
        self._helix_trace = [{}]
        self._helix_iter_costs = []
        self._iter_start_cycles = self.result.cycles
        before = self.result.cycles
        self.call_function(task, [env_address, 0, 1])
        total_work = self.result.cycles - before
        iter_costs = self._helix_iter_costs
        seg_costs = self._helix_trace[: len(iter_costs)]
        self._helix_trace = None
        self._helix_iter_costs = None
        wall = self._helix_schedule(iter_costs, seg_costs, num_cores)
        wall += FORK_OVERHEAD + JOIN_OVERHEAD * num_cores
        execution.sequential_cycles = total_work
        execution.parallel_cycles = wall
        self.result.cycles += wall - total_work
        self.executions.append(execution)

    def _helix_schedule(
        self,
        iter_costs: list[int],
        seg_costs: list[dict[int, int]],
        num_cores: int,
    ) -> int:
        """Replay the HELIX schedule over the measured per-iteration costs.

        Iteration ``i`` runs on core ``i % N``.  Its parallel portion starts
        when the core frees up; each sequential segment additionally waits
        for the same segment of iteration ``i-1`` plus one signal latency.
        """
        latency = self.architecture.default_latency
        core_free = [0] * max(1, num_cores)
        segment_done: dict[int, int] = {}
        finish = 0
        for index, cost in enumerate(iter_costs):
            core = index % max(1, num_cores)
            segments = seg_costs[index] if index < len(seg_costs) else {}
            sequential = sum(segments.values())
            parallel = max(0, cost - sequential)
            clock = core_free[core]
            # Parallel half runs as soon as the core is free; split around
            # the segments pessimistically as parallel-then-sequential.
            clock += parallel
            for seg_id in sorted(segments):
                ready = segment_done.get(seg_id, 0)
                if ready:
                    ready += latency  # the signal must travel between cores
                clock = max(clock, ready)
                clock += segments[seg_id]
                segment_done[seg_id] = clock
            core_free[core] = clock
            finish = max(finish, clock)
        return finish
