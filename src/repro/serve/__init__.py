"""Compiler-as-a-service: the ``repro-noelle serve`` daemon.

The paper's thesis is that expensive abstractions (PDG, profiles, loop
forests) pay off when they are built once and amortized across many
tools; this package amortizes them across many *requests*.  A long-lived
stdlib-only daemon accepts compile/parallelize/run/check jobs over a
JSON-over-HTTP protocol and executes each one in a supervised pool of
worker processes that keep hot :class:`~repro.core.noelle.Noelle`
facades, PDG shards, and :class:`~repro.interp.engine.ExecutionEngine`
caches resident per session namespace.

Robustness is the headline, not an afterthought:

* **deadlines** — every request runs under a wall-clock deadline; a
  wedged worker is killed and replaced, and the client gets a
  structured ``DeadlineExceeded`` error instead of a hang;
* **supervision** — a worker that dies mid-request (crash, OOM kill,
  injected ``serve_kill`` fault) surfaces a structured error with a
  crash-bundle path, and a replacement worker takes over the slot;
* **retry** — transient failures are retried with bounded exponential
  backoff plus jitter;
* **graceful degradation** — a circuit breaker per (session, op) trips
  after repeated failures and downgrades instead of refusing service:
  compiled engine → reference walker, parallelize → sequential,
  checks → advisory.

Module map:

* :mod:`repro.serve.protocol`   — request/response schema, structured
  error records, exit codes shared with the CLI;
* :mod:`repro.serve.pool`       — supervised worker processes and the
  :func:`~repro.serve.pool.supervised_map` batch fan-out (also the
  hardened backend of ``run_corpus(jobs=N)``);
* :mod:`repro.serve.resilience` — retry/backoff policy and the circuit
  breaker;
* :mod:`repro.serve.session`    — the worker-side executor holding the
  warm per-session state;
* :mod:`repro.serve.daemon`     — the HTTP front end and supervisor.

Import sites stay lazy on purpose: pulling in the pool (used by the
testing harness) must not drag in the HTTP server, and vice versa.
"""

from __future__ import annotations

__all__ = ["create_server", "serve_forever"]


def create_server(*args, **kwargs):
    """Build a ready-to-run daemon (lazy import of the HTTP stack)."""
    from .daemon import create_server as _create_server

    return _create_server(*args, **kwargs)


def serve_forever(*args, **kwargs):
    """Run the daemon until shut down (lazy import of the HTTP stack)."""
    from .daemon import serve_forever as _serve_forever

    return _serve_forever(*args, **kwargs)
