"""The ``repro-noelle serve`` daemon: HTTP front end and supervisor.

A :class:`ThreadingHTTPServer` accepts JSON requests and hands each one
to the :class:`Supervisor`, which owns a fixed set of worker slots.
Sessions are routed to slots by a stable hash, so one session's
requests always land on the same worker and find its caches warm.

The supervision contract, end to end:

* a request runs under a wall-clock **deadline**; a worker that does
  not reply in time is killed and replaced, and the client receives a
  structured ``DeadlineExceeded`` error;
* a worker that **dies mid-request** (crash, OOM kill, injected
  ``serve_kill`` fault) is detected through its process sentinel, a
  crash bundle is written, a replacement takes over the slot, and the
  client receives a structured ``WorkerCrashed`` error — the daemon
  itself never goes down with a worker;
* **transient** failures (a worker dead at dispatch time, an injected
  ``serve_flaky`` fault) are retried with bounded exponential backoff
  plus jitter;
* repeated failures trip a per-(session, op) **circuit breaker** and
  later requests are served *degraded* (reference engine / sequential /
  advisory) until a half-open probe of the full path succeeds.

``GET /healthz`` and ``GET /stats`` surface liveness and the
:mod:`repro.perf` counters; ``POST /shutdown`` stops the daemon cleanly
(used by the CI smoke job to assert no orphan workers).
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..perf import STATS
from ..robust.diagnostics import CrashBundle, TransformError
from .pool import Worker, WorkerCrashed, WorkerTimeout, describe_exit
from .protocol import (
    DEGRADED_MODES,
    OPS,
    ProtocolError,
    error_record,
    service_error,
    status_for_error,
    validate_request,
)
from .resilience import CircuitBreaker, RetryPolicy
from .session import configure_worker, execute_job

#: Default per-request wall-clock deadline (seconds).
DEFAULT_DEADLINE_S = 30.0


class _Slot:
    """One worker slot: the process, its lock, and its history."""

    def __init__(self, index: int):
        self.index = index
        self.worker: Worker | None = None
        #: Serializes requests routed to this slot (session affinity
        #: means same-session requests are naturally ordered).
        self.lock = threading.Lock()
        self.restarts = 0
        self.generation = 0
        #: Artifact-cache totals accumulated from this slot's replies.
        self.cache_hits = 0
        self.cache_misses = 0


class Supervisor:
    """Owns the worker slots and the full robustness pipeline."""

    def __init__(
        self,
        num_workers: int = 2,
        deadline_s: float = DEFAULT_DEADLINE_S,
        retry_policy: RetryPolicy | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
        crash_dir: str | None = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.deadline_s = deadline_s
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.crash_dir = crash_dir
        self._slots = [_Slot(i) for i in range(num_workers)]
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}
        self._state_lock = threading.Lock()
        self._bundle_count = 0
        self.started_at = time.monotonic()
        #: Authoritative service metrics (perf.STATS mirrors them).
        self.metrics = {
            "requests": 0, "ok": 0, "errors": 0, "retries": 0,
            "restarts": 0, "deadline_kills": 0, "degraded": 0,
            "bundles": 0, "rejected": 0,
        }
        for slot in self._slots:
            self._start_worker(slot)

    # -- worker lifecycle ------------------------------------------------------

    def _start_worker(self, slot: _Slot) -> None:
        slot.worker = Worker(
            execute_job,
            name=f"slot{slot.index}g{slot.generation}",
            initializer=configure_worker,
            init_args=(slot.generation == 0,),
        )
        slot.generation += 1

    def _replace_worker(self, slot: _Slot, reason: str) -> None:
        worker = slot.worker
        if worker is not None:
            worker.kill()
        self._start_worker(slot)
        slot.restarts += 1
        self._count("restarts")
        STATS.count("serve.restarts")

    def _count(self, name: str, n: int = 1) -> None:
        with self._state_lock:
            self.metrics[name] += n

    # -- request handling ------------------------------------------------------

    def _slot_for(self, session: str) -> _Slot:
        return self._slots[zlib.crc32(session.encode()) % len(self._slots)]

    def _breaker(self, session: str, op: str) -> CircuitBreaker:
        with self._state_lock:
            breaker = self._breakers.get((session, op))
            if breaker is None:
                breaker = CircuitBreaker(
                    self.breaker_threshold, self.breaker_cooldown_s
                )
                self._breakers[(session, op)] = breaker
            return breaker

    def handle(self, payload: object, op: str | None = None) -> tuple[int, dict]:
        """One request in, ``(http_status, response_dict)`` out.  Never
        raises: every failure becomes a structured error response."""
        started = time.perf_counter()
        self._count("requests")
        STATS.count("serve.requests")
        try:
            request = validate_request(payload, op=op)
        except ProtocolError as error:
            self._count("rejected")
            record = error_record(error, include_traceback=False)
            return 400, {"ok": False, "error": record, "meta": {}}

        session, op_name = request["session"], request["op"]
        breaker = self._breaker(session, op_name)
        degraded = None
        if not breaker.allow():
            degraded = DEGRADED_MODES.get(op_name)
            if degraded is None:
                # compile has no degraded mode: shed with a retryable
                # error instead of pretending.
                self._count("errors")
                record = service_error(
                    "CircuitOpen",
                    f"circuit for ({session}, {op_name}) is open and "
                    f"{op_name} has no degraded mode",
                    retryable=True,
                )
                return 503, {"ok": False, "error": record, "meta": {
                    "session": session, "op": op_name,
                }}
            request = dict(request, mode=degraded)
            self._count("degraded")
            STATS.count("serve.degraded")

        if self.crash_dir is not None:
            request.setdefault("crash_dir", self.crash_dir)

        slot = self._slot_for(session)
        attempts = 0
        with slot.lock:
            while True:
                attempts += 1
                status, value = self._dispatch(slot, request)
                if status == "ok":
                    break
                if degraded is None:
                    if value.get("scope") == "service":
                        breaker.record_failure()
                    else:
                        # A request-scope error (bad IR, missing entry,
                        # a program trap) means the service path itself
                        # worked — client mistakes must not trip the
                        # breaker and degrade later requests.
                        breaker.record_success()
                if self.retry_policy.should_retry(attempts, value):
                    self._count("retries")
                    STATS.count("serve.retries")
                    time.sleep(self.retry_policy.delay_s(attempts))
                    continue
                break

        meta = {
            "session": session,
            "op": op_name,
            "worker": slot.index,
            "attempts": attempts,
            "degraded": degraded,
            "seconds": time.perf_counter() - started,
        }
        if status == "ok":
            if degraded is None:
                breaker.record_success()
            self._count("ok")
            meta.update(value.get("meta", {}))
            with self._state_lock:
                slot.cache_hits += meta.get("cache_hits", 0) or 0
                slot.cache_misses += meta.get("cache_misses", 0) or 0
            return 200, {"ok": True, "result": value["result"], "meta": meta}
        self._count("errors")
        STATS.count("serve.errors")
        if value.get("scope") == "service":
            value["bundle"] = self._write_bundle(request, value)
        return status_for_error(value), {
            "ok": False, "error": value, "meta": meta,
        }

    def _dispatch(self, slot: _Slot, request: dict):
        """Send one job to the slot's worker; returns ``("ok", reply)``
        or ``("error", record)``.  Handles death and deadlines."""
        worker = slot.worker
        if worker is None or not worker.alive:
            self._replace_worker(slot, "dead-at-dispatch")
            worker = slot.worker
        deadline = request.get("deadline_s") or self.deadline_s
        try:
            worker.submit(request)
        except (BrokenPipeError, OSError):
            self._replace_worker(slot, "broken-pipe-at-dispatch")
            return "error", service_error(
                "WorkerUnavailable",
                f"worker slot {slot.index} was dead at dispatch; "
                f"a replacement was started",
                retryable=True,
            )
        try:
            return worker.recv(timeout=deadline)
        except WorkerTimeout:
            self._count("deadline_kills")
            STATS.count("serve.deadline_kills")
            self._replace_worker(slot, "deadline")
            return "error", service_error(
                "DeadlineExceeded",
                f"request exceeded its {deadline:g}s deadline; the "
                f"worker was killed and replaced",
            )
        except WorkerCrashed as crash:
            self._replace_worker(slot, "crash")
            return "error", service_error(
                "WorkerCrashed",
                f"worker slot {slot.index} died mid-request "
                f"({describe_exit(crash.exitcode)}); "
                f"a replacement was started",
                exitcode=crash.exitcode,
            )

    def _write_bundle(self, request: dict, record: dict) -> str | None:
        """Crash-bundle a service-scope failure (reusing the transform
        bundle format: the request stands in for the pre-pass IR)."""
        error = TransformError(
            f"serve-{request.get('op', '?')}",
            "serve",
            record.get("kind", "ServiceError"),
            record.get("message", ""),
            traceback_text=record.get("traceback", ""),
            fault=request.get("faults"),
        )
        with self._state_lock:
            index = self._bundle_count
            self._bundle_count += 1
        ir_text = request.get("ir") or ""
        bundle = CrashBundle(index, error.pass_name, ir_text, error)
        self._count("bundles")
        if self.crash_dir is None:
            return None
        try:
            return str(bundle.write(self.crash_dir))
        except OSError:  # pragma: no cover - unwritable crash dir
            return None

    # -- introspection ---------------------------------------------------------

    def healthz(self) -> dict:
        workers = [s.worker is not None and s.worker.alive for s in self._slots]
        return {
            "status": "ok" if all(workers) else "degraded",
            "workers_alive": sum(workers),
            "workers_total": len(self._slots),
            "uptime_s": time.monotonic() - self.started_at,
        }

    def stats(self) -> dict:
        with self._state_lock:
            metrics = dict(self.metrics)
            breakers = {
                f"{session}/{op}": breaker.snapshot()
                for (session, op), breaker in self._breakers.items()
            }
        return {
            "serve": metrics,
            "workers": [
                {
                    "slot": slot.index,
                    "pid": slot.worker.pid if slot.worker else None,
                    "alive": bool(slot.worker and slot.worker.alive),
                    "jobs": slot.worker.jobs if slot.worker else 0,
                    "restarts": slot.restarts,
                    "cache_hits": slot.cache_hits,
                    "cache_misses": slot.cache_misses,
                }
                for slot in self._slots
            ],
            "breakers": breakers,
            "perf_counters": STATS.snapshot(),
            "uptime_s": time.monotonic() - self.started_at,
        }

    def stop(self, grace_s: float = 5.0) -> int:
        """Stop every worker; returns how many needed force-termination."""
        stubborn = 0
        for slot in self._slots:
            worker = slot.worker
            if worker is None:
                continue
            alive_before = worker.alive
            worker.stop(grace_s=grace_s)
            if alive_before and worker.process.exitcode is None:
                stubborn += 1  # pragma: no cover - never joined
            slot.worker = None
        return stubborn


class NoelleServer(ThreadingHTTPServer):
    """The daemon's HTTP server (one handler thread per request)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, supervisor: Supervisor, verbose: bool = False):
        super().__init__(address, _Handler)
        self.supervisor = supervisor
        self.verbose = verbose


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-noelle-serve/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _respond(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self):  # noqa: N802 - stdlib naming
        supervisor = self.server.supervisor
        if self.path == "/healthz":
            health = supervisor.healthz()
            self._respond(200 if health["status"] == "ok" else 503, health)
        elif self.path == "/stats":
            self._respond(200, supervisor.stats())
        else:
            self._respond(404, {"ok": False, "error": {
                "kind": "NotFound", "message": f"no route {self.path}",
                "scope": "request", "retryable": False,
            }})

    def do_POST(self):  # noqa: N802 - stdlib naming
        if self.path == "/shutdown":
            self._respond(200, {"ok": True, "result": "shutting down"})
            threading.Thread(target=self.server.shutdown, daemon=True).start()
            return
        path_op = self.path.lstrip("/")
        op = path_op if path_op in OPS else None
        if op is None and self.path not in ("/api", "/"):
            self._respond(404, {"ok": False, "error": {
                "kind": "NotFound", "message": f"no route {self.path}",
                "scope": "request", "retryable": False,
            }})
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode() or "{}")
        except (ValueError, UnicodeDecodeError) as error:
            self._respond(400, {"ok": False, "error": {
                "kind": "BadRequest", "message": f"invalid JSON body: {error}",
                "scope": "request", "retryable": False,
            }})
            return
        status, body = self.server.supervisor.handle(payload, op=op)
        self._respond(status, body)


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    deadline_s: float = DEFAULT_DEADLINE_S,
    max_attempts: int = 3,
    breaker_threshold: int = 3,
    breaker_cooldown_s: float = 5.0,
    crash_dir: str | None = None,
    verbose: bool = False,
    retry_policy: RetryPolicy | None = None,
) -> NoelleServer:
    """A bound, ready-to-run daemon (``port=0`` picks a free port)."""
    supervisor = Supervisor(
        num_workers=workers,
        deadline_s=deadline_s,
        retry_policy=retry_policy or RetryPolicy(max_attempts=max_attempts),
        breaker_threshold=breaker_threshold,
        breaker_cooldown_s=breaker_cooldown_s,
        crash_dir=crash_dir,
    )
    return NoelleServer((host, port), supervisor, verbose=verbose)


def serve_forever(server: NoelleServer) -> int:
    """Serve until :meth:`shutdown` (or /shutdown); then stop the
    workers.  Returns the number of workers that had to be force-killed
    (0 means a fully clean shutdown, no orphans)."""
    try:
        server.serve_forever()
    finally:
        stubborn = server.supervisor.stop()
        server.server_close()
    return stubborn
