"""Supervised worker processes.

Two consumers share this module:

* the serve daemon keeps a fixed set of long-lived, session-affine
  :class:`Worker` processes (warm caches live inside them) and replaces
  any that crash, hang, or are killed;
* :func:`supervised_map` fans a batch of independent items over a
  short-lived pool — the hardened backend of ``run_corpus(jobs=N)`` and
  ``fig5_speedups(jobs=N)``.  Unlike ``multiprocessing.Pool.map`` (which
  can hang the whole batch when a worker dies abruptly), a dead worker
  here costs exactly the item it was holding: that item comes back as a
  structured :class:`TaskResult` error, a replacement worker is spawned,
  and every other result returns in order.

The wire format between parent and worker is one duplex pipe per
worker: the parent sends a picklable payload, the worker replies
``("ok", value)`` or ``("error", record)`` where ``record`` is a
:func:`~repro.serve.protocol.error_record`.  Death is observed through
the process sentinel / pipe EOF, never inferred from silence — silence
is bounded separately by deadlines.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import signal
import time
from multiprocessing import connection

from ..perf import STATS
from .protocol import error_record

#: Sent to a worker to make it exit its loop cleanly.
SHUTDOWN = "__noelle_serve_shutdown__"

#: Start method: the platform default (fork on Linux — workers inherit
#: the warm imports) unless NOELLE_MP_START overrides it.
def _context():
    method = os.environ.get("NOELLE_MP_START") or None
    return multiprocessing.get_context(method)


class WorkerTimeout(RuntimeError):
    """No reply within the deadline (the worker may be wedged)."""


class WorkerCrashed(RuntimeError):
    """The worker process exited without replying."""

    def __init__(self, name: str, exitcode: int | None):
        super().__init__(
            f"worker {name} died mid-request ({describe_exit(exitcode)})"
        )
        self.worker_name = name
        self.exitcode = exitcode


def describe_exit(exitcode: int | None) -> str:
    if exitcode is None:
        return "exit status unknown"
    if exitcode < 0:
        try:
            signame = signal.Signals(-exitcode).name
        except ValueError:
            signame = f"signal {-exitcode}"
        return f"killed by {signame}"
    return f"exit code {exitcode}"


def _worker_loop(conn, runner, initializer, init_args):
    """Body of one worker process: payloads in, (status, value) out."""
    try:
        if initializer is not None:
            initializer(*init_args)
        while True:
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                return
            if payload == SHUTDOWN:
                return
            try:
                reply = ("ok", runner(payload))
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as error:
                reply = ("error", error_record(error))
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                return
    except KeyboardInterrupt:
        pass


class Worker:
    """One supervised worker process with a duplex request pipe."""

    def __init__(self, runner, name="worker", initializer=None,
                 init_args=(), context=None):
        ctx = context if context is not None else _context()
        self.name = name
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_loop,
            args=(child_conn, runner, initializer, init_args),
            name=f"noelle-serve-{name}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        #: Jobs completed (for /stats).
        self.jobs = 0

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def sentinel(self) -> int:
        return self.process.sentinel

    def submit(self, payload) -> None:
        """Send one job; raises on a broken pipe (worker already dead)."""
        self.conn.send(payload)

    def recv(self, timeout: float | None = None):
        """One reply tuple; :class:`WorkerTimeout` on deadline,
        :class:`WorkerCrashed` when the process exited instead of replying."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait_for = None
            if deadline is not None:
                wait_for = max(0.0, deadline - time.monotonic())
            ready = connection.wait(
                [self.conn, self.process.sentinel], timeout=wait_for
            )
            if not ready:
                raise WorkerTimeout(
                    f"worker {self.name} gave no reply within {timeout:g}s"
                )
            if self.conn in ready:
                try:
                    reply = self.recv_nowait()
                except (EOFError, OSError):
                    self.process.join(timeout=5.0)
                    raise WorkerCrashed(self.name, self.process.exitcode)
                self.jobs += 1
                return reply
            # Only the sentinel fired: the process is gone and the pipe
            # holds no reply (a reply would have made the pipe ready).
            self.process.join(timeout=5.0)
            raise WorkerCrashed(self.name, self.process.exitcode)

    def recv_nowait(self):
        return self.conn.recv()

    def kill(self) -> None:
        """Terminate immediately (deadline enforcement)."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join(timeout=2.0)
        self.conn.close()

    def stop(self, grace_s: float = 5.0) -> None:
        """Shut down cleanly; escalates to terminate after the grace."""
        try:
            self.conn.send(SHUTDOWN)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=grace_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join(timeout=2.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class TaskResult:
    """Outcome of one item of a :func:`supervised_map` batch."""

    __slots__ = ("index", "ok", "value", "error")

    def __init__(self, index: int, ok: bool, value=None, error=None):
        self.index = index
        self.ok = ok
        #: The runner's return value (ok) or None.
        self.value = value
        #: A structured error record (see protocol.error_record) or None.
        self.error = error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        detail = "ok" if self.ok else self.error.get("kind", "error")
        return f"<TaskResult #{self.index} {detail}>"


def supervised_map(
    runner,
    items,
    jobs: int,
    task_timeout_s: float | None = None,
    context=None,
    max_respawns: int | None = None,
) -> list[TaskResult]:
    """Run ``runner(item)`` for every item over ``jobs`` worker processes.

    Results come back in input order.  A worker that dies abruptly
    (killed, OOM) or exceeds ``task_timeout_s`` costs only the item it
    held — that item's :class:`TaskResult` carries a structured error —
    and a replacement worker keeps draining the batch; the pool never
    hangs and never loses the other results.  Runner exceptions are
    captured per item the same way (the worker survives those).
    """
    items = list(items)
    if not items:
        return []
    jobs = max(1, min(jobs, len(items)))
    ctx = context if context is not None else _context()
    if max_respawns is None:
        max_respawns = len(items) + jobs
    results: list[TaskResult | None] = [None] * len(items)
    pending = collections.deque(range(len(items)))
    spawned = 0
    workers: list[Worker] = []
    idle: list[Worker] = []
    inflight: dict[Worker, tuple[int, float]] = {}

    def spawn() -> Worker | None:
        nonlocal spawned
        if spawned and spawned - jobs >= max_respawns:
            return None  # respawn budget exhausted (pathological runner)
        worker = Worker(runner, name=f"map-{spawned}", context=ctx)
        spawned += 1
        workers.append(worker)
        if spawned > jobs:
            STATS.count("serve.pool.respawns")
        return worker

    def fail(index: int, record: dict) -> None:
        results[index] = TaskResult(index, False, error=record)
        STATS.count("serve.pool.failed_items")

    for _ in range(jobs):
        idle.append(spawn())

    try:
        while pending or inflight:
            # Dispatch pending items onto live idle workers.
            while pending and idle:
                worker = idle.pop()
                if not worker.alive:
                    replacement = spawn()
                    if replacement is not None:
                        idle.append(replacement)
                    continue
                index = pending.popleft()
                try:
                    worker.submit(items[index])
                except (BrokenPipeError, OSError):
                    # Died while idle: the item never started — requeue.
                    pending.appendleft(index)
                    replacement = spawn()
                    if replacement is not None:
                        idle.append(replacement)
                    continue
                inflight[worker] = (index, time.monotonic())
            if not inflight:
                if pending:
                    # Every worker is dead and the respawn budget is
                    # gone: fail the remainder structurally, never hang.
                    while pending:
                        fail(pending.popleft(), {
                            "kind": "WorkerUnavailable",
                            "message": "worker respawn budget exhausted",
                            "scope": "service",
                            "retryable": False,
                        })
                break

            timeout = None
            if task_timeout_s is not None:
                oldest = min(started for _, started in inflight.values())
                timeout = max(0.0, oldest + task_timeout_s - time.monotonic())
            waitables = [w.conn for w in inflight] + [w.sentinel for w in inflight]
            ready = connection.wait(waitables, timeout=timeout)
            ready_set = set(ready)

            finished: list[Worker] = []
            for worker, (index, started) in list(inflight.items()):
                if worker.conn in ready_set:
                    try:
                        status, value = worker.recv_nowait()
                    except (EOFError, OSError):
                        worker.process.join(timeout=5.0)
                        fail(index, error_record(
                            WorkerCrashed(worker.name, worker.process.exitcode),
                            scope="service",
                            include_traceback=False,
                        ))
                        finished.append(worker)
                        continue
                    worker.jobs += 1
                    if status == "ok":
                        results[index] = TaskResult(index, True, value=value)
                    else:
                        fail(index, value)
                    finished.append(worker)
                    idle.append(worker)
                elif worker.sentinel in ready_set:
                    worker.process.join(timeout=5.0)
                    fail(index, error_record(
                        WorkerCrashed(worker.name, worker.process.exitcode),
                        scope="service",
                        include_traceback=False,
                    ))
                    finished.append(worker)
                elif (
                    task_timeout_s is not None
                    and time.monotonic() - started > task_timeout_s
                ):
                    worker.kill()
                    fail(index, {
                        "kind": "DeadlineExceeded",
                        "message": (
                            f"item #{index} exceeded its "
                            f"{task_timeout_s:g}s deadline"
                        ),
                        "scope": "service",
                        "retryable": False,
                    })
                    finished.append(worker)
            for worker in finished:
                inflight.pop(worker, None)
    finally:
        for worker in workers:
            worker.stop(grace_s=2.0)
    assert all(result is not None for result in results)
    return results
