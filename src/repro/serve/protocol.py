"""The JSON request/response protocol of the serve daemon.

One request is one JSON object POSTed to ``/<op>`` (or with an ``op``
field to ``/api``).  The daemon validates it *before* dispatching to a
worker, so malformed requests are rejected at the front door with a
``BadRequest`` error and never consume a worker slot.

Responses are JSON too::

    {"ok": true,  "result": {...}, "meta": {...}}
    {"ok": false, "error":  {...}, "meta": {...}}

``error`` is a structured record (see :func:`error_record`): exception
kind, message, a ``scope`` separating *request* errors (bad IR, missing
entry point, a program trap) from *service* errors (worker died,
deadline exceeded, circuit open), whether the daemon may retry it, and —
for service errors — the path of the crash bundle the supervisor wrote.

The module also owns the documented process exit codes of
``repro-noelle run``, because the daemon's ``run`` op reports the same
taxonomy in-band (``result["exit_code"]``): callers of either interface
can tell a budget kill from a real trap from a missing entry point.
"""

from __future__ import annotations

import traceback

# -- exit codes (repro-noelle run, and the run op's result["exit_code"]) -------
#
# 0 success, 1 generic failure, 2 usage error (argparse); the codes
# below are the documented failure taxonomy of program execution.

#: The program executed a memory trap (out-of-bounds, use-after-free...).
EXIT_TRAP = 3
#: The step budget ran out (``StepLimitExceeded``) — a budget kill, not
#: a program bug.
EXIT_STEP_LIMIT = 4
#: The requested entry point is not a defined function in the module.
EXIT_ENTRY_NOT_FOUND = 5

#: The ``os._exit`` code of a worker killed by an injected
#: ``serve_kill`` fault (distinctive on purpose: tests and bundles can
#: tell an injected kill from a genuine crash).
WORKER_KILL_EXIT = 86

#: Operations the daemon accepts.
OPS = ("compile", "parallelize", "run", "check")

#: Degradation ladder: what each op falls back to when the circuit
#: breaker for its (session, op) is open.  ``compile`` has no degraded
#: mode — it is the base capability — so an open breaker sheds it.
DEGRADED_MODES = {
    "run": "reference",      # compiled engine -> reference walker
    "parallelize": "sequential",  # skip the transform, keep the module
    "check": "advisory",     # findings reported, never failing
}

#: Error kinds the daemon's bounded-retry policy may re-dispatch.
RETRYABLE_KINDS = frozenset({"TransientServeError", "WorkerUnavailable"})

#: Hard caps a request cannot exceed regardless of what it asks for.
MAX_DEADLINE_S = 600.0


class ProtocolError(ValueError):
    """A malformed request, rejected before any worker sees it."""


class TransientServeError(RuntimeError):
    """A failure the daemon is explicitly allowed to retry."""


def error_record(
    error: BaseException,
    scope: str = "request",
    include_traceback: bool = True,
) -> dict:
    """A JSON-able structured record of one failure.

    ``scope`` is ``"request"`` (the client's job failed on its own
    terms) or ``"service"`` (the service layer failed the request:
    worker death, deadline, open breaker) — service errors get crash
    bundles, request errors do not.
    """
    kind = type(error).__name__
    if kind in RETRYABLE_KINDS:
        # Transient failures are the service layer's fault no matter
        # where they were caught — never the client's job failing on
        # its own terms.
        scope = "service"
    record = {
        "kind": kind,
        "message": str(error),
        "scope": scope,
        "retryable": kind in RETRYABLE_KINDS,
    }
    if include_traceback and error.__traceback__ is not None:
        record["traceback"] = "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        )
    return record


def service_error(
    kind: str, message: str, retryable: bool = False, **extra
) -> dict:
    """A service-scope error record built from parts (no exception)."""
    record = {
        "kind": kind,
        "message": message,
        "scope": "service",
        "retryable": retryable,
    }
    record.update(extra)
    return record


#: HTTP status per error kind (default 500).
_STATUS_BY_KIND = {
    "ProtocolError": 400,
    "BadRequest": 400,
    "EntryNotFoundError": 400,
    "KeyError": 400,
    "ParseError": 400,
    "VerificationError": 400,
    "DeadlineExceeded": 504,
    "WorkerCrashed": 502,
    "WorkerUnavailable": 503,
    "CircuitOpen": 503,
    "TransientServeError": 503,
}


def status_for_error(record: dict) -> int:
    return _STATUS_BY_KIND.get(record.get("kind", ""), 500)


def trap_exit_code(trap_kind: str | None) -> int:
    """Map a recorded trap kind to the documented exit code."""
    if trap_kind is None:
        return 0
    if trap_kind == "StepLimitExceeded":
        return EXIT_STEP_LIMIT
    return EXIT_TRAP


# -- request validation --------------------------------------------------------

def _require_str(request: dict, key: str, default=None) -> str | None:
    value = request.get(key, default)
    if value is default:
        return default
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"field {key!r} must be a non-empty string")
    return value


def _require_int(request: dict, key: str, default=None, minimum=1):
    value = request.get(key, default)
    if value is default:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {key!r} must be an integer")
    if value < minimum:
        raise ProtocolError(f"field {key!r} must be >= {minimum}")
    return value


def validate_request(payload: object, op: str | None = None) -> dict:
    """Normalize and validate one request; raises :class:`ProtocolError`.

    Returns a fresh dict with ``op`` and ``session`` always present.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    request = dict(payload)
    if op is not None:
        request.setdefault("op", op)
    op_name = request.get("op")
    if op_name not in OPS:
        raise ProtocolError(
            f"unknown op {op_name!r}; expected one of {', '.join(OPS)}"
        )
    session = request.get("session", "default")
    if not isinstance(session, str) or not session:
        raise ProtocolError("field 'session' must be a non-empty string")
    request["session"] = session

    deadline = request.get("deadline_s")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
            raise ProtocolError("field 'deadline_s' must be a number")
        if not 0 < deadline <= MAX_DEADLINE_S:
            raise ProtocolError(
                f"field 'deadline_s' must be in (0, {MAX_DEADLINE_S:g}]"
            )

    _require_str(request, "name")
    _require_str(request, "source")
    _require_str(request, "ir")
    _require_str(request, "entry")
    _require_str(request, "faults")
    _require_int(request, "cores")
    _require_int(request, "stages")
    _require_int(request, "step_limit")

    if op_name == "compile":
        if not request.get("name"):
            raise ProtocolError("compile requires a 'name' to store under")
        if bool(request.get("source")) == bool(request.get("ir")):
            raise ProtocolError(
                "compile requires exactly one of 'source' (MiniC) or "
                "'ir' (textual IR)"
            )
    else:
        if not request.get("name") and not request.get("ir"):
            raise ProtocolError(
                f"{op_name} requires a session module 'name' or inline 'ir'"
            )

    technique = request.get("technique")
    if op_name == "parallelize":
        technique = technique or "doall"
        if technique not in ("doall", "helix", "dswp"):
            raise ProtocolError(
                f"unknown technique {technique!r}; expected doall/helix/dswp"
            )
        request["technique"] = technique

    engine = request.get("engine")
    if engine is not None and engine not in ("compiled", "reference"):
        raise ProtocolError(
            f"unknown engine {engine!r}; expected compiled/reference"
        )

    mode = request.get("mode")
    if mode is not None and mode not in DEGRADED_MODES.values():
        raise ProtocolError(f"unknown mode {mode!r}")

    args = request.get("args")
    if args is not None:
        if not isinstance(args, list) or not all(
            isinstance(a, (int, float)) for a in args
        ):
            raise ProtocolError("field 'args' must be a list of numbers")
    return request
