"""Retry/backoff policy and the circuit breaker.

Both are deliberately small, deterministic-under-seed, and clock-
injectable, because the robustness tests assert their exact behaviour:
the backoff sequence for a given seed, the breaker's state machine
transitions under a fake clock.

Retry is *bounded* and applies only to failures the protocol marks
retryable (``TransientServeError``, a worker that was already dead at
dispatch time).  A worker that dies *mid-request* is never retried —
the job may have had partial effect, and the honest answer is a
structured error with a crash bundle.

The circuit breaker implements the degradation ladder rather than
load-shedding: when the full-fat path for a (session, op) keeps
failing, requests are served degraded (compiled engine → reference
walker, parallelize → sequential, checks → advisory) until a half-open
probe of the full path succeeds again.
"""

from __future__ import annotations

import random
import time


class RetryPolicy:
    """Bounded retries with capped exponential backoff plus jitter."""

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_s: float = 0.05,
        max_delay_s: float = 2.0,
        jitter: float = 0.5,
        seed: int | None = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        #: Total attempts, including the first (1 disables retries).
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self._rng = random.Random(seed)

    def should_retry(self, attempt: int, error: dict) -> bool:
        """May attempt ``attempt`` (1-based, already failed) be retried?"""
        return attempt < self.max_attempts and bool(error.get("retryable"))

    def delay_s(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based): capped
        exponential, scaled by a uniform jitter factor in
        ``[1 - jitter, 1 + jitter]``."""
        exponential = self.base_delay_s * (2.0 ** (attempt - 1))
        capped = min(exponential, self.max_delay_s)
        if self.jitter == 0.0:
            return capped
        factor = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return capped * factor


class CircuitBreaker:
    """A per-(session, op) breaker driving the degradation ladder.

    States: **closed** (full path), **open** (serve degraded until the
    cooldown elapses), **half_open** (one probe of the full path is in
    flight; success closes, failure re-opens).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self._opened_at: float | None = None
        #: Counters for /stats.
        self.opened_count = 0

    def allow(self) -> bool:
        """True when the *full* path should be tried now.  An open
        breaker returns True exactly once per cooldown expiry (the
        half-open probe)."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self._opened_at >= self.cooldown_s:
                self.state = "half_open"
                return True
            return False
        # half_open: one probe at a time; concurrent requests degrade.
        return False

    def record_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self.state == "half_open"
            or self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != "open":
                self.opened_count += 1
            self.state = "open"
            self._opened_at = self._clock()

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opened_count": self.opened_count,
        }
