"""Worker-side job execution over warm per-session state.

This module runs *inside* a supervised worker process.  Each worker
owns a dict of :class:`SessionState` namespaces; because the daemon
routes a session to the same worker every time (session affinity), the
modules, :class:`~repro.core.noelle.Noelle` facades (PDG shards, loop
forests, alias memos), profiles, and per-module
:class:`~repro.interp.engine.ExecutionEngine` code caches built for a
session's first request stay resident and warm for every later request
— the paper's build-once-amortize-everywhere economics applied to
requests instead of tools.

Fault injection: :func:`execute_job` arms a :class:`FaultPlan` around
each job — from the request's ``faults`` field, or (for first-
generation workers only) from ``NOELLE_FAULTS`` when the env plan names
a service-layer site.  The serve chokepoints behave as documented in
``repro.robust.faults``: ``serve_exec`` raises into a structured error,
``serve_flaky`` raises a retryable :class:`TransientServeError`, and
``serve_kill`` makes the worker ``os._exit`` mid-request so the
supervisor's crash handling is exercised for real.
"""

from __future__ import annotations

import hashlib
import os
import time

from .. import cache
from ..core.noelle import Noelle
from ..core.profiler import Profiler
from ..interp.engine import engine_mode
from ..interp.interp import StepLimitExceeded
from ..ir import print_module, verify_module
from ..perf import STATS
from ..robust import faults
from ..robust.diagnostics import EntryNotFoundError
from ..robust.faults import SERVE_SITES, FaultPlan, InjectedFault
from ..robust.passmanager import PassManager
from ..runtime.machine import ParallelMachine
from .protocol import (
    WORKER_KILL_EXIT,
    ProtocolError,
    TransientServeError,
    trap_exit_code,
)


class SessionState:
    """Everything kept warm for one session namespace."""

    def __init__(self, name: str):
        self.name = name
        self.modules: dict[str, object] = {}
        #: One facade per module: owns the warm PDG shards / loop info.
        self.noelles: dict[str, Noelle] = {}
        #: Content hash per module name (warm-compile detection).
        self.hashes: dict[str, str] = {}
        #: Cached profiles, dropped whenever the module mutates.
        self.profiles: dict[str, object] = {}
        #: How many non-compile ops have touched each module.
        self.touches: dict[str, int] = {}


#: The worker's resident sessions (one dict per worker process).
_SESSIONS: dict[str, SessionState] = {}

#: Env-armed service fault plan (first-generation workers only).
_ENV_PLAN: FaultPlan | None = None

#: Request-level fault specs that already fired in this worker, so a
#: retried request does not re-arm the same one-shot fault.
_CONSUMED_SPECS: set[str] = set()


def configure_worker(arm_env_faults: bool = True) -> None:
    """Worker-process initializer.

    Arms the ``NOELLE_FAULTS`` plan at the service layer only when (a)
    this is a first-generation worker — a supervisor-spawned replacement
    must not re-die on the same seed forever — and (b) the plan names a
    service site; analysis-site env plans keep their existing scope (the
    pass manager's transactions) and never fail whole requests.
    """
    global _ENV_PLAN
    plan = FaultPlan.from_env()
    if arm_env_faults and plan is not None and plan.site in SERVE_SITES:
        _ENV_PLAN = plan
    else:
        _ENV_PLAN = None
    _SESSIONS.clear()
    _CONSUMED_SPECS.clear()


def _plan_for(job: dict) -> FaultPlan | None:
    spec = job.get("faults")
    if spec:
        if spec in _CONSUMED_SPECS:
            return None
        return FaultPlan.from_spec(spec)
    return _ENV_PLAN


def _service_checkpoint() -> None:
    """Visit the service-layer fault sites (no-ops unless armed)."""
    try:
        faults.checkpoint("serve_kill")
    except InjectedFault:
        # Simulate an abrupt kill (OOM/SIGKILL) mid-request: no reply,
        # no cleanup — the supervisor must notice and recover.
        os._exit(WORKER_KILL_EXIT)
    try:
        faults.checkpoint("serve_flaky")
    except InjectedFault as fault:
        raise TransientServeError(
            f"injected transient service fault ({fault})"
        ) from fault
    faults.checkpoint("serve_exec")


def execute_job(job: dict) -> dict:
    """Run one validated request; returns ``{"result", "meta"}``.

    Exceptions propagate — the worker loop converts them into
    structured error records on the wire.
    """
    started = time.perf_counter()
    op = job.get("op")
    handler = _OPS.get(op)
    if handler is None:
        raise ProtocolError(f"unknown op {op!r}")
    session = job.get("session", "default")
    state = _SESSIONS.setdefault(session, SessionState(session))
    plan = _plan_for(job)
    compiles_before = STATS.get("engine.compiles")
    hits_before = STATS.get("engine.cache_hits")
    cache_hits_before = STATS.get("cache.hits")
    cache_misses_before = STATS.get("cache.misses")
    try:
        with faults.armed(plan):
            _service_checkpoint()
            result = handler(job, state)
    finally:
        spec = job.get("faults")
        if spec and plan is not None and plan.fired:
            _CONSUMED_SPECS.add(spec)
    return {
        "result": result,
        "meta": {
            "session": session,
            "op": op,
            "pid": os.getpid(),
            "seconds": time.perf_counter() - started,
            "engine_compiles": STATS.get("engine.compiles") - compiles_before,
            "engine_cache_hits": STATS.get("engine.cache_hits") - hits_before,
            "cache_hits": STATS.get("cache.hits") - cache_hits_before,
            "cache_misses": STATS.get("cache.misses") - cache_misses_before,
            "resident_modules": len(state.modules),
        },
    }


# -- module resolution --------------------------------------------------------

def _resolve(job: dict, state: SessionState):
    """(module, noelle, name, warm) for one request.

    Named modules come from the session (warm after their first use);
    inline ``ir`` is parsed fresh per request and kept nowhere (cold).
    """
    name = job.get("name")
    if name:
        module = state.modules.get(name)
        if module is None:
            raise ProtocolError(
                f"session {state.name!r} has no module {name!r}; "
                f"compile it first"
            )
        warm = state.touches.get(name, 0) > 0
        state.touches[name] = state.touches.get(name, 0) + 1
        return module, state.noelles[name], name, warm
    module = cache.load_ir_text(job["ir"], "inline")
    verify_module(module)
    noelle = Noelle(module)
    if cache.enabled():
        cache.attach(noelle)
    return module, noelle, None, False


# -- operations ---------------------------------------------------------------

def _op_compile(job: dict, state: SessionState) -> dict:
    name = job["name"]
    source = job.get("source")
    text = source if source is not None else job["ir"]
    digest = hashlib.sha256(text.encode()).hexdigest()
    if state.hashes.get(name) == digest:
        # Identical content: keep the resident module (and with it the
        # warm PDG shards and compiled code) instead of rebuilding.
        module = state.modules[name]
        warm = True
    else:
        if source is not None:
            # Warm path: a replacement worker after a crash (or any
            # sibling worker) decodes the cached binary module and
            # pre-hydrated PDG/engine artifacts instead of recompiling.
            module = cache.cached_compile(source, name)
        else:
            module = cache.load_ir_text(job["ir"], name)
        verify_module(module)
        state.modules[name] = module
        noelle = Noelle(module)
        if cache.enabled():
            cache.attach(noelle)
        state.noelles[name] = noelle
        state.hashes[name] = digest
        state.profiles.pop(name, None)
        state.touches[name] = 0
        warm = False
    return {
        "name": name,
        "functions": sum(1 for _ in module.defined_functions()),
        "instructions": module.num_instructions(),
        "warm": warm,
    }


def _op_parallelize(job: dict, state: SessionState) -> dict:
    module, noelle, name, warm = _resolve(job, state)
    _service_checkpoint()
    if job.get("mode") == "sequential":
        # Degraded: the breaker is open for this path — serve the
        # sequential module instead of refusing.
        response = {
            "parallelized": 0,
            "rolled_back": [],
            "degraded": "sequential",
            "warm": warm,
        }
        if job.get("emit_ir"):
            response["ir"] = print_module(module)
        return response
    technique = job["technique"]
    profile = state.profiles.get(name) if name else None
    if profile is None:
        profile = Profiler(module).profile()
        if name:
            state.profiles[name] = profile
    noelle.attach_profile(profile)
    manager = PassManager(noelle, crash_dir=job.get("crash_dir"))
    manager.run_registered("rm-lc-dependences")
    if technique == "dswp":
        options = {"num_stages": job.get("stages") or 4}
    else:
        options = {"num_cores": job.get("cores") or 8}
    options["minimum_hotness"] = job.get("min_hotness", 0.0)
    result = manager.run_registered(technique, **options)
    if name:
        # The module mutated: the cached profile no longer matches.
        state.profiles.pop(name, None)
    rolled_back = [
        {
            "pass": r.name,
            "kind": r.error.kind,
            "message": r.error.message,
            "bundle": str(r.bundle) if r.bundle else None,
        }
        for r in manager.rolled_back()
    ]
    response = {
        "parallelized": result.value if result.ok else 0,
        "rolled_back": rolled_back,
        "degraded": None,
        "warm": warm,
    }
    if job.get("emit_ir"):
        response["ir"] = print_module(module)
    return response


def _json_value(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _op_run(job: dict, state: SessionState) -> dict:
    module, _noelle, name, warm = _resolve(job, state)
    _service_checkpoint()
    entry = job.get("entry") or "main"
    fn = module.functions.get(entry)
    if fn is None or fn.is_declaration():
        raise EntryNotFoundError(
            entry, sorted(f.name for f in module.defined_functions())
        )
    degraded = job.get("mode") == "reference"
    engine = "reference" if degraded else job.get("engine")
    kwargs = {}
    if job.get("step_limit"):
        kwargs["step_limit"] = job["step_limit"]
    machine = ParallelMachine(
        module, num_cores=job.get("cores"), engine=engine, **kwargs
    )
    trap_kind = None
    try:
        result = machine.run(entry, job.get("args") or [])
    except StepLimitExceeded as error:
        result = machine.result
        result.trapped = str(error)
        trap_kind = "StepLimitExceeded"
    else:
        if result.trapped is not None:
            trap_kind = "MemoryTrap"
    if cache.enabled():
        # Share whatever this run compiled (engine plans) with sibling
        # and replacement workers.
        cache.publish_artifacts(module, _noelle)
    return {
        "output": [_json_value(v) for v in result.output],
        "return_value": _json_value(result.return_value),
        "cycles": result.cycles,
        "steps": result.steps,
        "trapped": result.trapped,
        "trap_kind": trap_kind,
        "exit_code": trap_exit_code(trap_kind),
        "engine": engine_mode(engine),
        "degraded": "reference" if degraded else None,
        "warm": warm,
    }


def _op_check(job: dict, state: SessionState) -> dict:
    module, noelle, name, warm = _resolve(job, state)
    _service_checkpoint()
    advisory = job.get("mode") == "advisory"
    checkers = job.get("checkers")
    names = checkers.split(",") if checkers else None
    diagnostics = noelle.run_checks(names=names)
    if cache.enabled():
        # Checkers build PDG shards: publish them for other workers.
        cache.publish_artifacts(module, noelle)
    records = [d.to_dict() for d in diagnostics]
    errors = sum(1 for d in records if d.get("severity") == "error")
    warnings = sum(1 for d in records if d.get("severity") == "warning")
    return {
        "diagnostics": records,
        "errors": errors,
        "warnings": warnings,
        "ok": advisory or errors == 0,
        "degraded": "advisory" if advisory else None,
        "warm": warm,
    }


_OPS = {
    "compile": _op_compile,
    "parallelize": _op_parallelize,
    "run": _op_run,
    "check": _op_check,
}
