"""repro.testing — NOELLE's testing infrastructure (Section 2.4).

A generated micro-test corpus of corner-case programs, a harness that runs
them through configurable custom-tool pipelines (including forcing a
parallelizer onto one specific loop), and a generator for the sequential
bash driver script.
"""

from .corpus import MicroTest, build_corpus, tests_with_pattern
from .harness import (
    DEFAULT_CONFIGS,
    TestOutcome,
    ToolConfig,
    generate_bash_script,
    run_corpus,
    run_micro_test,
)

__all__ = [
    "MicroTest",
    "build_corpus",
    "tests_with_pattern",
    "DEFAULT_CONFIGS",
    "TestOutcome",
    "ToolConfig",
    "generate_bash_script",
    "run_corpus",
    "run_micro_test",
]
