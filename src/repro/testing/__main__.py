"""Run one micro test under one configuration (the bash script's worker).

Usage:  python -m repro.testing --test loop_for_sum_n17_s1 --config doall
        python -m repro.testing --all --jobs 8
        python -m repro.testing --list
        python -m repro.testing --emit-script > run_all.sh
"""

from __future__ import annotations

import argparse
import sys

from .corpus import build_corpus
from .harness import (
    DEFAULT_CONFIGS,
    generate_bash_script,
    run_corpus,
    run_micro_test,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.testing")
    parser.add_argument("--test")
    parser.add_argument("--config")
    parser.add_argument("--all", action="store_true",
                        help="run the whole corpus in-process")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="with --all: fan the (test, config) pairs "
                        "out over N worker processes")
    parser.add_argument("--list", action="store_true")
    parser.add_argument("--emit-script", action="store_true")
    args = parser.parse_args(argv)

    if args.emit_script:
        sys.stdout.write(generate_bash_script())
        return 0
    if args.all:
        outcomes = run_corpus(DEFAULT_CONFIGS, jobs=args.jobs)
        failures = 0
        for outcome in outcomes:
            if outcome.passed:
                print(f"PASS {outcome.test.name} @ {outcome.config.name}")
            else:
                failures += 1
                print(f"FAIL {outcome.test.name} @ {outcome.config.name}: "
                      f"{outcome.detail}")
        print(f"done ({failures} failures)")
        return 1 if failures else 0
    corpus = {t.name: t for t in build_corpus()}
    if args.list:
        for name, test in corpus.items():
            print(f"{name:40s} {' '.join(sorted(test.patterns))}")
        return 0
    configs = {c.name: c for c in DEFAULT_CONFIGS}
    if args.test not in corpus:
        print(f"unknown test {args.test!r}", file=sys.stderr)
        return 2
    if args.config not in configs:
        print(f"unknown config {args.config!r}", file=sys.stderr)
        return 2
    outcome = run_micro_test(corpus[args.test], configs[args.config])
    if outcome.passed:
        print(f"PASS {args.test} @ {args.config}")
        return 0
    print(f"FAIL {args.test} @ {args.config}: {outcome.detail}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
