"""Run one micro test under one configuration (the bash script's worker).

Usage:  python -m repro.testing --test loop_for_sum_n17_s1 --config doall
        python -m repro.testing --list
        python -m repro.testing --emit-script > run_all.sh
"""

from __future__ import annotations

import argparse
import sys

from .corpus import build_corpus
from .harness import DEFAULT_CONFIGS, generate_bash_script, run_micro_test


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.testing")
    parser.add_argument("--test")
    parser.add_argument("--config")
    parser.add_argument("--list", action="store_true")
    parser.add_argument("--emit-script", action="store_true")
    args = parser.parse_args(argv)

    if args.emit_script:
        sys.stdout.write(generate_bash_script())
        return 0
    corpus = {t.name: t for t in build_corpus()}
    if args.list:
        for name, test in corpus.items():
            print(f"{name:40s} {' '.join(sorted(test.patterns))}")
        return 0
    configs = {c.name: c for c in DEFAULT_CONFIGS}
    if args.test not in corpus:
        print(f"unknown test {args.test!r}", file=sys.stderr)
        return 2
    if args.config not in configs:
        print(f"unknown config {args.config!r}", file=sys.stderr)
        return 2
    outcome = run_micro_test(corpus[args.test], configs[args.config])
    if outcome.passed:
        print(f"PASS {args.test} @ {args.config}")
        return 0
    print(f"FAIL {args.test} @ {args.config}: {outcome.detail}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
