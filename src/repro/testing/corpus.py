"""The micro-test corpus (Section 2.4).

NOELLE ships hundreds of micro C/C++ programs "to illustrate corner cases
or common code patterns found in popular benchmark suites", so users can
exercise their custom tools without paying the suites' compilation and
profiling costs.  This module provides the same thing: a generated corpus
of small MiniC programs, each tagged with the patterns it exercises.

The corpus is *generated* from pattern templates crossed with parameter
grids — the way real corner-case suites grow — so it stays deterministic
and self-describing rather than being hundreds of pasted files.
"""

from __future__ import annotations


class MicroTest:
    """One micro program with the patterns it exercises."""

    def __init__(self, name: str, source: str, patterns: set[str]):
        self.name = name
        self.source = source
        self.patterns = patterns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MicroTest {self.name}>"


def _loop_shape_tests() -> list[MicroTest]:
    tests = []
    shapes = {
        "while": "int i = 0;\n  while (i < {n}) {{ {body} i = i + {step}; }}",
        "do_while": "int i = 0;\n  do {{ {body} i = i + {step}; }} while (i < {n});",
        "for": "int i;\n  for (i = 0; i < {n}; i = i + {step}) {{ {body} }}",
        "down": "int i = {n};\n  while (i > 0) {{ {body} i = i - {step}; }}",
    }
    bodies = {
        "sum": ("acc = acc + i;", "reduction"),
        "store": ("buf[i % 16] = i;", "memory-write"),
        "mixed": ("acc = acc + buf[i % 16]; buf[(i + 1) % 16] = i;", "memory-mixed"),
    }
    for shape_name, shape in shapes.items():
        for body_name, (body, body_pattern) in bodies.items():
            for n, step in ((0, 1), (1, 1), (17, 1), (64, 3)):
                if shape_name == "down" and n == 0:
                    continue  # down-counting from 0 never enters
                name = f"loop_{shape_name}_{body_name}_n{n}_s{step}"
                loop = shape.format(n=n, step=step, body=body)
                source = f"""
int buf[16];
int main() {{
  int acc = 0;
  {loop}
  print_int(acc);
  print_int(buf[3]);
  return acc;
}}
"""
                tests.append(MicroTest(
                    name, source,
                    {f"shape:{shape_name}", body_pattern, "loop"},
                ))
    return tests


def _reduction_tests() -> list[MicroTest]:
    tests = []
    for op_name, op, init in (("add", "+", 0), ("xor", "^", 0), ("mul", "*", 1),
                              ("or", "|", 0)):
        source = f"""
int data[40];
int main() {{
  int i;
  int acc = {init};
  for (i = 0; i < 40; i = i + 1) {{ data[i] = (i * 13 + 5) % 9 + 1; }}
  for (i = 0; i < 40; i = i + 1) {{ acc = acc {op} data[i]; }}
  print_int(acc);
  return acc;
}}
"""
        tests.append(MicroTest(
            f"reduction_{op_name}", source, {"reduction", f"op:{op_name}", "loop"}
        ))
    return tests


def _aliasing_tests() -> list[MicroTest]:
    return [
        MicroTest("alias_disjoint_args", """
int a[20];
int b[20];
void kernel(int *p, int *q) {
  int i;
  for (i = 0; i < 20; i = i + 1) { q[i] = p[i] * 2; }
}
int main() {
  int i;
  for (i = 0; i < 20; i = i + 1) { a[i] = i; }
  kernel(a, b);
  print_int(b[7]);
  return b[7];
}
""", {"aliasing", "pointer-args", "loop"}),
        MicroTest("alias_same_array", """
int a[20];
void kernel(int *p, int *q) {
  int i;
  for (i = 1; i < 20; i = i + 1) { q[i] = p[i - 1] + 1; }
}
int main() {
  a[0] = 5;
  kernel(a, a);
  print_int(a[19]);
  return a[19];
}
""", {"aliasing", "recurrence", "loop"}),
        MicroTest("alias_heap_sites", """
int main() {
  int *p = (int *)malloc(8);
  int *q = (int *)malloc(8);
  int i;
  for (i = 0; i < 8; i = i + 1) { p[i] = i; q[i] = i * 2; }
  int r = p[3] + q[3];
  free((char *)p);
  free((char *)q);
  print_int(r);
  return r;
}
""", {"aliasing", "heap", "loop"}),
        MicroTest("alias_global_accumulator", """
int cell = 0;
int noise[8];
int main() {
  int i;
  for (i = 0; i < 30; i = i + 1) {
    cell = cell + i;
    noise[i % 8] = cell;
  }
  print_int(cell);
  return cell;
}
""", {"aliasing", "memory-accumulator", "loop"}),
    ]


def _control_flow_tests() -> list[MicroTest]:
    return [
        MicroTest("cf_early_exit", """
int data[50];
int main() {
  int i;
  int found = 0 - 1;
  for (i = 0; i < 50; i = i + 1) { data[i] = (i * 7) % 50; }
  for (i = 0; i < 50; i = i + 1) {
    if (data[i] == 21) { found = i; break; }
  }
  print_int(found);
  return found;
}
""", {"control-flow", "early-exit", "loop"}),
        MicroTest("cf_nested_conditionals", """
int main() {
  int i;
  int a = 0;
  int b = 0;
  for (i = 0; i < 30; i = i + 1) {
    if (i % 2 == 0) {
      if (i % 3 == 0) { a = a + i; } else { b = b + 1; }
    } else {
      a = a - 1;
    }
  }
  print_int(a * 100 + b);
  return a;
}
""", {"control-flow", "nested-if", "loop"}),
        MicroTest("cf_switch_fallthrough", """
int main() {
  int i;
  int acc = 0;
  for (i = 0; i < 12; i = i + 1) {
    switch (i % 4) {
      case 0: acc = acc + 1;
      case 1: acc = acc + 10; break;
      case 2: acc = acc + 100; break;
      default: acc = acc + 1000;
    }
  }
  print_int(acc);
  return acc;
}
""", {"control-flow", "switch", "loop"}),
        MicroTest("cf_recursion", """
int depth_sum(int n) {
  if (n == 0) { return 0; }
  return n + depth_sum(n - 1);
}
int main() {
  int r = depth_sum(15);
  print_int(r);
  return r;
}
""", {"control-flow", "recursion"}),
        MicroTest("cf_indirect_call", """
int sel = 1;
int inc(int x) { return x + 1; }
int dbl(int x) { return x * 2; }
int main() {
  int (*f)(int);
  int i;
  int acc = 0;
  for (i = 0; i < 10; i = i + 1) {
    if ((i + sel) % 2 == 0) { f = inc; } else { f = dbl; }
    acc = acc + f(i);
  }
  print_int(acc);
  return acc;
}
""", {"control-flow", "indirect-call", "loop"}),
    ]


def _nesting_tests() -> list[MicroTest]:
    tests = []
    for outer, inner in ((3, 4), (8, 8), (1, 20)):
        source = f"""
int grid[{outer * inner}];
int main() {{
  int i;
  int j;
  int acc = 0;
  for (i = 0; i < {outer}; i = i + 1) {{
    for (j = 0; j < {inner}; j = j + 1) {{
      grid[i * {inner} + j] = i * 10 + j;
      acc = acc + grid[i * {inner} + j] % 7;
    }}
  }}
  print_int(acc);
  return acc;
}}
"""
        tests.append(MicroTest(
            f"nest_{outer}x{inner}", source, {"nesting", "loop", "memory-write"}
        ))
    return tests


def build_corpus() -> list[MicroTest]:
    """The full generated corpus (deterministic order)."""
    corpus: list[MicroTest] = []
    corpus.extend(_loop_shape_tests())
    corpus.extend(_reduction_tests())
    corpus.extend(_aliasing_tests())
    corpus.extend(_control_flow_tests())
    corpus.extend(_nesting_tests())
    return corpus


def tests_with_pattern(pattern: str) -> list[MicroTest]:
    """Corpus subset exercising one pattern (e.g. ``"reduction"``)."""
    return [t for t in build_corpus() if pattern in t.patterns]
