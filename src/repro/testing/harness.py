"""The regression-test harness (Section 2.4).

Runs the micro-test corpus through a configurable pipeline of NOELLE
custom tools, comparing each transformed program's output against the
untransformed reference — the automatic testing the paper provides for
"NOELLE itself as well as custom tools built upon it".

Reproduced features:

* **tool pipelines via options** — a :class:`ToolConfig` names the tools
  to apply and their knobs ("tests are enabled by exposing NOELLE
  options");
* **surgical test generation** — ``force_loop_id`` makes a parallelizing
  tool transform *only* one specific loop ("a user can force a
  parallelizing custom tool to parallelize only a given loop");
* **bash-script generation** — :func:`generate_bash_script` writes the
  sequential driver script the paper optionally emits (its
  HTCondor/Slurm integration degrades to this script on one machine);
* **process fan-out** — ``run_corpus(..., jobs=N)`` distributes the
  (test, configuration) pairs over ``N`` worker processes — the
  single-machine stand-in for the paper's HTCondor/Slurm dispatch.
  Each pair already runs hermetically (its own modules, interpreters,
  and pass managers), so fan-out changes wall-clock time only; results
  come back in the same deterministic order as the sequential loop.
"""

from __future__ import annotations

from .. import cache
from ..core.noelle import Noelle
from ..core.profiler import Profiler
from ..interp.interp import Interpreter
from ..ir import verify_module
from ..robust.passmanager import PassManager
from ..runtime.machine import ParallelMachine
from .corpus import MicroTest, build_corpus


class ToolConfig:
    """Which tools to apply, with their options."""

    def __init__(
        self,
        name: str,
        tools: list[str],
        num_cores: int = 8,
        minimum_hotness: float = 0.0,
        force_loop_id: int | None = None,
        rm_lc_dependences: bool = True,
    ):
        self.name = name
        #: Tool names in application order; any of: "licm", "dead",
        #: "carat", "coos", "time", "prvj", "perspective", "doall",
        #: "helix", "dswp" (aliases resolve via the pass registry).
        self.tools = tools
        self.num_cores = num_cores
        self.minimum_hotness = minimum_hotness
        #: When set, parallelizing tools touch only the loop with this
        #: NOELLE loop ID (surgical testing).
        self.force_loop_id = force_loop_id
        self.rm_lc_dependences = rm_lc_dependences

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ToolConfig {self.name}: {'+'.join(self.tools)}>"


class TestOutcome:
    """Result of one micro test under one configuration."""

    def __init__(self, test: MicroTest, config: ToolConfig):
        self.test = test
        self.config = config
        self.passed = False
        self.detail = ""
        #: Names of tools that failed and were rolled back (the program
        #: still runs, so the outcome can pass with entries here).
        self.rolled_back: list[str] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "PASS" if self.passed else f"FAIL({self.detail})"
        return f"<{self.test.name} @ {self.config.name}: {status}>"


def _tool_options(tool_name: str, config: ToolConfig) -> dict:
    if tool_name in ("doall", "helix"):
        return dict(
            num_cores=config.num_cores,
            minimum_hotness=config.minimum_hotness,
            only_loop_id=config.force_loop_id,
        )
    if tool_name == "dswp":
        return dict(
            minimum_hotness=config.minimum_hotness,
            only_loop_id=config.force_loop_id,
        )
    if tool_name == "perspective":
        return dict(default_cores=config.num_cores)
    return {}


def _apply_tools(module, config: ToolConfig, crash_dir=None) -> PassManager:
    """Run every configured tool as a pass-manager transaction.

    A tool that crashes, hangs, or breaks the verifier is rolled back and
    recorded on the returned manager; the remaining tools still run, so
    one broken custom tool degrades a configuration instead of aborting
    the whole corpus run.
    """
    noelle = Noelle(module)
    if cache.enabled():
        cache.attach(noelle)
    needs_profile = bool(
        {"doall", "helix", "dswp", "prvj", "prvjeeves", "perspective"}
        & set(config.tools)
    )
    if needs_profile:
        noelle.attach_profile(Profiler(module).profile())
    manager = PassManager(noelle, crash_dir=crash_dir)
    if config.rm_lc_dependences and (
        {"doall", "helix", "dswp"} & set(config.tools)
    ):
        manager.run_registered("rm-lc-dependences")
    for tool_name in config.tools:
        manager.run_registered(tool_name, **_tool_options(tool_name, config))
        noelle.invalidate()
    return manager


def run_micro_test(test: MicroTest, config: ToolConfig) -> TestOutcome:
    """Compile, transform, and compare against the reference run."""
    outcome = TestOutcome(test, config)
    try:
        reference_module = cache.cached_compile(test.source, test.name)
        reference = Interpreter(reference_module).run()
        # The reference module is never mutated: share its engine plans
        # with other workers/processes driving the same corpus.
        cache.publish_artifacts(reference_module)
        module = cache.cached_compile(test.source, test.name)
        manager = _apply_tools(module, config)
        outcome.rolled_back = [r.name for r in manager.rolled_back()]
        verify_module(module)
        result = ParallelMachine(module, num_cores=config.num_cores).run()
        if result.trapped and not reference.trapped:
            outcome.detail = f"trap: {result.trapped}"
        elif not _outputs_match(result.output, reference.output):
            outcome.detail = (
                f"outputs differ: {result.output} vs {reference.output}"
            )
        else:
            outcome.passed = True
    except Exception as error:  # a tool crash is a test failure, not ours
        outcome.detail = f"{type(error).__name__}: {error}"
    return outcome


def _outputs_match(a: list, b: list, rel: float = 1e-6) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if isinstance(x, float) or isinstance(y, float):
            scale = max(abs(float(x)), abs(float(y)), 1.0)
            if abs(float(x) - float(y)) > rel * scale:
                return False
        elif x != y:
            return False
    return True


def _run_pair(pair: tuple[MicroTest, ToolConfig]) -> TestOutcome:
    """Worker for the process pool (module-level so it pickles)."""
    test, config = pair
    return run_micro_test(test, config)


def run_corpus(
    configs: list[ToolConfig],
    tests: list[MicroTest] | None = None,
    jobs: int | None = None,
) -> list[TestOutcome]:
    """Every micro test under every configuration.

    ``jobs=N`` (N > 1) fans the pairs out over a supervised pool of
    worker processes (:func:`repro.serve.pool.supervised_map`): input
    order is preserved, and a worker that dies abruptly (killed, OOM)
    costs only the pair it held — that pair comes back as a failed
    :class:`TestOutcome` whose ``detail`` carries the structured error,
    every other pair still returns, and the pool never hangs.
    """
    tests = tests if tests is not None else build_corpus()
    pairs = [(test, config) for config in configs for test in tests]
    if jobs is not None and jobs > 1 and len(pairs) > 1:
        from ..serve.pool import supervised_map

        outcomes = []
        for pair, task in zip(pairs, supervised_map(_run_pair, pairs, jobs)):
            if task.ok:
                outcomes.append(task.value)
            else:
                test, config = pair
                outcome = TestOutcome(test, config)
                outcome.detail = (
                    f"worker failure: {task.error.get('kind', 'unknown')}: "
                    f"{task.error.get('message', '')}"
                )
                outcomes.append(outcome)
        return outcomes
    return [_run_pair(pair) for pair in pairs]


DEFAULT_CONFIGS = [
    ToolConfig("plain", []),
    ToolConfig("licm", ["licm"]),
    ToolConfig("dead+licm", ["dead", "licm"]),
    ToolConfig("carat", ["carat"]),
    ToolConfig("doall", ["doall"]),
    ToolConfig("helix", ["helix"]),
]


def generate_bash_script(
    configs: list[ToolConfig] | None = None,
    tests: list[MicroTest] | None = None,
    python: str = "python",
) -> str:
    """The sequential driver script the paper's infrastructure emits.

    Each line runs one (test, configuration) pair in its own process via
    ``repro.testing`` as a module, so the script parallelizes trivially
    under GNU parallel / Slurm job arrays — the degenerate single-machine
    form of the paper's HTCondor/Slurm integration.
    """
    configs = configs if configs is not None else DEFAULT_CONFIGS
    tests = tests if tests is not None else build_corpus()
    lines = [
        "#!/bin/bash",
        "# Generated by repro.testing.harness — runs every micro test",
        "# through every tool configuration, sequentially.",
        "set -u",
        "failures=0",
    ]
    for config in configs:
        for test in tests:
            command = (
                f"{python} -m repro.testing "
                f"--test {test.name} --config {config.name}"
            )
            lines.append(
                f"{command} || {{ echo 'FAIL: {test.name} @ "
                f"{config.name}'; failures=$((failures+1)); }}"
            )
    lines.append('echo "done ($failures failures)"')
    lines.append("exit $((failures > 0))")
    return "\n".join(lines) + "\n"
