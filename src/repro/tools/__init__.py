"""repro.tools — the noelle-* deployment tools (the paper's Table 2)."""

from ..robust.diagnostics import EntryNotFoundError
from .meta_pdg_embed import embed_pdg, has_embedded_pdg, load_embedded_pdg
from .pipeline import (
    Binary,
    helix_pipeline,
    link,
    load,
    make_binary,
    measure_architecture,
    meta_clean,
    meta_prof_embed,
    prof_coverage,
)
from .rm_lc_dependences import remove_loop_carried_dependences
from .whole_ir import (
    link_options_of,
    whole_ir_from_files,
    whole_ir_from_sources,
)

__all__ = [
    "EntryNotFoundError",
    "embed_pdg",
    "has_embedded_pdg",
    "load_embedded_pdg",
    "Binary",
    "helix_pipeline",
    "link",
    "load",
    "make_binary",
    "measure_architecture",
    "meta_clean",
    "meta_prof_embed",
    "prof_coverage",
    "remove_loop_carried_dependences",
    "link_options_of",
    "whole_ir_from_files",
    "whole_ir_from_sources",
]
