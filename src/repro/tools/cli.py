"""Command-line front door for the noelle-* tools.

Mirrors how the paper's users drive NOELLE from the shell (Figure 1):

    repro-noelle whole-ir a.mc b.mc -o program.ir
    repro-noelle profile program.ir
    repro-noelle parallelize program.ir --technique helix --cores 12 -o par.ir
    repro-noelle run par.ir --cores 12
    repro-noelle licm program.ir -o opt.ir
    repro-noelle dead program.ir -o slim.ir
    repro-noelle report program.ir          # PDG/loop/IV summary
    repro-noelle analyze program.ir --loops # per-loop SCEV/deptest JSON
    repro-noelle compile program.ir --emit binary -o program.nir
    repro-noelle cache stats                # artifact-cache maintenance

Files: ``.mc`` MiniC sources, ``.ir`` textual IR, ``.nir`` binary IR.
Every command that reads ``.ir`` also accepts ``.nir`` (dispatch is by
content, not extension).  With ``NOELLE_CACHE_DIR`` set, loads go
through the content-addressed artifact cache.
"""

from __future__ import annotations

import argparse
import os
import sys

from .. import cache
from ..core.noelle import Noelle
from ..core.profiler import Profiler
from ..ir import (
    Module,
    is_binary_ir,
    parse_module,
    print_module,
    read_module,
    verify_module,
    write_module_file,
)
from ..perf import STATS, stats_enabled
from ..robust.passmanager import PassManager
from ..runtime.machine import ParallelMachine
from .pipeline import make_binary, prof_coverage
from .whole_ir import whole_ir_from_files


def _load_ir(path: str) -> Module:
    """Load textual or binary IR, sniffing the binary magic."""
    with open(path, "rb") as handle:
        data = handle.read()
    if is_binary_ir(data):
        if cache.enabled():
            return cache.load_ir_binary(data, path)
        module = read_module(data)
        verify_module(module)
        return module
    text = data.decode("utf-8")
    if cache.enabled():
        return cache.load_ir_text(text, path)
    module = parse_module(text, path)
    verify_module(module)
    return module


def _save_ir(module: Module, path: str | None) -> None:
    if path is not None and path.endswith(".nir"):
        write_module_file(module, path)
        print(f"wrote {path} (binary)", file=sys.stderr)
        return
    text = print_module(module)
    if path is None or path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w") as handle:
            handle.write(text)
        print(f"wrote {path}", file=sys.stderr)


def _cmd_whole_ir(args) -> int:
    module = whole_ir_from_files(args.inputs, args.link_option)
    _save_ir(module, args.output)
    return 0


def _cmd_run(args) -> int:
    from ..interp.interp import StepLimitExceeded
    from ..robust.diagnostics import EntryNotFoundError
    from ..serve.protocol import (
        EXIT_ENTRY_NOT_FOUND,
        EXIT_STEP_LIMIT,
        EXIT_TRAP,
    )

    module = _load_ir(args.input)
    entry = args.entry or "main"
    fn = module.functions.get(entry)
    if fn is None or fn.is_declaration():
        error = EntryNotFoundError(
            entry, sorted(f.name for f in module.defined_functions())
        )
        print(f"repro-noelle run: {error}", file=sys.stderr)
        return EXIT_ENTRY_NOT_FOUND
    kwargs = {}
    if args.step_limit is not None:
        kwargs["step_limit"] = args.step_limit
    machine = ParallelMachine(module, num_cores=args.cores, **kwargs)
    try:
        result = machine.run(entry)
    except StepLimitExceeded as error:
        for value in machine.result.output:
            print(value)
        print(f"STEP LIMIT: {error}", file=sys.stderr)
        return EXIT_STEP_LIMIT
    for value in result.output:
        print(value)
    if cache.enabled():
        # Next invocation (any process) hydrates instead of recompiling.
        cache.publish_artifacts(module)
    if result.trapped:
        print(f"TRAP: {result.trapped}", file=sys.stderr)
        return EXIT_TRAP
    print(f"[{result.cycles} cycles on {args.cores or 'default'} cores]",
          file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    import signal

    from ..serve.daemon import create_server, serve_forever

    server = create_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        deadline_s=args.deadline,
        max_attempts=args.retries + 1,
        crash_dir=args.crash_dir,
        verbose=args.verbose,
    )
    host, port = server.server_address[:2]

    def _shutdown(signum, frame):
        import threading

        # shutdown() must not run on the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGINT, _shutdown)
    signal.signal(signal.SIGTERM, _shutdown)
    print(f"serving on http://{host}:{port}", file=sys.stderr)
    print(
        f"  workers={args.workers} deadline={args.deadline:g}s "
        f"retries={args.retries} crash_dir={args.crash_dir or '-'}",
        file=sys.stderr,
    )
    stubborn = serve_forever(server)
    if stubborn:
        print(f"serve: {stubborn} worker(s) needed force-kill",
              file=sys.stderr)
        return 1
    print("serve: clean shutdown", file=sys.stderr)
    return 0


def _cmd_profile(args) -> int:
    module = _load_ir(args.input)
    profile = prof_coverage(module)
    noelle = Noelle(module, profile=profile)
    print(f"{'function':20s} {'invocations':>12s} {'hotness':>8s}")
    for fn in module.defined_functions():
        print(
            f"{fn.name:20s} {profile.function_invocations(fn):12d} "
            f"{profile.function_hotness(fn):8.3f}"
        )
    print(f"\n{'loop':30s} {'iterations':>11s} {'hotness':>8s}")
    for fn in module.defined_functions():
        for loop in noelle.loop_info(fn).loops():
            label = f"{fn.name}/%{loop.header.name}"
            print(
                f"{label:30s} {profile.loop_total_iterations(loop):11d} "
                f"{profile.loop_hotness(loop):8.3f}"
            )
    return 0


def _manager_for(args, noelle: Noelle) -> PassManager:
    return PassManager(noelle, crash_dir=args.crash_dir)


def _report_rollbacks(manager: PassManager) -> None:
    for result in manager.rolled_back():
        where = f" (bundle: {result.bundle})" if result.bundle else ""
        print(f"pass {result.name} rolled back: {result.error}{where}",
              file=sys.stderr)


def _cmd_parallelize(args) -> int:
    module = _load_ir(args.input)
    noelle = Noelle(module)
    noelle.attach_profile(Profiler(module).profile())
    manager = _manager_for(args, noelle)
    manager.run_registered("rm-lc-dependences")
    if args.technique == "doall":
        result = manager.run_registered(
            "doall", num_cores=args.cores, minimum_hotness=args.min_hotness
        )
    elif args.technique == "helix":
        result = manager.run_registered(
            "helix", num_cores=args.cores, minimum_hotness=args.min_hotness
        )
    else:
        result = manager.run_registered(
            "dswp", num_stages=args.stages, minimum_hotness=args.min_hotness
        )
    _report_rollbacks(manager)
    count = result.value if result.ok else 0
    print(f"parallelized {count} loop(s) with {args.technique}",
          file=sys.stderr)
    verify_module(module)
    _save_ir(module, args.output)
    return 0


def _cmd_licm(args) -> int:
    module = _load_ir(args.input)
    manager = _manager_for(args, Noelle(module))
    result = manager.run_registered("licm")
    _report_rollbacks(manager)
    print(f"hoisted {result.value if result.ok else 0} invariant "
          f"instruction(s)", file=sys.stderr)
    _save_ir(module, args.output)
    return 0


def _cmd_dead(args) -> int:
    module = _load_ir(args.input)
    before = module.num_instructions()
    manager = _manager_for(args, Noelle(module))
    result = manager.run_registered("dead")
    _report_rollbacks(manager)
    removed = result.value if result.ok else []
    after = module.num_instructions()
    print(
        f"removed {len(removed)} function(s): {', '.join(removed) or '-'} "
        f"({before} -> {after} instructions)",
        file=sys.stderr,
    )
    _save_ir(module, args.output)
    return 0


def _load_any_module(path: str, verb: str) -> Module:
    """Resolve an input: an .ir/.mc/.nir path or a workload name."""
    if os.path.exists(path):
        if path.endswith(".mc"):
            return whole_ir_from_files([path], [])
        return _load_ir(path)
    from ..workloads import registry

    try:
        workload = registry.get(path)
    except KeyError:
        raise SystemExit(
            f"repro-noelle {verb}: {path!r} is neither a file nor a "
            f"registered workload"
        )
    return workload.compile()


def _cmd_check(args) -> int:
    from ..checks import run_checkers, worst_severity
    from ..checks.diagnostics import has_errors

    module = _load_any_module(args.input, "check")
    noelle = Noelle(module)
    if args.parallelize:
        noelle.attach_profile(Profiler(module).profile())
        manager = _manager_for(args, noelle)
        manager.run_registered("rm-lc-dependences")
        options = (
            {"num_stages": args.stages}
            if args.parallelize == "dswp"
            else {"num_cores": args.cores}
        )
        manager.run_registered(args.parallelize, **options)
        _report_rollbacks(manager)
    names = args.checkers.split(",") if args.checkers else None
    diagnostics = noelle.run_checks(names=names)
    for diagnostic in diagnostics:
        print(diagnostic)
    if args.oracle:
        from ..checks.oracle import RaceOracle

        oracle = RaceOracle(module, num_cores=args.cores)
        result = oracle.run()
        if result.trapped:
            print(f"oracle run trapped: {result.trapped}", file=sys.stderr)
        for race in oracle.races:
            print(f"dynamic: {race}")
        statically_flagged = sum(
            1 for d in diagnostics if d.checker == "races"
        )
        print(
            f"oracle: {len(oracle.races)} dynamic race(s), "
            f"{statically_flagged} static race finding(s)",
            file=sys.stderr,
        )
    counts = {"error": 0, "warning": 0, "info": 0}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] += 1
    worst = worst_severity(diagnostics) or "clean"
    print(
        f"check: {counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info ({worst})",
        file=sys.stderr,
    )
    return 1 if has_errors(diagnostics) else 0


ORACLE_NAMES = ("engine", "parallel", "binio", "checkers", "deptest")


def _cmd_fuzz(args) -> int:
    from ..fuzz import run_campaign

    oracles = tuple(
        name.strip() for name in args.oracles.split(",") if name.strip()
    )
    unknown = [name for name in oracles if name not in ORACLE_NAMES]
    if unknown:
        print(
            f"repro-noelle fuzz: unknown oracle(s) {', '.join(unknown)}; "
            f"expected a subset of {', '.join(ORACLE_NAMES)}",
            file=sys.stderr,
        )
        return 2

    def progress(done: int, total: int, found: int) -> None:
        if done % 50 == 0 or done == total:
            print(
                f"[fuzz] {done}/{total} cases, {found} divergence(s)",
                file=sys.stderr,
            )

    report = run_campaign(
        seed=args.seed,
        count=args.count,
        jobs=args.jobs,
        oracles=oracles,
        crash_dir=args.crash_dir,
        fixtures_dir=args.fixtures_dir,
        minimize=not args.no_minimize,
        progress=progress,
    )
    for record in report.divergences:
        print(
            f"DIVERGENCE [{record['oracle']}] seed={record['seed']} "
            f"technique={record.get('technique')}\n"
            f"  {record['detail'].splitlines()[0][:200]}"
        )
    for failure in report.worker_failures:
        print(f"WORKER FAILURE: {failure}")
    for path in report.bundle_paths:
        print(f"bundle: {path}", file=sys.stderr)
    for path in report.fixture_paths:
        print(f"fixture: {path}", file=sys.stderr)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_compile(args) -> int:
    """Translate between MiniC / textual IR / binary IR."""
    if args.input.endswith(".mc"):
        module = whole_ir_from_files([args.input], [])
    else:
        module = _load_ir(args.input)
    output = args.output
    emit = args.emit
    if emit is None:
        emit = "binary" if output and output.endswith(".nir") else "text"
    if emit == "binary":
        if output is None or output == "-":
            print("repro-noelle compile: --emit binary needs -o FILE",
                  file=sys.stderr)
            return 2
        if not output.endswith(".nir"):
            write_module_file(module, output)
            print(f"wrote {output} (binary)", file=sys.stderr)
            return 0
    _save_ir(module, output)
    return 0


def _cmd_cache(args) -> int:
    store = cache.get_store()
    if store is None:
        print(
            "repro-noelle cache: NOELLE_CACHE_DIR is not set "
            "(the artifact cache is disabled)",
            file=sys.stderr,
        )
        return 2
    if args.action == "stats":
        info = store.stats()
        print(f"cache root: {info['root']}")
        print(f"  entries:      {info['entries']}")
        print(f"  aliases:      {info['aliases']}")
        print(f"  PDG shards:   {info['pdg_shards']}")
        print(f"  engine plans: {info['engine_plans']}")
        print(f"  total bytes:  {info['total_bytes']}")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"cache clear: removed {removed} object(s)", file=sys.stderr)
        return 0
    pruned = store.gc()
    print(
        f"cache gc: pruned {pruned['pruned_entries']} entry(ies), "
        f"{pruned['pruned_aliases']} alias(es), "
        f"{pruned['pruned_tmp']} tmp file(s)",
        file=sys.stderr,
    )
    return 0


def _cmd_report(args) -> int:
    module = _load_ir(args.input)
    noelle = Noelle(module)
    pdg = noelle.pdg()
    print(f"module: {module.name}")
    print(f"  functions: {len(module.functions)} "
          f"({sum(1 for _ in module.defined_functions())} defined)")
    print(f"  instructions: {module.num_instructions()}")
    print(f"  PDG: {pdg.num_nodes()} nodes, {pdg.num_edges()} edges "
          f"({pdg.memory_disproved}/{pdg.memory_queries} memory deps disproved)")
    for loop in noelle.loops():
        dag = loop.sccdag
        iv = loop.governing_iv()
        print(
            f"  loop {loop.structure.function.name}/%{loop.structure.header.name}: "
            f"{len(dag.sccs)} SCCs "
            f"(seq={len(dag.sequential_sccs())}, red={len(dag.reducible_sccs())}) "
            f"governing-IV={'yes' if iv else 'no'} doall={loop.is_doall()}"
        )
    return 0


def _value_json(value):
    """JSON-friendly rendering of an IR value / int used in SCEV facts."""
    from ..ir.values import ConstantInt

    if value is None:
        return None
    if isinstance(value, int):
        return value
    if isinstance(value, ConstantInt):
        return value.value
    ref = getattr(value, "ref", None)
    return ref() if callable(ref) else repr(value)


def _cmd_analyze(args) -> int:
    """Dump per-loop symbolic facts (IVs, trip counts, dependence tests)."""
    import json

    from ..analysis.deptest import DependenceTester
    from ..analysis.scev import ScalarEvolution
    from ..core.induction import InductionVariableManager
    from ..ir.instructions import Load, Store

    module = _load_any_module(args.input, "analyze")
    noelle = Noelle(module)
    loops = []
    for fn in module.defined_functions():
        for natural in noelle.loop_info(fn).loops():
            scev = ScalarEvolution(natural, fold_srem=True)
            tester = DependenceTester(natural, scev=scev)
            manager = InductionVariableManager(natural)
            ivs = [
                {
                    "phi": iv.phi.ref(),
                    "start": _value_json(iv.start),
                    "step": _value_json(iv.step),
                    "governing": iv.is_governing,
                }
                for iv in manager.ivs
            ]
            accesses = [
                inst
                for block in natural.blocks
                for inst in block.instructions
                if isinstance(inst, (Load, Store))
            ]
            access_facts = []
            for index, inst in enumerate(accesses):
                affine = tester.access_of(inst)
                access_facts.append(
                    {
                        "id": index,
                        "inst": inst.ref(),
                        "block": inst.parent.name,
                        "kind": "store" if isinstance(inst, Store) else "load",
                        "affine": affine.describe() if affine else None,
                    }
                )
            tests = []
            for i, a in enumerate(accesses):
                for j in range(i, len(accesses)):
                    b = accesses[j]
                    if not isinstance(a, Store) and not isinstance(b, Store):
                        continue
                    verdict = tester.test_pair(a, b)
                    entry = {
                        "a": i,
                        "b": j,
                        "verdict": verdict.kind,
                        "reason": verdict.reason,
                    }
                    if verdict.distance is not None:
                        entry["distance"] = verdict.distance
                    tests.append(entry)
            loops.append(
                {
                    "function": fn.name,
                    "header": natural.header.name,
                    "depth": natural.depth(),
                    "trip_count": scev.trip_count(),
                    "induction_variables": ivs,
                    "memory_accesses": access_facts,
                    "dependence_tests": tests,
                }
            )
    json.dump({"module": module.name, "loops": loops}, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-noelle",
        description="The noelle-* tool chain of the NOELLE reproduction.",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print analysis perf counters/timers to stderr when done "
        "(equivalent to NOELLE_STATS=1)",
    )
    parser.add_argument(
        "--engine",
        choices=("compiled", "reference"),
        default=None,
        help="execution engine for every program run this invocation "
        "makes (profiling, transforms, 'run'); equivalent to setting "
        "NOELLE_ENGINE",
    )
    parser.add_argument(
        "--crash-dir",
        default=None,
        metavar="DIR",
        help="where rolled-back passes write crash bundles "
        "(pre-pass IR + report.json); unset keeps bundles in memory only",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    whole = sub.add_parser("whole-ir", help="compile+link sources into one IR file")
    whole.add_argument("inputs", nargs="+")
    whole.add_argument("-o", "--output", default=None)
    whole.add_argument("--link-option", action="append", default=[])
    whole.set_defaults(func=_cmd_whole_ir)

    run = sub.add_parser(
        "run",
        help="execute an IR file on the simulated machine; exit codes: "
        "0 ok, 3 memory trap, 4 step-limit exceeded, 5 entry not found",
    )
    run.add_argument("input")
    run.add_argument("--cores", type=int, default=None)
    run.add_argument("--entry", default=None, metavar="FN",
                     help="entry function (default: main)")
    run.add_argument("--step-limit", type=int, default=None,
                     help="abort with exit code 4 after this many steps")
    run.set_defaults(func=_cmd_run)

    serve = sub.add_parser(
        "serve",
        help="run the compiler-as-a-service daemon (JSON over HTTP; "
        "POST /compile /parallelize /run /check, GET /healthz /stats)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8414)
    serve.add_argument("--workers", type=int, default=2,
                       help="supervised worker processes (sessions are "
                       "routed to a fixed worker to keep caches warm)")
    serve.add_argument("--deadline", type=float, default=30.0,
                       help="default per-request wall-clock deadline "
                       "(seconds); requests may lower it, cap 600")
    serve.add_argument("--retries", type=int, default=2,
                       help="max retries for transient failures "
                       "(exponential backoff with jitter)")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request to stderr")
    serve.set_defaults(func=_cmd_serve)

    profile = sub.add_parser("profile", help="noelle-prof-coverage summary")
    profile.add_argument("input")
    profile.set_defaults(func=_cmd_profile)

    par = sub.add_parser("parallelize", help="apply DOALL/HELIX/DSWP")
    par.add_argument("input")
    par.add_argument("-o", "--output", default=None)
    par.add_argument("--technique", choices=("doall", "helix", "dswp"),
                     default="doall")
    par.add_argument("--cores", type=int, default=12)
    par.add_argument("--stages", type=int, default=4)
    par.add_argument("--min-hotness", type=float, default=0.02)
    par.set_defaults(func=_cmd_parallelize)

    licm = sub.add_parser("licm", help="loop invariant code motion")
    licm.add_argument("input")
    licm.add_argument("-o", "--output", default=None)
    licm.set_defaults(func=_cmd_licm)

    dead = sub.add_parser("dead", help="dead function elimination")
    dead.add_argument("input")
    dead.add_argument("-o", "--output", default=None)
    dead.set_defaults(func=_cmd_dead)

    compile_cmd = sub.add_parser(
        "compile",
        help="translate between MiniC (.mc), textual IR (.ir), and "
        "binary IR (.nir)",
    )
    compile_cmd.add_argument("input", help="an .mc, .ir, or .nir file")
    compile_cmd.add_argument("-o", "--output", default=None)
    compile_cmd.add_argument(
        "--emit",
        choices=("text", "binary"),
        default=None,
        help="output form (default: binary iff the output ends in .nir)",
    )
    compile_cmd.set_defaults(func=_cmd_compile)

    cache_cmd = sub.add_parser(
        "cache",
        help="inspect or maintain the artifact cache (NOELLE_CACHE_DIR)",
    )
    cache_cmd.add_argument("action", choices=("stats", "clear", "gc"))
    cache_cmd.set_defaults(func=_cmd_cache)

    report = sub.add_parser("report", help="PDG/loop/IV summary of an IR file")
    report.add_argument("input")
    report.set_defaults(func=_cmd_report)

    analyze = sub.add_parser(
        "analyze",
        help="dump per-loop symbolic analysis facts (induction variables, "
        "SCEV trip counts, dependence-test verdicts) as JSON",
    )
    analyze.add_argument("input", help="an .ir/.mc/.nir path or a workload name")
    analyze.add_argument(
        "--loops",
        action="store_true",
        help="per-loop facts (the default and currently only report)",
    )
    analyze.set_defaults(func=_cmd_analyze)

    check = sub.add_parser(
        "check",
        help="run the static checker suite (races/sanitizer/lint) over an "
        "IR file, MiniC file, or registered workload; exits non-zero on "
        "ERROR diagnostics",
    )
    check.add_argument("input", help="an .ir/.mc path or a workload name")
    check.add_argument(
        "--parallelize",
        choices=("doall", "helix", "dswp"),
        default=None,
        help="parallelize first (profile + rm-lc-dependences + technique), "
        "then check the transformed module",
    )
    check.add_argument("--cores", type=int, default=12)
    check.add_argument("--stages", type=int, default=4)
    check.add_argument(
        "--checkers",
        default=None,
        metavar="NAMES",
        help="comma-separated subset of checkers (default: all registered)",
    )
    check.add_argument(
        "--oracle",
        action="store_true",
        help="also execute the module under the dynamic race oracle and "
        "print observed races next to the static findings",
    )
    check.set_defaults(func=_cmd_check)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generate seeded MiniC programs and "
        "cross-check the engines, the parallelizers, the binary IR "
        "round-trip, and the checkers against the race oracle",
    )
    fuzz.add_argument("--seed", type=int, default=1,
                      help="base campaign seed (default 1)")
    fuzz.add_argument("--count", type=int, default=100,
                      help="number of programs to generate (default 100)")
    fuzz.add_argument("--jobs", type=int, default=None,
                      help="fan cases out over N supervised worker "
                      "processes")
    fuzz.add_argument("--oracles", default=",".join(ORACLE_NAMES),
                      metavar="LIST",
                      help="comma-separated subset of: "
                      f"{','.join(ORACLE_NAMES)}")
    fuzz.add_argument("--fixtures-dir", default=None, metavar="DIR",
                      help="write a regression-fixture JSON per "
                      "divergence (ready for tests/fuzz/regressions/)")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="skip delta-debugging the decision traces of "
                      "failing cases")
    fuzz.set_defaults(func=_cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.engine is not None:
        # Set before any interpreter is constructed: every run this
        # command performs (including profiling inside transforms)
        # resolves its engine from the environment.
        os.environ["NOELLE_ENGINE"] = args.engine
    status = args.func(args)
    if args.stats and not stats_enabled():
        # NOELLE_STATS=1 already reports via atexit; avoid printing twice.
        STATS.report()
    return status


if __name__ == "__main__":
    sys.exit(main())
