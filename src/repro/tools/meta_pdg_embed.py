"""``noelle-meta-pdg-embed`` — compute the PDG once, carry it as metadata.

The PDG is the most expensive abstraction (it runs the whole-module alias
analyses).  This tool computes it, serializes every edge against NOELLE's
deterministic instruction IDs, and embeds the result in the module, so a
later ``noelle-load`` can reconstruct the PDG without re-running any
memory analysis.
"""

from __future__ import annotations

from ..analysis.pointsto import AndersenAliasAnalysis
from ..core.metadata import IDAssigner
from ..core.pdg import PDG
from ..ir.module import Module

PDG_EDGES_KEY = "noelle.pdg.edges"
PDG_STATS_KEY = "noelle.pdg.stats"


def embed_pdg(module: Module, pdg: PDG | None = None) -> PDG:
    """Compute (or accept) the PDG and embed it; returns the PDG used."""
    ids = IDAssigner(module)
    if pdg is None:
        pdg = PDG(module, AndersenAliasAnalysis(module))
    serialized: list[tuple] = []
    for edge in pdg.edges():
        src_id = ids.instruction_ids.get(id(edge.src.value))
        dst_id = ids.instruction_ids.get(id(edge.dst.value))
        if src_id is None or dst_id is None:
            continue  # edge references code outside the current module
        serialized.append(
            (
                src_id,
                dst_id,
                edge.kind,
                edge.data_kind,
                edge.is_memory,
                edge.is_must,
            )
        )
    module.metadata[PDG_EDGES_KEY] = serialized
    module.metadata[PDG_STATS_KEY] = {
        "memory_queries": pdg.memory_queries,
        "memory_disproved": pdg.memory_disproved,
    }
    return pdg


def load_embedded_pdg(module: Module) -> PDG | None:
    """Rebuild the PDG from metadata; None when nothing is embedded."""
    serialized = module.metadata.get(PDG_EDGES_KEY)
    if serialized is None:
        return None
    ids = IDAssigner(module)
    stats = module.metadata.get(PDG_STATS_KEY, {})
    return PDG.from_serialized(module, serialized, ids.instruction_by_id, stats)


def has_embedded_pdg(module: Module) -> bool:
    return PDG_EDGES_KEY in module.metadata
